"""Tour of the multiversion sketch store.

The paper closes with the vision of "multiversion data stream systems".
This example runs a miniature one end to end:

1. synthesize a WorldCup-format binary access log,
2. ingest two attribute streams of it into a SketchStore,
3. answer point / heavy-hitter / top-k / join queries about past windows,
4. save the store to disk, reopen it, and keep querying —
   the raw log could have been deleted after step 2.

Also shows the value-distribution side: window quantiles of the response
sizes, and a sliding-window view replaying past window positions.

Run:  python examples/sketch_store_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SketchStore, StreamSpec
from repro.core.quantiles import PersistentQuantiles
from repro.core.sliding import SlidingWindowView
from repro.core.persistent_countmin import PersistentCountMin
from repro.streams.logs import attribute_stream, synthesize_worldcup_log


def main() -> None:
    # --- 1. the log --------------------------------------------------
    records = synthesize_worldcup_log(40_000, seed=9)
    urls = attribute_stream(records, "object_id")
    clients = attribute_stream(records, "client_id")
    m = len(urls)
    print(f"log: {m} requests "
          f"({records[0].timestamp} .. {records[-1].timestamp} epoch s)")

    # --- 2. the store -------------------------------------------------
    store = SketchStore(width=2048, depth=5, join_width=2048, seed=1)
    store.create(StreamSpec(
        name="urls", delta=25, universe=2**24, heavy_hitters=True,
        joinable=True,
    ))
    store.create(StreamSpec(name="clients", delta=25, joinable=True))
    for t in range(m):
        store.update("urls", int(urls.items[t]), time=t + 1)
        store.update("clients", int(clients.items[t]), time=t + 1)
    print(f"store persistence: {store.persistence_words()} words "
          f"(raw log: {20 * m // 8} words)")

    # --- 3. historical analytics --------------------------------------
    s, t = m // 4, 3 * m // 4
    print(f"\ntop URLs of the window ({s}, {t}]:")
    for item, estimate in store.top_k("urls", 5, s, t):
        print(f"  url_{item}: ~{estimate:.0f} requests")

    hot = store.top_k("urls", 1, s, t)[0][0]
    print(f"\nurl_{hot} over four quarters of the day:")
    for q in range(4):
        a, b = q * m // 4, (q + 1) * m // 4
        print(f"  quarter {q + 1}: ~{store.point('urls', hot, a, b):.0f}")

    f2 = store.self_join_size("urls", s, t)
    join = store.join_size("urls", "clients", s, t)
    print(f"\nwindow F2(urls) ~ {f2:.2e}; join(urls, clients) ~ {join:.2e}")

    # --- 4. durability -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        directory = store.save(Path(tmp) / "store")
        reopened = SketchStore.open(directory)
        again = reopened.point("urls", hot, s, t)
        print(f"\nreopened from {directory.name}/: "
              f"point answer identical = {again == store.point('urls', hot, s, t)}")

    # --- 5. value quantiles and sliding windows ------------------------
    sizes = attribute_stream(records, "size")
    quantiles = PersistentQuantiles(universe=2**16, width=2048, depth=4,
                                    delta=40)
    for t_tick in range(m):
        quantiles.update(min(int(sizes.items[t_tick]), 2**16 - 1),
                         time=t_tick + 1)
    print("\nresponse-size quantiles, first vs second half of the day:")
    for label, (a, b) in [("first", (0, m // 2)), ("second", (m // 2, m))]:
        p50 = quantiles.quantile(0.5, a, b)
        p95 = quantiles.quantile(0.95, a, b)
        print(f"  {label} half: p50 ~ {p50} bytes, p95 ~ {p95} bytes")

    monitor = PersistentCountMin(width=2048, depth=5, delta=25)
    monitor.ingest(urls)
    window = SlidingWindowView(monitor, window=m // 10)
    print(f"\nsliding 10%-window frequency of url_{hot} at three positions:")
    for at in (m // 3, 2 * m // 3, m):
        print(f"  ending at {at}: ~{window.point(hot, at=at):.0f}")


if __name__ == "__main__":
    main()
