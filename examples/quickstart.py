"""Quickstart: make a sketch persistent and ask about the past.

An ephemeral sketch answers "how many times has X appeared *so far*?".
A persistent sketch answers "how many times did X appear *between any two
past moments* (s, t]?" — while staying sublinear in the stream length.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GroundTruth, PersistentCountMin, zipf_stream


def main() -> None:
    # A skewed stream of 50,000 events (element IDs from a Zipf law),
    # one arrival per clock tick.
    stream = zipf_stream(50_000, exponent=2.0, seed=7)
    truth = GroundTruth(stream)  # exact answers, for comparison only

    # width/depth shape the underlying Count-Min sketch (error
    # eps ~ e/width with failure probability exp(-depth)); delta is the
    # extra additive error we accept in exchange for persistence.
    sketch = PersistentCountMin(width=2048, depth=5, delta=25)
    sketch.ingest(stream)

    print(f"stream length:        {len(stream):>8}")
    print(f"persistence words:    {sketch.persistence_words():>8}")
    print(f"ephemeral words:      {sketch.ephemeral_words():>8}")
    print()

    # Ask about three windows of history for the five hottest elements.
    windows = [(0, 10_000), (10_000, 30_000), (30_000, 50_000)]
    print(f"{'element':>10} {'window':>18} {'true':>7} {'estimate':>9}")
    for item, _ in truth.top_k(5):
        for s, t in windows:
            actual = truth.frequency(item, s, t)
            estimate = sketch.point(item, s, t)
            print(f"{item:>10} {f'({s}, {t}]':>18} {actual:>7} {estimate:>9.1f}")

    # The answers above came from the sketch alone: the raw stream could
    # have been discarded after ingestion.


if __name__ == "__main__":
    main()
