"""Network traffic monitoring with historical queries.

A packet monitor sketches source-IP traffic.  Months later an incident
responder asks: "which hosts dominated traffic during the 02:00-03:00
spike, and how did the suspect's volume evolve?"  With ephemeral sketches
that history is gone; persistent sketches answer from memory.

Also demonstrates the turnstile model (flows opening/closing as +1/-1)
and the epoch-adaptive historical sketches of Section 5, whose error is
purely relative — no additive term — for queries from time zero.

Run:  python examples/network_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GroundTruth,
    HistoricalCountMin,
    PersistentCountMin,
)
from repro.streams.model import Stream


def build_traffic(length=80_000, hosts=4000, seed=17):
    """Synthetic source-IP stream with a planted attack window."""
    rng = np.random.default_rng(seed)
    items = rng.integers(0, hosts, size=length)
    # A botnet of 3 hosts floods during the "02:00-03:00" window.
    attack = slice(int(0.25 * length), int(0.35 * length))
    attackers = np.array([4001, 4002, 4003])
    width = attack.stop - attack.start
    mask = rng.random(width) < 0.5
    items[attack] = np.where(
        mask, attackers[rng.integers(0, 3, size=width)], items[attack]
    )
    return Stream(items=items, universe=8192)


def main() -> None:
    traffic = build_traffic()
    truth = GroundTruth(traffic)
    m = len(traffic)

    monitor = PersistentCountMin(width=2048, depth=5, delta=40)
    forensics = HistoricalCountMin(width=2048, depth=5, eps=0.02)
    monitor.ingest(traffic)
    forensics.ingest(traffic)

    # --- Incident window: who dominated 02:00-03:00? -------------------
    s, t = int(0.25 * m), int(0.35 * m)
    print(f"incident window ({s}, {t}] — top talkers:")
    print(f"{'host':>8} {'true pkts':>10} {'estimate':>10}")
    for host, packets in truth.top_k(5, s, t):
        estimate = monitor.point(host, s, t)
        print(f"{host:>8} {packets:>10} {estimate:>10.0f}")

    # --- Forensics: the attacker's cumulative volume over time ---------
    suspect = 4001
    print()
    print(f"host {suspect}: cumulative packets over time "
          f"(epoch-adaptive historical sketch, eps=0.02):")
    print(f"{'time':>8} {'true':>8} {'estimate':>9} {'epochs':>7}")
    for frac in (0.1, 0.25, 0.3, 0.35, 0.5, 1.0):
        t = int(frac * m)
        actual = truth.frequency(suspect, 0, t)
        estimate = forensics.point(suspect, t=t)
        print(f"{t:>8} {actual:>8} {estimate:>9.1f} "
              f"{forensics.epoch_count():>7}")

    # The flat-then-spike-then-flat shape identifies the attack window
    # without any access to raw packet logs.
    print()
    print(f"monitor persistence: {monitor.persistence_words()} words; "
          f"forensics: {forensics.persistence_words()} words; "
          f"raw log: {2 * m} words")
    # The forensics sketch pays ~width * depth * 3 words per epoch to
    # close every counter's PLA run at epoch boundaries (the price of a
    # purely relative error guarantee).  Epoch count grows only
    # logarithmically, so on week-long traces that cost is a vanishing
    # fraction of the log; at this demo scale it is still comparable.


if __name__ == "__main__":
    main()
