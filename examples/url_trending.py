"""URL trending over time — the paper's Section 1.5 illustrating example.

A website receives a huge stream of requests.  We want the most
frequently requested URLs and, more importantly, *how their popularity
changed over time* — without storing the raw log.  A persistent Count-Min
sketch plus the dyadic heavy-hitter structure answer both from memory.

Run:  python examples/url_trending.py
"""

from __future__ import annotations

from repro import GroundTruth, PersistentCountMin, PersistentHeavyHitters
from repro.eval.harness import compact_items
from repro.streams.worldcup import object_id_stream

DAYS = 10


def main() -> None:
    # A WorldCup-like URL stream: ~500 hot pages whose popularity drifts
    # over the "day" (see repro.streams.worldcup for the trace profile).
    stream = object_id_stream(100_000, seed=5)
    truth = GroundTruth(stream)
    per_day = len(stream) // DAYS

    sketch = PersistentCountMin(width=2048, depth=5, delta=50)
    sketch.ingest(stream)

    # --- Figure 1 style: top-5 URL frequency trajectory ----------------
    top5 = [item for item, _ in truth.top_k(5)]
    print("cumulative requests per URL at each day (T=true, A=approx):")
    header = "day  " + "  ".join(f"{f'url_{u}':>22}" for u in top5)
    print(header)
    for day in range(1, DAYS + 1):
        t = day * per_day
        cells = []
        for url in top5:
            actual = truth.frequency(url, 0, t)
            estimate = sketch.point(url, 0, t)
            cells.append(f"T={actual:>7} A={estimate:>8.0f}")
        print(f"{day:>3}  " + "  ".join(f"{c:>22}" for c in cells))

    # --- Who trended in the afternoon? ---------------------------------
    # Historical *window* heavy hitters: the dyadic structure finds the
    # heavy URLs of any past interval, here days 6-8.
    compact = compact_items(stream)
    hh = PersistentHeavyHitters(
        universe=compact.universe, width=1024, depth=4, delta=25
    )
    hh.ingest(compact)
    s, t = 5 * per_day, 8 * per_day
    phi = 0.005
    found = hh.heavy_hitters(phi, s, t)
    actual = GroundTruth(compact).heavy_hitters(phi, s, t)
    hits = len(set(found) & set(actual))
    print()
    print(f"heavy hitters of days 6-8 (phi={phi}):")
    print(f"  returned {len(found)}, true {len(actual)}, overlap {hits}")
    print(f"  heavy-hitter structure size: {hh.persistence_words()} words")
    print(f"  point-sketch size:           {sketch.persistence_words()} words")
    print(f"  raw log would need:          {2 * len(stream)} words")


if __name__ == "__main__":
    main()
