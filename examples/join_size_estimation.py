"""Historical join-size estimation between two streams.

The query optimizer question: "how large would the join of streams R and
S have been over last Tuesday?"  Two sampling-based persistent AMS
sketches with shared hash functions answer it for any past window, with
the Theorem 4.2 error bound — something neither the PLA technique nor
the PWC baselines can provide (their deterministic per-counter bias gets
amplified across the row).

Run:  python examples/join_size_estimation.py
"""

from __future__ import annotations

import math

from repro import GroundTruth, make_ams_pair, window_join_size
from repro.streams.generators import zipf_stream


def main() -> None:
    # Two streams over the same key space with different skew mixes,
    # e.g. a pageview stream and a click stream keyed by page ID.
    pageviews = zipf_stream(60_000, universe=2**16, exponent=1.5, seed=21)
    clicks = zipf_stream(60_000, universe=2**16, exponent=1.5, seed=21)
    truth_pv, truth_ck = GroundTruth(pageviews), GroundTruth(clicks)

    # The pair shares hash functions (mandatory for join estimation) but
    # not samples; the two streams may even use different deltas.
    sketch_pv, sketch_ck = make_ams_pair(
        width=4096, depth=5, delta_f=30, delta_g=60, seed=3,
        independent_copies=2,
    )
    sketch_pv.ingest(pageviews)
    sketch_ck.ingest(clicks)

    print(f"{'window':>22} {'true join':>12} {'estimate':>12} "
          f"{'rel.err':>8} {'bound':>12}")
    m = len(pageviews)
    for s_frac, t_frac in [(0.0, 1.0), (0.2, 0.6), (0.5, 0.75), (0.9, 1.0)]:
        s, t = int(s_frac * m), int(t_frac * m)
        actual = truth_pv.join_size(truth_ck, s, t)
        result = window_join_size(
            sketch_pv,
            sketch_ck,
            s,
            t,
            l2_f=math.sqrt(truth_pv.self_join_size(s, t)),
            l2_g=math.sqrt(truth_ck.self_join_size(s, t)),
        )
        rel = abs(result.value - actual) / max(actual, 1)
        print(
            f"{f'({s}, {t}]':>22} {actual:>12} {result.value:>12.0f} "
            f"{rel:>8.4f} {result.error_bound:>12.0f}"
        )

    # Self-join (second frequency moment) of the pageview stream over a
    # window — the skew statistic F2.
    s, t = int(0.2 * m), int(0.6 * m)
    actual_f2 = truth_pv.self_join_size(s, t)
    estimate_f2 = sketch_pv.self_join_size(s, t)
    print()
    print(f"window F2: true {actual_f2}, estimate {estimate_f2:.0f} "
          f"(rel.err {abs(estimate_f2 - actual_f2) / actual_f2:.4f})")
    print(f"sketch sizes: {sketch_pv.persistence_words()} + "
          f"{sketch_ck.persistence_words()} words for {2 * m} updates")


if __name__ == "__main__":
    main()
