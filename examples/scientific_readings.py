"""Tracking a months-long experiment's readings — the paper's second
motivating application.

"In scientific research where one experiment may run for days or even
months while generating high-speed streams of numerical readings, it
will be very useful to use persistent sketches to keep track of the
progress over time" (Section 1).  Readings already carry equipment
error, so a small bounded sketch error is an easy trade for keeping the
whole history queryable in memory.

This example simulates a sensor whose value distribution drifts and
spikes, ingests the quantized readings once, and then answers
distribution questions about arbitrary past phases: quantiles, range
counts, and the dominant Haar wavelet structure (where the distribution
mass sits and when it moved).

Run:  python examples/scientific_readings.py
"""

from __future__ import annotations

import numpy as np

from repro import PersistentQuantiles, PersistentWavelets
from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.streams.model import Stream

PHASES = [
    # (name, mean, spread, ticks)
    ("baseline", 300, 25, 30_000),
    ("heating", 520, 40, 20_000),
    ("anomaly", 860, 15, 5_000),
    ("recovery", 430, 35, 25_000),
]
UNIVERSE = 1024  # readings quantized to 10 bits


def simulate() -> Stream:
    rng = np.random.default_rng(23)
    chunks = [
        np.clip(
            rng.normal(mean, spread, size=ticks).astype(np.int64),
            0,
            UNIVERSE - 1,
        )
        for _name, mean, spread, ticks in PHASES
    ]
    return Stream(items=np.concatenate(chunks), universe=UNIVERSE)


def main() -> None:
    stream = simulate()
    print(f"{len(stream)} readings over {len(PHASES)} phases, "
          f"quantized to [0, {UNIVERSE})")

    # One dyadic hierarchy serves quantiles AND wavelet analysis.
    hierarchy = PersistentHeavyHitters(
        universe=UNIVERSE, width=1024, depth=4, delta=30
    )
    hierarchy.ingest(stream)
    quantiles = PersistentQuantiles(hierarchy=hierarchy)
    wavelets = PersistentWavelets(hierarchy=hierarchy)
    print(f"sketch: {hierarchy.persistence_words()} words "
          f"(raw readings: {len(stream)} words)\n")

    # --- Per-phase distribution summaries, months later -----------------
    print(f"{'phase':>10} {'window':>18} {'p10':>5} {'p50':>5} {'p90':>5} "
          f"{'in [800,1023]':>14}")
    t = 0
    for name, _mean, _spread, ticks in PHASES:
        s, t = t, t + ticks
        p10, p50, p90 = quantiles.quantiles([0.1, 0.5, 0.9], s, t)
        high = quantiles.range_count(800, UNIVERSE - 1, s, t)
        print(f"{name:>10} {f'({s}, {t}]':>18} {p10:>5} {p50:>5} {p90:>5} "
              f"{high:>14.0f}")

    # --- Where is the distribution mass?  Ask the wavelets. -------------
    s, t = 50_000, 55_000  # the anomaly window
    print(f"\ntop Haar coefficients of the anomaly window ({s}, {t}]:")
    for coefficient in wavelets.top_coefficients(4, s, t):
        lo, hi = coefficient.support
        print(f"  level {coefficient.level:>2} support [{lo}, {hi}]: "
              f"{coefficient.value:+.1f}")
    # Large coefficients with support around ~860 reveal the anomaly's
    # location without scanning any raw data.

    # --- Detecting when the shift happened: median trajectory ----------
    print("\nrunning median per 10k-tick slice:")
    for start in range(0, len(stream), 10_000):
        end = min(start + 10_000, len(stream))
        print(f"  ({start:>6}, {end:>6}]: median ~ "
              f"{quantiles.median(start, end)}")


if __name__ == "__main__":
    main()
