"""A small multiversion stream-store built on the persistent sketches.

The paper closes by envisioning "multiversion data stream systems" the
way persistent data structures enabled multiversion databases.  This
package is that vision in miniature:

* :class:`~repro.store.sharded.ShardedPersistentSketch` — time-partitioned
  ingestion (one persistent sketch per fixed-width time shard, like the
  segments of a timeseries store), with retention (`drop_before`) and
  cross-shard window queries.
* :class:`~repro.store.store.SketchStore` — a facade managing named
  streams, each with a persistent point sketch, an optional heavy-hitter
  hierarchy and an optional join sketch (hash-shared store-wide), plus
  directory-level save/open built on :mod:`repro.io`.
"""

from __future__ import annotations

from repro.store.sharded import ShardedPersistentSketch
from repro.store.store import SketchStore, StreamSpec

__all__ = ["ShardedPersistentSketch", "SketchStore", "StreamSpec"]
