"""Time-partitioned persistent sketching with retention.

Long-running deployments cannot keep a single sketch forever: even a
sublinear structure grows with the stream, and operators want to expire
history ("keep 90 days").  :class:`ShardedPersistentSketch` partitions
time into fixed-width shards, each backed by its own persistent
Count-Min sketch.  Window queries decompose over the shards they
overlap — point queries and heavy-hitter-style estimates are *linear* in
the frequency vector, so per-shard answers simply add (join-style
holistic queries do not decompose; use an unsharded
:class:`~repro.core.persistent_ams.PersistentAMS` for those).

Retention is shard-granular: :meth:`drop_before` atomically forgets
whole shards, bounding total memory for any retention window.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core import columnar
from repro.core.base import PersistentSketch
from repro.core.persistent_countmin import PersistentCountMin
from repro.parallel.pool import WorkerPool


class _ShardWorker:
    """Forked worker owning time shards with ``shard_id % n == index``.

    Shards are created lazily as the stream reaches them, so a worker
    may *create* owned shards the master has never seen; it tracks every
    shard it touched since the fork and ships exactly those back on
    collect (untouched shards are bit-identical in master already)."""

    def __init__(
        self, sketch: ShardedPersistentSketch, index: int, nworkers: int
    ) -> None:
        self._sketch = sketch
        self._index = index
        self._nworkers = nworkers
        self._touched: set[int] = set()

    def feed(self, payload: tuple[np.ndarray, np.ndarray, np.ndarray]) -> None:
        times, items, counts = payload
        sketch = self._sketch
        shard_ids = (times - 1) // sketch.shard_length
        for lo, hi in columnar.group_slices(shard_ids):
            shard_id = int(shard_ids[lo])
            if shard_id % self._nworkers != self._index:
                continue
            shard = sketch._shards.get(shard_id)
            if shard is None:
                width, depth, delta, seed = sketch._params
                shard = sketch._factory(width, depth, delta, seed + shard_id)
                sketch._shards[shard_id] = shard
            shard.ingest_batch(times[lo:hi], items[lo:hi], counts[lo:hi])
            self._touched.add(shard_id)

    def collect(self) -> list[tuple[int, PersistentSketch]]:
        return [
            (shard_id, self._sketch._shards[shard_id])
            for shard_id in sorted(self._touched)
        ]


class ShardedPersistentSketch(PersistentSketch):
    """One persistent sketch per fixed-width time shard.

    Parameters
    ----------
    shard_length:
        Number of time units per shard; shard ``k`` covers
        ``(k * shard_length, (k + 1) * shard_length]``.
    width, depth, delta, seed:
        Parameters for each shard's sketch.
    sketch_factory:
        ``(width, depth, delta, seed) -> PersistentSketch`` for each
        shard; defaults to the PLA-based persistent Count-Min.
    """

    def __init__(
        self,
        shard_length: int,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        sketch_factory: Callable[[int, int, float, int], PersistentSketch]
        | None = None,
        workers: int = 1,
    ):
        super().__init__(workers=workers)
        if shard_length < 1:
            raise ValueError(
                f"shard_length must be >= 1, got {shard_length}"
            )
        self.shard_length = shard_length
        self._factory = sketch_factory or (
            lambda w, d, dl, sd: PersistentCountMin(
                width=w, depth=d, delta=dl, seed=sd
            )
        )
        self._params = (width, depth, delta, seed)
        self._shards: dict[int, PersistentSketch] = {}
        self._dropped_through = -1  # highest shard id expired so far

    # ------------------------------------------------------------------ #
    # Ingest and retention
    # ------------------------------------------------------------------ #

    def _shard_id(self, time: float) -> int:
        # Shard k covers times (k * L, (k + 1) * L]; time 0 is "before
        # the stream" and never carries an update.
        return (int(time) - 1) // self.shard_length

    def _ingest(self, item: int, count: int, time: int) -> None:
        shard_id = self._shard_id(time)
        if shard_id <= self._dropped_through:
            raise ValueError(
                f"time {time} falls in an expired shard (retention "
                f"boundary at shard {self._dropped_through})"
            )
        shard = self._shards.get(shard_id)
        if shard is None:
            width, depth, delta, seed = self._params
            shard = self._factory(width, depth, delta, seed + shard_id)
            self._shards[shard_id] = shard
        # Shard-local clocks are global times; they interleave correctly
        # because global time is strictly increasing.
        shard.update(item, count, time)

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: cut the batch at shard boundaries.

        Batch times are strictly increasing, so shard ids are
        non-decreasing and each shard's records form one contiguous
        slice, forwarded to the shard's own batch plan.  An expired-shard
        violation can only occur on the first slice, before any state is
        touched — exactly where the scalar path raises.
        """
        shard_ids = (times - 1) // self.shard_length
        for lo, hi in columnar.group_slices(shard_ids):
            shard_id = int(shard_ids[lo])
            if shard_id <= self._dropped_through:
                raise ValueError(
                    f"time {int(times[lo])} falls in an expired shard "
                    f"(retention boundary at shard {self._dropped_through})"
                )
            shard = self._shards.get(shard_id)
            if shard is None:
                width, depth, delta, seed = self._params
                shard = self._factory(width, depth, delta, seed + shard_id)
                self._shards[shard_id] = shard
            shard.ingest_batch(times[lo:hi], items[lo:hi], counts[lo:hi])

    # ------------------------------------------------------------------ #
    # Shard-parallel plan (time shards are fully disjoint sub-sketches)
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        return True

    def _worker_handler(self, index: int, nworkers: int) -> _ShardWorker:
        return _ShardWorker(self, index, nworkers)

    def _prevalidate_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        # Shard ids are non-decreasing within a batch, so only the first
        # record can fall in expired history — the exact check (and
        # error) the serial plan performs before touching any state.
        if self._shard_id(int(times[0])) <= self._dropped_through:
            raise ValueError(
                f"time {int(times[0])} falls in an expired shard "
                f"(retention boundary at shard {self._dropped_through})"
            )

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        pool.feed([(times, items, counts)] * pool.nworkers)

    def _install_worker_states(self, states: list) -> None:
        for state in states:
            for shard_id, shard in state:
                self._shards[shard_id] = shard
        # Serial ingest creates shards in ascending time order; restore
        # that insertion order so iteration-order-sensitive consumers
        # (serialization, debugging dumps) see the serial layout.
        self._shards = dict(sorted(self._shards.items()))

    def drop_before(self, time: float) -> int:
        """Expire every shard that ends at or before ``time``.

        Returns the number of shards dropped.  Queries touching expired
        history raise, rather than silently undercounting.
        """
        # Expiry is a master-side mutation the forked workers cannot see:
        # merge and retire the pool first (it re-forks on demand).
        self.detach_workers()
        boundary = int(time) // self.shard_length - 1
        dropped = 0
        for shard_id in sorted(self._shards):
            if shard_id <= boundary:
                del self._shards[shard_id]
                dropped += 1
        self._dropped_through = max(self._dropped_through, boundary)
        return dropped

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` by summing per-shard estimates.

        Each overlapped shard contributes ``eps * ||f_shard||_1 + Delta``
        error, so long windows pay error proportional to the number of
        shards touched — the price of retention.
        """
        s, t = self._resolve_window(s, t)
        first = self._shard_id(s + 1)
        last = self._shard_id(t) if t > 0 else first - 1
        if first <= self._dropped_through and s < t:
            raise ValueError(
                "window reaches into expired shards; narrow s past the "
                "retention boundary"
            )
        total = 0.0
        for shard_id in range(first, last + 1):
            shard = self._shards.get(shard_id)
            if shard is None:
                continue
            shard_start = shard_id * self.shard_length
            shard_end = shard_start + self.shard_length
            # Clamp to the shard's own clock: a shard's history is frozen
            # after its last update, and times past it would (rightly)
            # be rejected by the shard's window validation.
            local_s = max(s, shard_start)
            local_t = min(t, shard_end, shard.now)
            if local_s >= local_t:
                continue  # no updates of this shard fall inside (s, t]
            total += shard.point(item, local_s, local_t)
        return total

    @property
    def shard_count(self) -> int:
        """Number of live shards."""
        self._ensure_synced()
        return len(self._shards)

    def persistence_words(self) -> int:
        self._ensure_synced()
        return sum(
            shard.persistence_words() for shard in self._shards.values()
        )
