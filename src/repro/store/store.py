"""A facade managing persistent sketches for many named streams.

``SketchStore`` is the "multiversion data stream system" front door: you
declare what each stream should support (point queries and heavy hitters
always; join sizes optionally), feed updates by stream name, and query
any past window.  Join-enabled streams automatically share hash
functions store-wide (the Section 4.1 prerequisite), so the join size of
any two of them is queryable.  The whole store round-trips through a
directory of sketch archives via :mod:`repro.io`.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.io import SerializationError
from repro.io import load as load_sketch
from repro.io import save as save_sketch
from repro.io.atomic import atomic_write_text, replace_directory


@dataclass(frozen=True)
class StreamSpec:
    """Declarative configuration of one stream's sketches.

    Attributes
    ----------
    name:
        Stream identifier (must be unique within the store).
    delta:
        Persistence error for all of this stream's sketches.
    universe:
        Required when ``heavy_hitters`` is enabled (sizes the dyadic
        hierarchy); items must lie in ``[0, universe)``.
    heavy_hitters:
        Maintain the dyadic hierarchy for window heavy hitters / top-k.
    joinable:
        Maintain a sampling-based persistent AMS sketch sharing the
        store-wide hash seed, enabling join sizes with every other
        joinable stream (and window self-joins).
    quantiles:
        Answer window rank/quantile queries.  Shares the heavy-hitter
        hierarchy when both are enabled (they use the identical index).
    """

    name: str
    delta: float
    universe: int | None = None
    heavy_hitters: bool = False
    joinable: bool = False
    quantiles: bool = False

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid stream name {self.name!r}")
        if (self.heavy_hitters or self.quantiles) and self.universe is None:
            raise ValueError(
                f"stream {self.name!r}: heavy_hitters/quantiles require "
                "a universe"
            )


class _StreamState:
    __slots__ = ("spec", "point_sketch", "hh_sketch", "join_sketch")

    def __init__(self, spec, point_sketch, hh_sketch, join_sketch):
        self.spec = spec
        self.point_sketch = point_sketch
        self.hh_sketch = hh_sketch
        self.join_sketch = join_sketch


class SketchStore:
    """Persistent sketches for many named streams, one facade.

    Parameters
    ----------
    width, depth:
        Shape of every point/heavy-hitter sketch.
    join_width:
        Shape of the join (AMS) sketches; ``O(1/eps^2)`` semantics, so
        typically wider than ``width``.
    seed:
        Store-wide hash seed; all joinable streams share it.
    workers:
        Worker-pool width for every sketch's parallel batch plans
        (1 = serial).  An execution-layer knob, not part of the durable
        state: it is not persisted by :meth:`save` — pass it again (or
        call :meth:`set_workers`) after :meth:`open`.
    """

    def __init__(
        self,
        width: int = 2048,
        depth: int = 5,
        join_width: int = 4096,
        seed: int = 0,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.width = width
        self.depth = depth
        self.join_width = join_width
        self.seed = seed
        self.workers = int(workers)
        self._buffer_window: int | None = None
        self._buffer_mode = "exact"
        self._streams: dict[str, _StreamState] = {}

    def _sketches(self):
        for state in self._streams.values():
            yield state.point_sketch
            if state.hh_sketch is not None:
                yield state.hh_sketch
            if state.join_sketch is not None:
                yield state.join_sketch

    def set_workers(self, workers: int) -> None:
        """Resize every sketch's worker pool (drains live pools first)."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        for sketch in self._sketches():
            sketch.set_workers(workers)

    def configure_buffer(
        self, window: int | None, mode: str = "exact"
    ) -> None:
        """Enable/disable the two-stage update buffer on every sketch.

        Like ``workers``, an execution-layer knob: not persisted by
        :meth:`save` (which flushes first), so pass it again after
        :meth:`open`.  Streams created later inherit the configuration.
        See :mod:`repro.core.buffer` for the exact/coalesce semantics.
        """
        self._buffer_window = window
        self._buffer_mode = mode
        for sketch in self._sketches():
            sketch.configure_buffer(window=window, mode=mode)

    def flush_buffers(self) -> None:
        """Flush every sketch's staged buffered updates."""
        for sketch in self._sketches():
            sketch.flush_buffer()

    def drain_workers(self, strict: bool = True) -> None:
        """Merge and retire every sketch's worker pool.

        With ``strict=False`` a poisoned pool (workers died with
        unmerged updates) is released without raising — shutdown-path
        semantics, where the WAL already holds the truth.
        """
        from repro.parallel import IngestError

        for sketch in self._sketches():
            try:
                sketch.detach_workers()
            except IngestError:
                if strict:
                    raise

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #

    def create(self, spec: StreamSpec) -> None:
        """Register a stream and build its sketches."""
        if spec.name in self._streams:
            raise ValueError(f"stream {spec.name!r} already exists")
        point_sketch = PersistentCountMin(
            width=self.width,
            depth=self.depth,
            delta=spec.delta,
            seed=self.seed,
            workers=self.workers,
        )
        hh_sketch = (
            PersistentHeavyHitters(
                universe=spec.universe,
                width=self.width,
                depth=self.depth,
                delta=spec.delta,
                seed=self.seed + 1,
                workers=self.workers,
            )
            if spec.heavy_hitters or spec.quantiles
            else None
        )
        join_sketch = (
            PersistentAMS(
                width=self.join_width,
                depth=self.depth,
                delta=spec.delta,
                seed=self.seed,  # shared: mandatory for cross-stream joins
                independent_copies=2,
                sampling_seed=hash(spec.name) & 0x7FFFFFFF,
                workers=self.workers,
            )
            if spec.joinable
            else None
        )
        self._streams[spec.name] = _StreamState(
            spec, point_sketch, hh_sketch, join_sketch
        )
        if self._buffer_window is not None:
            for sketch in (point_sketch, hh_sketch, join_sketch):
                if sketch is not None:
                    sketch.configure_buffer(
                        window=self._buffer_window, mode=self._buffer_mode
                    )

    def streams(self) -> list[str]:
        """Names of all registered streams."""
        return sorted(self._streams)

    def _state(self, name: str) -> _StreamState:
        state = self._streams.get(name)
        if state is None:
            raise KeyError(f"unknown stream {name!r}")
        return state

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def update(  # sketchlint: disable=SL008,SL014 — delegates to each sketch's guarded clock via untyped __slots__ state the resolver cannot type
        self, name: str, item: int, count: int = 1, time: int | None = None
    ) -> None:
        """Feed one update into every sketch of stream ``name``.

        When ``time`` is omitted each sketch advances its own clock;
        mixing omitted and explicit times is rejected by the sketches'
        monotonicity checks.
        """
        state = self._state(name)
        state.point_sketch.update(item, count, time)
        if state.hh_sketch is not None:
            state.hh_sketch.update(item, count, time)
        if state.join_sketch is not None:
            state.join_sketch.update(item, count, time)

    def update_batch(self, name: str, times, items, counts) -> None:
        """Feed a strictly-increasing run of updates columnwise into
        every sketch of stream ``name``.

        Bit-identical to the equivalent sequence of :meth:`update` calls
        (the sketches' batch planners guarantee it); timestamps must be
        explicit and strictly increasing — batch validation happens in
        :meth:`~repro.core.base.PersistentSketch.ingest_batch` before
        any sketch state is touched.
        """
        state = self._state(name)
        state.point_sketch.ingest_batch(times, items, counts)
        if state.hh_sketch is not None:
            state.hh_sketch.ingest_batch(times, items, counts)
        if state.join_sketch is not None:
            state.join_sketch.ingest_batch(times, items, counts)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def point(
        self, name: str, item: int, s: float = 0, t: float | None = None
    ) -> float:
        """Window frequency estimate for ``item`` in stream ``name``."""
        return self._state(name).point_sketch.point(item, s, t)

    def heavy_hitters(
        self, name: str, phi: float, s: float = 0, t: float | None = None
    ) -> dict[int, float]:
        """Window heavy hitters of stream ``name`` (requires the spec
        to enable them)."""
        state = self._state(name)
        if not state.spec.heavy_hitters or state.hh_sketch is None:
            raise ValueError(
                f"stream {name!r} was not created with heavy_hitters=True"
            )
        return state.hh_sketch.heavy_hitters(phi, s, t)

    def top_k(
        self, name: str, k: int, s: float = 0, t: float | None = None
    ) -> list[tuple[int, float]]:
        """Window top-k of stream ``name``."""
        state = self._state(name)
        if not state.spec.heavy_hitters or state.hh_sketch is None:
            raise ValueError(
                f"stream {name!r} was not created with heavy_hitters=True"
            )
        return state.hh_sketch.top_k(k, s, t)

    def window_mass(
        self, name: str, s: float = 0, t: float | None = None
    ) -> float:
        """Estimate of ``||f_{s,t}||_1`` for stream ``name`` (requires
        the spec to enable heavy hitters, whose hierarchy tracks the
        total mass)."""
        state = self._state(name)
        if state.hh_sketch is None:
            raise ValueError(
                f"stream {name!r} was not created with heavy_hitters=True"
            )
        return state.hh_sketch.window_mass(s, t)

    def quantile(
        self, name: str, phi: float, s: float = 0, t: float | None = None
    ) -> int:
        """Window ``phi``-quantile of stream ``name``'s values."""
        return self._quantiles(name).quantile(phi, s, t)

    def rank(
        self, name: str, value: int, s: float = 0, t: float | None = None
    ) -> float:
        """Estimated number of window elements ``<= value``."""
        return self._quantiles(name).rank(value, s, t)

    def _quantiles(self, name: str):
        from repro.core.quantiles import PersistentQuantiles

        state = self._state(name)
        if not state.spec.quantiles or state.hh_sketch is None:
            raise ValueError(
                f"stream {name!r} was not created with quantiles=True"
            )
        return PersistentQuantiles(hierarchy=state.hh_sketch)

    def self_join_size(
        self, name: str, s: float = 0, t: float | None = None
    ) -> float:
        """Window second frequency moment of stream ``name``."""
        state = self._state(name)
        if state.join_sketch is None:
            raise ValueError(
                f"stream {name!r} was not created with joinable=True"
            )
        return state.join_sketch.self_join_size(s, t)

    def join_size(
        self, left: str, right: str, s: float = 0, t: float | None = None
    ) -> float:
        """Window join size between two joinable streams."""
        left_state, right_state = self._state(left), self._state(right)
        if left_state.join_sketch is None or right_state.join_sketch is None:
            raise ValueError(
                "both streams must be created with joinable=True"
            )
        return left_state.join_sketch.join_size(right_state.join_sketch, s, t)

    def persistence_words(self) -> int:
        """Total persistence space across all streams and sketches."""
        total = 0
        for state in self._streams.values():
            total += state.point_sketch.persistence_words()
            if state.hh_sketch is not None:
                total += state.hh_sketch.persistence_words()
            if state.join_sketch is not None:
                total += state.join_sketch.persistence_words()
        return total

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #

    def save(self, directory: str | Path) -> Path:
        """Write the store to ``directory`` (created if missing).

        The save is atomic at directory granularity: every archive and
        the manifest are first written into a sibling temp directory,
        fsynced, and only then swapped into place — a crash mid-save
        leaves either the previous complete store or the new complete
        store on disk, never a half-written mix.
        """
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = directory.with_name(f".{directory.name}.saving.{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            self._write_contents(staging)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        replace_directory(staging, directory)
        return directory

    def _write_contents(self, directory: Path) -> None:
        # Snapshots must capture fully-merged state: drain every worker
        # pool (strictly — a poisoned pool must fail the checkpoint, not
        # persist half a batch) before any sketch is encoded.
        self.drain_workers(strict=True)
        manifest = {
            "format": "repro-store",
            "version": 1,
            "width": self.width,
            "depth": self.depth,
            "join_width": self.join_width,
            "seed": self.seed,
            "streams": [],
        }
        for name, state in sorted(self._streams.items()):
            entry = {
                "name": name,
                "delta": state.spec.delta,
                "universe": state.spec.universe,
                "heavy_hitters": state.spec.heavy_hitters,
                "joinable": state.spec.joinable,
                "quantiles": state.spec.quantiles,
            }
            save_sketch(state.point_sketch, directory / f"{name}.point.json.gz")
            if state.hh_sketch is not None:
                save_sketch(state.hh_sketch, directory / f"{name}.hh.json.gz")
            if state.join_sketch is not None:
                save_sketch(
                    state.join_sketch, directory / f"{name}.join.json.gz"
                )
            manifest["streams"].append(entry)
        atomic_write_text(
            directory / "manifest.json", json.dumps(manifest, indent=2)
        )

    @classmethod
    def open(cls, directory: str | Path) -> "SketchStore":
        """Load a store previously written by :meth:`save`.

        A missing or corrupt manifest raises
        :class:`~repro.io.SerializationError` (as do damaged archives,
        via :func:`repro.io.load`), so checkpoint recovery can treat any
        damaged store directory uniformly and fall back.
        """
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise SerializationError(
                f"{manifest_path}: unreadable store manifest: {exc}"
            ) from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SerializationError(
                f"{manifest_path}: corrupt store manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != "repro-store":
            raise SerializationError(f"{directory} is not a sketch store")
        store = cls(
            width=manifest["width"],
            depth=manifest["depth"],
            join_width=manifest["join_width"],
            seed=manifest["seed"],
        )
        for entry in manifest["streams"]:
            name = entry["name"]
            spec = StreamSpec(
                name=name,
                delta=entry["delta"],
                universe=entry["universe"],
                heavy_hitters=entry["heavy_hitters"],
                joinable=entry["joinable"],
                quantiles=entry.get("quantiles", False),
            )
            point_sketch = load_sketch(directory / f"{name}.point.json.gz")
            hh_sketch = (
                load_sketch(directory / f"{name}.hh.json.gz")
                if spec.heavy_hitters or spec.quantiles
                else None
            )
            join_sketch = (
                load_sketch(directory / f"{name}.join.json.gz")
                if entry["joinable"]
                else None
            )
            store._streams[name] = _StreamState(
                spec, point_sketch, hh_sketch, join_sketch
            )
        return store
