"""Carter-Wegman polynomial hash families.

The sketches in this library need two kinds of limited-independence hash
functions (Section 1.2 of the paper):

* pairwise-independent bucket hashes ``h_j : [n] -> [w]`` for both the
  Count-Min and the AMS sketch, and
* 4-wise independent sign hashes ``xi_j : [n] -> {-1, +1}`` for the AMS
  sketch.

Both are built from degree-(k-1) polynomials with random coefficients over
the Mersenne prime field ``GF(2^61 - 1)``, the classic Carter-Wegman
construction [8].  Every family is deterministically seeded so experiments
are reproducible.
"""

from __future__ import annotations

from repro.hashing.carter_wegman import MERSENNE_PRIME, PolynomialHash
from repro.hashing.families import (
    BucketHashFamily,
    HashConfig,
    SignHashFamily,
    make_bucket_family,
    make_sign_family,
)

__all__ = [
    "MERSENNE_PRIME",
    "PolynomialHash",
    "BucketHashFamily",
    "SignHashFamily",
    "HashConfig",
    "make_bucket_family",
    "make_sign_family",
]
