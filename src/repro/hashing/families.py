"""Seeded families of bucket and sign hashes used by the sketches.

A *family* bundles the ``d`` per-row hash functions of a sketch.  Families
are value objects: two families constructed from the same
:class:`HashConfig` are identical, which is what lets two persistent AMS
sketches on different streams share hash functions for join-size estimation
(Section 4.1 of the paper: the functions "can be shared between the two
streams with O(1) communication" — here, by sharing the config).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.carter_wegman import PolynomialHash, polynomial_hashes


@dataclass(frozen=True)
class HashConfig:
    """Everything needed to reconstruct a sketch's hash functions.

    Attributes
    ----------
    width:
        Number of buckets per row (``w``).
    depth:
        Number of rows (``d``); one independent hash per row.
    seed:
        Master seed; bucket and sign families derive distinct sub-seeds.
    """

    width: int
    depth: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")


class BucketHashFamily:
    """``d`` pairwise-independent hashes ``[n] -> [0, w)``.

    Each row hash is a random degree-1 polynomial over GF(2^61-1) reduced
    mod ``w``.  Results are memoised per element because streams revisit
    the same elements many times and the sketch hot loop dominates runtime.
    """

    __slots__ = ("width", "depth", "_hashes", "_cache")

    def __init__(self, config: HashConfig):
        self.width = config.width
        self.depth = config.depth
        self._hashes = polynomial_hashes(
            config.depth, degree=2, seed=config.seed * 2 + 1
        )
        self._cache: dict[int, tuple[int, ...]] = {}

    def buckets(self, item: int) -> tuple[int, ...]:
        """Column index of ``item`` in each of the ``d`` rows."""
        cached = self._cache.get(item)
        if cached is None:
            cached = tuple(h(item) % self.width for h in self._hashes)
            self._cache[item] = cached
        return cached

    def bucket(self, row: int, item: int) -> int:
        """Column index of ``item`` in row ``row``."""
        return self.buckets(item)[row]

    def buckets_many(self, items: np.ndarray) -> np.ndarray:
        """Column indices for a column of items: shape ``(d, n)`` int64.

        Row ``r`` equals ``[self.buckets(x)[r] for x in items]`` exactly
        (vectorized Carter-Wegman evaluation is bit-identical to the
        scalar path).
        """
        items = np.asarray(items)
        out = np.empty((self.depth, items.shape[0]), dtype=np.int64)
        width = np.uint64(self.width)
        for row, h in enumerate(self._hashes):
            out[row] = (h.eval_many(items) % width).astype(np.int64)
        return out


class SignHashFamily:
    """``d`` 4-wise independent sign hashes ``[n] -> {-1, +1}``.

    A degree-3 polynomial evaluated at the element; the low bit of the
    field value chooses the sign.  4-wise independence is what the AMS
    variance analysis requires [2, 9].
    """

    __slots__ = ("depth", "_hashes", "_cache")

    def __init__(self, config: HashConfig):
        self.depth = config.depth
        self._hashes = polynomial_hashes(
            config.depth, degree=4, seed=config.seed * 2 + 2
        )
        self._cache: dict[int, tuple[int, ...]] = {}

    def signs(self, item: int) -> tuple[int, ...]:
        """Sign (+1 or -1) of ``item`` in each of the ``d`` rows."""
        cached = self._cache.get(item)
        if cached is None:
            cached = tuple(1 - 2 * (h(item) & 1) for h in self._hashes)
            self._cache[item] = cached
        return cached

    def sign(self, row: int, item: int) -> int:
        """Sign of ``item`` in row ``row``."""
        return self.signs(item)[row]

    def signs_many(self, items: np.ndarray) -> np.ndarray:
        """Signs for a column of items: shape ``(d, n)`` int64 of +/-1."""
        items = np.asarray(items)
        out = np.empty((self.depth, items.shape[0]), dtype=np.int64)
        for row, h in enumerate(self._hashes):
            low_bits = (h.eval_many(items) & np.uint64(1)).astype(np.int64)
            out[row] = 1 - 2 * low_bits
        return out


class IdentityHashFamily:
    """Degenerate bucket family: item ``i`` maps to column ``i`` in every row.

    Used when the key space is no larger than the sketch width (e.g. the
    high levels of the dyadic heavy-hitter hierarchy, where the number of
    ranges is small): counting becomes exact per key, so a single row
    suffices and collisions vanish.
    """

    __slots__ = ("width", "depth")

    def __init__(self, width: int, depth: int = 1):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth

    def buckets(self, item: int) -> tuple[int, ...]:
        """Column of ``item`` in each row (the item itself)."""
        if not 0 <= item < self.width:
            raise ValueError(
                f"item {item} outside identity range [0, {self.width})"
            )
        return (item,) * self.depth

    def bucket(self, row: int, item: int) -> int:
        """Column of ``item`` in row ``row``."""
        return self.buckets(item)[row]

    def buckets_many(self, items: np.ndarray) -> np.ndarray:
        """Columns for a column of items: shape ``(d, n)`` int64."""
        arr = np.asarray(items, dtype=np.int64)
        bad = (arr < 0) | (arr >= self.width)
        if bad.any():
            offender = int(arr[int(np.argmax(bad))])
            raise ValueError(
                f"item {offender} outside identity range [0, {self.width})"
            )
        return np.tile(arr, (self.depth, 1))


def make_bucket_family(width: int, depth: int, seed: int = 0) -> BucketHashFamily:
    """Convenience constructor for a :class:`BucketHashFamily`."""
    return BucketHashFamily(HashConfig(width=width, depth=depth, seed=seed))


def make_sign_family(depth: int, seed: int = 0) -> SignHashFamily:
    """Convenience constructor for a :class:`SignHashFamily`."""
    return SignHashFamily(HashConfig(width=1, depth=depth, seed=seed))
