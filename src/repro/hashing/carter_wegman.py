"""Polynomial hashing over the Mersenne prime field GF(2^61 - 1).

A degree-(k-1) polynomial with independently random coefficients drawn from
``GF(p)`` is a k-wise independent hash function [Carter & Wegman 1977].  We
use the Mersenne prime ``p = 2^61 - 1`` so that reduction mod p can be done
with shifts and masks instead of division, and so that hash values fit
comfortably in a machine word.

Python integers are arbitrary precision, so the arithmetic here is exact;
the fast-reduction trick still pays because it avoids the bignum division
path for the common case of < 122-bit intermediates.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import numpy as np

#: The Mersenne prime 2^61 - 1 used as the field modulus.
MERSENNE_PRIME = (1 << 61) - 1

_MASK61 = MERSENNE_PRIME

# uint64 limb constants for the vectorized field arithmetic below.
_U64_MASK61 = np.uint64(_MASK61)
_U64_MASK32 = np.uint64((1 << 32) - 1)
_U64_MASK29 = np.uint64((1 << 29) - 1)


def mod_mersenne(x: int) -> int:
    """Reduce a non-negative integer modulo ``2^61 - 1`` without division.

    Repeatedly folds the high bits down (``x mod 2^61 - 1 ==
    (x >> 61) + (x & mask)`` up to one final correction).
    """
    while x > _MASK61:
        x = (x >> 61) + (x & _MASK61)
    if x == _MASK61:
        return 0
    return x


def fold_mersenne_many(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mod_mersenne` for uint64 arrays below ``2^64``.

    Two shift-and-mask folds bring any uint64 value to at most ``p``;
    the final ``where`` maps ``p`` itself to 0, matching the scalar
    reduction exactly.
    """
    x = (x >> np.uint64(61)) + (x & _U64_MASK61)
    x = (x >> np.uint64(61)) + (x & _U64_MASK61)
    return np.where(x >= _U64_MASK61, x - _U64_MASK61, x)


def mulmod_mersenne_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(a * b) mod p`` for uint64 arrays of field residues.

    Splits each operand into 32-bit limbs so every partial product fits
    in uint64, then folds the 128-bit product down using ``2^61 = 1`` and
    ``2^64 = 8 (mod p)``.  The five reduced terms sum to under ``2^63``,
    so :func:`fold_mersenne_many` finishes the reduction exactly.
    """
    a_hi = a >> np.uint64(32)
    a_lo = a & _U64_MASK32
    b_hi = b >> np.uint64(32)
    b_lo = b & _U64_MASK32
    hi = a_hi * b_hi  # < 2^58
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62
    lo = a_lo * b_lo  # full uint64 product, no wrap
    acc = (
        (hi << np.uint64(3))  # hi * 2^64 = hi * 8 (mod p)
        + (mid >> np.uint64(29))  # mid * 2^32 folded across bit 61
        + ((mid & _U64_MASK29) << np.uint64(32))
        + (lo >> np.uint64(61))
        + (lo & _U64_MASK61)
    )
    return fold_mersenne_many(acc)


class PolynomialHash:
    """A k-wise independent hash ``[n] -> [0, p)`` from a random polynomial.

    Evaluates ``a_{k-1} x^{k-1} + ... + a_1 x + a_0 mod p`` by Horner's rule.
    The leading coefficient is forced nonzero so the polynomial has full
    degree (required for exact k-wise independence of the standard
    construction).

    Parameters
    ----------
    degree:
        Number of coefficients ``k``; the resulting family is k-wise
        independent.  ``degree=2`` gives pairwise, ``degree=4`` 4-wise.
    rng:
        Source of randomness for the coefficients.
    """

    __slots__ = ("coefficients",)

    def __init__(self, degree: int, rng: random.Random):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        coeffs = [rng.randrange(MERSENNE_PRIME) for _ in range(degree)]
        if degree > 1:
            # Leading coefficient must be nonzero for full independence.
            coeffs[-1] = 1 + rng.randrange(MERSENNE_PRIME - 1)
        self.coefficients: tuple[int, ...] = tuple(coeffs)

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x``; result lies in ``[0, p)``."""
        acc = 0
        for c in reversed(self.coefficients):
            acc = mod_mersenne(acc * x + c)
        return acc

    def eval_many(self, xs: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__`: evaluate at every element of ``xs``.

        Exact 61-bit field arithmetic in uint64 limbs — bit-identical to
        the scalar Horner loop for any non-negative inputs below ``2^64``
        (inputs are reduced mod p first; polynomial evaluation commutes
        with the reduction).  Falls back to the scalar path for inputs
        that do not fit uint64.
        """
        arr = np.asarray(xs)
        if arr.dtype.kind not in "iu":
            return np.array(
                [self(int(x)) for x in arr.tolist()], dtype=np.uint64
            )
        if arr.dtype.kind == "i" and arr.size and int(arr.min()) < 0:
            raise ValueError("hash inputs must be non-negative")
        x = fold_mersenne_many(arr.astype(np.uint64))
        acc = np.full(x.shape, np.uint64(self.coefficients[-1]))
        for c in reversed(self.coefficients[:-1]):
            acc = mulmod_mersenne_many(acc, x) + np.uint64(c)
            acc = fold_mersenne_many(acc)
        return acc

    def hash_array(self, xs: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized evaluation; alias of :meth:`eval_many`."""
        return self.eval_many(xs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolynomialHash(degree={len(self.coefficients)})"


def polynomial_hashes(
    count: int, degree: int, seed: int
) -> list[PolynomialHash]:
    """Create ``count`` independent :class:`PolynomialHash` functions."""
    rng = random.Random(seed)
    return [PolynomialHash(degree, rng) for _ in range(count)]


def batched(iterable: Iterable[int], size: int) -> Iterable[list[int]]:
    """Yield lists of at most ``size`` items from ``iterable``."""
    batch: list[int] = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
