"""Polynomial hashing over the Mersenne prime field GF(2^61 - 1).

A degree-(k-1) polynomial with independently random coefficients drawn from
``GF(p)`` is a k-wise independent hash function [Carter & Wegman 1977].  We
use the Mersenne prime ``p = 2^61 - 1`` so that reduction mod p can be done
with shifts and masks instead of division, and so that hash values fit
comfortably in a machine word.

Python integers are arbitrary precision, so the arithmetic here is exact;
the fast-reduction trick still pays because it avoids the bignum division
path for the common case of < 122-bit intermediates.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import numpy as np

#: The Mersenne prime 2^61 - 1 used as the field modulus.
MERSENNE_PRIME = (1 << 61) - 1

_MASK61 = MERSENNE_PRIME


def mod_mersenne(x: int) -> int:
    """Reduce a non-negative integer modulo ``2^61 - 1`` without division.

    Repeatedly folds the high bits down (``x mod 2^61 - 1 ==
    (x >> 61) + (x & mask)`` up to one final correction).
    """
    while x > _MASK61:
        x = (x >> 61) + (x & _MASK61)
    if x == _MASK61:
        return 0
    return x


class PolynomialHash:
    """A k-wise independent hash ``[n] -> [0, p)`` from a random polynomial.

    Evaluates ``a_{k-1} x^{k-1} + ... + a_1 x + a_0 mod p`` by Horner's rule.
    The leading coefficient is forced nonzero so the polynomial has full
    degree (required for exact k-wise independence of the standard
    construction).

    Parameters
    ----------
    degree:
        Number of coefficients ``k``; the resulting family is k-wise
        independent.  ``degree=2`` gives pairwise, ``degree=4`` 4-wise.
    rng:
        Source of randomness for the coefficients.
    """

    __slots__ = ("coefficients",)

    def __init__(self, degree: int, rng: random.Random):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        coeffs = [rng.randrange(MERSENNE_PRIME) for _ in range(degree)]
        if degree > 1:
            # Leading coefficient must be nonzero for full independence.
            coeffs[-1] = 1 + rng.randrange(MERSENNE_PRIME - 1)
        self.coefficients: tuple[int, ...] = tuple(coeffs)

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x``; result lies in ``[0, p)``."""
        acc = 0
        for c in reversed(self.coefficients):
            acc = mod_mersenne(acc * x + c)
        return acc

    def hash_array(self, xs: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized evaluation; returns an ``object``-free uint64 array.

        Uses Python-int Horner per element when inputs may overflow uint64
        products; for the typical case (universe < 2^32) evaluates with
        ``object`` dtype only transiently.  Exactness is preserved.
        """
        arr = np.asarray(xs, dtype=object)
        acc = np.zeros(len(arr), dtype=object)
        for c in reversed(self.coefficients):
            acc = acc * arr + c
            acc = np.frompyfunc(mod_mersenne, 1, 1)(acc)
        return acc.astype(np.uint64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolynomialHash(degree={len(self.coefficients)})"


def polynomial_hashes(
    count: int, degree: int, seed: int
) -> list[PolynomialHash]:
    """Create ``count`` independent :class:`PolynomialHash` functions."""
    rng = random.Random(seed)
    return [PolynomialHash(degree, rng) for _ in range(count)]


def batched(iterable: Iterable[int], size: int) -> Iterable[list[int]]:
    """Yield lists of at most ``size`` items from ``iterable``."""
    batch: list[int] = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
