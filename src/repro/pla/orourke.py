"""O'Rourke's optimal online piecewise-linear approximation [24].

Given a stream of points ``(t, v)`` with strictly increasing ``t`` and an
error bound ``delta``, maintain the invariant that all points fed since the
last emitted segment can be approximated by a single line within vertical
distance ``delta``.  When a new point breaks the invariant, emit a segment
for the points so far and restart from the new point.  The greedy strategy
is optimal in the number of segments, and amortized O(1) per point.

Feasibility is tracked exactly with the classic dual pair of supporting
lines:

* ``u`` — the *maximum-slope* line that passes above every lowered point
  ``(t, v - delta)`` and below every raised point ``(t, v + delta)``;
* ``l`` — the *minimum-slope* such line.

A single line through all error bars exists iff both lines exist, i.e. iff
``u`` clears the new lower bar and ``l`` clears the new upper bar.  The
supporting lines are updated via tangents to two convex chains (the upper
hull of lowered points and the lower hull of raised points), with pointers
that only move forward, giving the amortized O(1) bound.

All interior arithmetic is anchored at the first time of the current run so
float precision does not degrade with stream position.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis import contracts
from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.segment import Segment

# Tolerance for feasibility comparisons.  Inputs are integer counters and
# timestamps, so any violation smaller than this is floating-point noise.
_EPS = 1e-9


def _cross(ox: float, oy: float, px: float, py: float, qx: float, qy: float) -> float:
    """2D cross product of (o->p) x (o->q)."""
    return (px - ox) * (qy - oy) - (py - oy) * (qx - ox)


class OnlinePLA:
    """Optimal online PLA generator for one counter.

    Parameters
    ----------
    delta:
        Maximum allowed vertical deviation between the approximation and
        any fed point.  Must be positive.
    initial_value:
        Counter value before any point is fed (0 for a fresh counter;
        nonzero when a counter is re-tracked mid-stream, e.g. at an epoch
        boundary in the Section 5 construction).
    on_segment:
        Optional callback invoked with each emitted :class:`Segment`;
        defaults to appending to :attr:`function`.
    """

    __slots__ = (
        "__weakref__",  # contract decorators track instances weakly
        "delta",
        "function",
        "_on_segment",
        "_run_points",
        "_t0",
        "_last_x",
        "_count",
        "_first_v",
        "_hull_a",
        "_start_a",
        "_hull_b",
        "_start_b",
        "_u_slope",
        "_u_icept",
        "_l_slope",
        "_l_icept",
    )

    def __init__(
        self,
        delta: float,
        initial_value: float = 0.0,
        on_segment: Callable[[Segment], None] | None = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.function = PiecewiseLinearFunction(initial_value=initial_value)
        self._on_segment = on_segment or self.function.append
        # Shadow copy of the current run's fed points, kept only while
        # contracts are enforced so each emitted segment can be checked
        # against the Delta bound; None keeps the hot path branch cheap.
        self._run_points: list[tuple[int, float]] | None = (
            [] if contracts.ENABLED else None
        )
        self._reset_run()

    def _reset_run(self) -> None:
        if self._run_points:
            self._run_points.clear()
        self._t0 = 0  # global time of the run's first point
        self._last_x = 0.0  # last fed time, relative to _t0
        self._count = 0  # points in the current run
        self._first_v = 0.0
        # Upper hull of lowered points (x, v - delta); tangent ptr start_a.
        self._hull_a: list[tuple[float, float]] = []
        self._start_a = 0
        # Lower hull of raised points (x, v + delta); tangent ptr start_b.
        self._hull_b: list[tuple[float, float]] = []
        self._start_b = 0
        # Supporting lines y = slope * x + icept (x relative to _t0).
        self._u_slope = 0.0
        self._u_icept = 0.0
        self._l_slope = 0.0
        self._l_icept = 0.0

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #

    @contracts.monotone_timestamps(param="t")
    def feed(self, t: int, v: float) -> None:
        """Feed the counter value ``v`` observed at time ``t``.

        Times must be strictly increasing across calls.  In-run
        violations always raise; the ``@monotone_timestamps`` contract
        extends the check across run boundaries when enforcement is on.
        """
        if self._count == 0:
            self._begin_run(t, v)
            return
        x = float(t - self._t0)
        if x <= self._last_x:
            raise ValueError(
                f"feed times must be strictly increasing: {t} after "
                f"{self._t0 + self._last_x}"
            )
        a = v - self.delta
        b = v + self.delta
        if self._count == 1:
            if self._run_points is not None:
                self._run_points.append((t, v))
            self._second_point(x, a, b)
            self._last_x = x
            return
        # Infeasible if even the extreme supporting lines miss the new bar.
        if (
            self._u_slope * x + self._u_icept < a - _EPS
            or self._l_slope * x + self._l_icept > b + _EPS
        ):
            self._emit_segment()
            self._reset_run()
            self._begin_run(t, v)
            return
        # Tighten u if the new upper bar cuts below it.
        if self._u_slope * x + self._u_icept > b + _EPS:
            self._start_a = _tangent_min_slope(self._hull_a, self._start_a, x, b)
            ax, ay = self._hull_a[self._start_a]
            self._u_slope = (b - ay) / (x - ax)
            self._u_icept = ay - self._u_slope * ax
        # Tighten l if the new lower bar cuts above it.
        if self._l_slope * x + self._l_icept < a - _EPS:
            self._start_b = _tangent_max_slope(self._hull_b, self._start_b, x, a)
            bx, by = self._hull_b[self._start_b]
            self._l_slope = (a - by) / (x - bx)
            self._l_icept = by - self._l_slope * bx
        if self._run_points is not None:
            self._run_points.append((t, v))
        self._append_hull_a(x, a)
        self._append_hull_b(x, b)
        self._last_x = x
        self._count += 1

    def feed_many(self, times: list[int], values: list[float]) -> None:
        """Feed a whole time-ordered run of points.

        Semantically identical to calling :meth:`feed` per point; exists
        because the bulk-ingest engine spends most of its time here and
        a fused loop avoids per-call overhead.
        """
        for t, v in zip(times, values):
            self.feed(t, v)

    def finalize(self) -> PiecewiseLinearFunction:
        """Emit the pending segment (if any) and return the PLA function.

        The generator can keep being fed afterwards; finalizing mid-stream
        simply closes the current run.
        """
        if self._count > 0:
            self._emit_segment()
            self._reset_run()
        return self.function

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``.

        Works while the stream is still being ingested: query times inside
        the open (not yet emitted) run are served from the current
        supporting-line bisector, which is within ``delta`` of every fed
        point of the run.
        """
        if self._count > 0 and t >= self._t0:
            x = min(float(t - self._t0), self._last_x)
            return self._bisector_at(x)
        return self.function.value_at(t)

    def segment_count(self, include_open: bool = True) -> int:
        """Number of emitted segments (plus the open run by default)."""
        return len(self.function) + (1 if include_open and self._count > 0 else 0)

    def words(self) -> int:
        """Persistent-archive space in machine words.

        Counts only *generated* segments, matching the paper's Section 6.2
        accounting (its explanation of Figure 3(b) states that no PLA
        segment is generated for counters that never deviate by ``delta``).
        The open run's supporting-line state is live working memory — the
        analogue of the ephemeral sketch, which the paper also excludes —
        and is what :meth:`value_at` consults for query times beyond the
        last emitted segment.
        """
        return self.function.words()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _begin_run(self, t: int, v: float) -> None:
        if self._run_points is not None:
            self._run_points.append((t, v))
        self._t0 = t
        self._last_x = 0.0
        self._count = 1
        self._first_v = v
        self._hull_a = [(0.0, v - self.delta)]
        self._start_a = 0
        self._hull_b = [(0.0, v + self.delta)]
        self._start_b = 0

    def _second_point(self, x: float, a: float, b: float) -> None:
        v0_a = self._first_v - self.delta
        v0_b = self._first_v + self.delta
        # Max-slope line: lowered first point up to raised second point.
        self._u_slope = (b - v0_a) / x
        self._u_icept = v0_a
        # Min-slope line: raised first point down to lowered second point.
        self._l_slope = (a - v0_b) / x
        self._l_icept = v0_b
        self._append_hull_a(x, a)
        self._append_hull_b(x, b)
        self._count = 2

    def _bisector_at(self, x: float) -> float:
        if self._count == 1:
            return self._first_v
        slope = 0.5 * (self._u_slope + self._l_slope)
        icept = 0.5 * (self._u_icept + self._l_icept)
        return slope * x + icept

    def _emit_segment(self) -> None:
        if self._count == 1:
            segment = Segment(
                t_start=self._t0,
                t_end=self._t0,
                slope=0.0,
                value_at_start=self._first_v,
            )
        else:
            slope = 0.5 * (self._u_slope + self._l_slope)
            icept = 0.5 * (self._u_icept + self._l_icept)
            segment = Segment(
                t_start=self._t0,
                t_end=self._t0 + int(self._last_x),
                slope=slope,
                value_at_start=icept,
            )
        if self._run_points:
            contracts.check_segment_error(
                segment,
                [point[0] for point in self._run_points],
                [point[1] for point in self._run_points],
                self.delta,
            )
        self._on_segment(segment)

    def _append_hull_a(self, x: float, y: float) -> None:
        hull = self._hull_a
        start = self._start_a
        # Upper hull: pop while the last point falls on/below the new chord.
        while len(hull) - start >= 2 and (
            _cross(hull[-2][0], hull[-2][1], hull[-1][0], hull[-1][1], x, y)
            >= 0
        ):
            hull.pop()
        hull.append((x, y))

    def _append_hull_b(self, x: float, y: float) -> None:
        hull = self._hull_b
        start = self._start_b
        # Lower hull: pop while the last point falls on/above the new chord.
        while len(hull) - start >= 2 and (
            _cross(hull[-2][0], hull[-2][1], hull[-1][0], hull[-1][1], x, y)
            <= 0
        ):
            hull.pop()
        hull.append((x, y))


def _tangent_min_slope(
    hull: list[tuple[float, float]], start: int, px: float, py: float
) -> int:
    """Index of the hull point minimizing slope to the external point.

    ``hull[start:]`` is a concave chain left of ``(px, py)``; the slope
    from chain point to external point is unimodal (decreasing, then
    increasing), so a forward walk finds the minimum.  The returned index
    becomes the new chain start: earlier points can never be tangent for
    later external points, which is what makes the walk amortized O(1).
    """
    i = start
    last = len(hull) - 1
    while i < last:
        cur = (py - hull[i][1]) / (px - hull[i][0])
        nxt = (py - hull[i + 1][1]) / (px - hull[i + 1][0])
        if nxt < cur:
            i += 1
        else:
            break
    return i


def _tangent_max_slope(
    hull: list[tuple[float, float]], start: int, px: float, py: float
) -> int:
    """Index of the hull point maximizing slope to the external point.

    Mirror image of :func:`_tangent_min_slope` for the convex (lower hull)
    chain.
    """
    i = start
    last = len(hull) - 1
    while i < last:
        cur = (py - hull[i][1]) / (px - hull[i][0])
        nxt = (py - hull[i + 1][1]) / (px - hull[i + 1][0])
        if nxt > cur:
            i += 1
        else:
            break
    return i
