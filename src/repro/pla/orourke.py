"""O'Rourke's optimal online piecewise-linear approximation [24].

Given a stream of points ``(t, v)`` with strictly increasing ``t`` and an
error bound ``delta``, maintain the invariant that all points fed since the
last emitted segment can be approximated by a single line within vertical
distance ``delta``.  When a new point breaks the invariant, emit a segment
for the points so far and restart from the new point.  The greedy strategy
is optimal in the number of segments, and amortized O(1) per point.

Feasibility is tracked exactly with the classic dual pair of supporting
lines:

* ``u`` — the *maximum-slope* line that passes above every lowered point
  ``(t, v - delta)`` and below every raised point ``(t, v + delta)``;
* ``l`` — the *minimum-slope* such line.

A single line through all error bars exists iff both lines exist, i.e. iff
``u`` clears the new lower bar and ``l`` clears the new upper bar.  The
supporting lines are updated via tangents to two convex chains (the upper
hull of lowered points and the lower hull of raised points), with pointers
that only move forward, giving the amortized O(1) bound.

All interior arithmetic is anchored at the first time of the current run so
float precision does not degrade with stream position.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable

import numpy as np

from repro.analysis import contracts
from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.segment import Segment

# Tolerance for feasibility comparisons.  Inputs are integer counters and
# timestamps, so any violation smaller than this is floating-point noise.
_EPS = 1e-9

#: Minimum batch length for the fused (vectorized) feed path; below this
#: the numpy setup costs more than the scalar loop it replaces.
_FUSED_MIN = 16

#: Slack added to the vectorized event-candidate masks.  The masks only
#: need to be a *superset* of the true tighten/break positions (each
#: candidate is then re-checked with the exact scalar float expressions),
#: so the slack just has to dominate the float rounding between the
#: transformed per-point thresholds and the scalar conditions — 1e-7
#: relative is orders of magnitude above both the 1e-9 feasibility EPS
#: band and the ~1e-16 relative rounding of the inputs.
_MASK_SLACK = 1e-7

#: Iteration cap for the parallel-deletion hull passes; reaching it falls
#: back to the sequential pop rule (identical result, just slower).
_CHAIN_PASSES = 48

#: Initial fused working-window length.  Each break/fallback abandons the
#: window's precomputed arrays, so windows start small (bounding the
#: waste per event) and grow geometrically while the run stays quiet.
_FUSED_WINDOW = 1024
_FUSED_GROWTH = 8

#: Below this many points the sequential pop rule beats the parallel
#: hull-deletion passes (numpy call overhead dominates tiny arrays).
_CHAIN_MIN = 48


def _cross(ox: float, oy: float, px: float, py: float, qx: float, qy: float) -> float:
    """2D cross product of (o->p) x (o->q)."""
    return (px - ox) * (qy - oy) - (py - oy) * (qx - ox)


class OnlinePLA:
    """Optimal online PLA generator for one counter.

    Parameters
    ----------
    delta:
        Maximum allowed vertical deviation between the approximation and
        any fed point.  Must be positive.
    initial_value:
        Counter value before any point is fed (0 for a fresh counter;
        nonzero when a counter is re-tracked mid-stream, e.g. at an epoch
        boundary in the Section 5 construction).
    on_segment:
        Optional callback invoked with each emitted :class:`Segment`;
        defaults to appending to :attr:`function`.
    """

    __slots__ = (
        "__weakref__",  # contract decorators track instances weakly
        "delta",
        "function",
        "_on_segment",
        "_run_points",
        "_t0",
        "_last_x",
        "_count",
        "_first_v",
        "_hull_a",
        "_start_a",
        "_hull_b",
        "_start_b",
        "_u_slope",
        "_u_icept",
        "_l_slope",
        "_l_icept",
    )

    def __init__(
        self,
        delta: float,
        initial_value: float = 0.0,
        on_segment: Callable[[Segment], None] | None = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.function = PiecewiseLinearFunction(initial_value=initial_value)
        self._on_segment = on_segment or self.function.append
        # Shadow copy of the current run's fed points, kept only while
        # contracts are enforced so each emitted segment can be checked
        # against the Delta bound; None keeps the hot path branch cheap.
        self._run_points: list[tuple[int, float]] | None = (
            [] if contracts.ENABLED else None
        )
        self._reset_run()

    def _reset_run(self) -> None:
        if self._run_points:
            self._run_points.clear()
        self._t0 = 0  # global time of the run's first point
        self._last_x = 0.0  # last fed time, relative to _t0
        self._count = 0  # points in the current run
        self._first_v = 0.0
        # Upper hull of lowered points (x, v - delta); tangent ptr start_a.
        self._hull_a: list[tuple[float, float]] = []
        self._start_a = 0
        # Lower hull of raised points (x, v + delta); tangent ptr start_b.
        self._hull_b: list[tuple[float, float]] = []
        self._start_b = 0
        # Supporting lines y = slope * x + icept (x relative to _t0).
        self._u_slope = 0.0
        self._u_icept = 0.0
        self._l_slope = 0.0
        self._l_icept = 0.0

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #

    @contracts.monotone_timestamps(param="t")
    def feed(self, t: int, v: float) -> None:
        """Feed the counter value ``v`` observed at time ``t``.

        Times must be strictly increasing across calls.  In-run
        violations always raise; the ``@monotone_timestamps`` contract
        extends the check across run boundaries when enforcement is on.
        """
        if self._count == 0:
            self._begin_run(t, v)
            return
        x = float(t - self._t0)
        if x <= self._last_x:
            raise ValueError(
                f"feed times must be strictly increasing: {t} after "
                f"{self._t0 + self._last_x}"
            )
        a = v - self.delta
        b = v + self.delta
        if self._count == 1:
            if self._run_points is not None:
                self._run_points.append((t, v))
            self._second_point(x, a, b)
            self._last_x = x
            return
        # Infeasible if even the extreme supporting lines miss the new bar.
        if (
            self._u_slope * x + self._u_icept < a - _EPS
            or self._l_slope * x + self._l_icept > b + _EPS
        ):
            self._emit_segment()
            self._reset_run()
            self._begin_run(t, v)
            return
        # Tighten u if the new upper bar cuts below it.
        if self._u_slope * x + self._u_icept > b + _EPS:
            self._start_a = _tangent_min_slope(self._hull_a, self._start_a, x, b)
            ax, ay = self._hull_a[self._start_a]
            self._u_slope = (b - ay) / (x - ax)
            self._u_icept = ay - self._u_slope * ax
        # Tighten l if the new lower bar cuts above it.
        if self._l_slope * x + self._l_icept < a - _EPS:
            self._start_b = _tangent_max_slope(self._hull_b, self._start_b, x, a)
            bx, by = self._hull_b[self._start_b]
            self._l_slope = (a - by) / (x - bx)
            self._l_icept = by - self._l_slope * bx
        if self._run_points is not None:
            self._run_points.append((t, v))
        self._append_hull_a(x, a)
        self._append_hull_b(x, b)
        self._last_x = x
        self._count += 1

    def feed_many(
        self,
        times: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        """Feed a whole time-ordered run of points.

        Semantically identical to calling :meth:`feed` per point; exists
        because the bulk-ingest engine spends most of its time here.  For
        integer-valued numpy columns (the batch planner's native format)
        a vectorized path handles the run in bulk — bit-identical to the
        scalar loop (see :meth:`_feed_fused`); anything else falls back
        to per-point feeding.
        """
        if (
            self._run_points is None
            and isinstance(times, np.ndarray)
            and isinstance(values, np.ndarray)
            and len(times) >= _FUSED_MIN
            and self._feed_fused(times, values)
        ):
            return
        if isinstance(times, np.ndarray):
            times = times.tolist()
        if isinstance(values, np.ndarray):
            values = values.tolist()
        for t, v in zip(times, values):
            self.feed(t, v)

    def _feed_fused(self, t_arr: np.ndarray, v_arr: np.ndarray) -> bool:
        """Vectorized :meth:`feed_many`, bit-identical to the scalar loop.

        Exactness argument.  Within a run, the supporting lines change
        only at *tighten* events, and between events every point is a
        pure hull append.  With the tangent anchor ``(ax, ay)`` fixed
        (pointer advances are validated per event, see below), the
        tighten-``u`` condition ``s*x + icept > b + EPS`` is equivalent
        to ``s > tau_j`` with ``tau_j = (b_j + EPS - ay)/(x_j - ax)``,
        and since every tighten replaces ``s`` by a value *below* its own
        threshold, each event position is a strict running minimum of
        ``tau`` (mirrored for ``l`` with a running maximum).  A break
        requires the corridor to collapse, which implies the *opposite*
        side's tighten condition, so breaks are records too.  Numpy
        extracts the record positions in one pass; a scalar walk then
        re-checks each candidate with the exact float expressions the
        scalar path uses and updates the lines — non-candidates are
        provably pure appends.  Hulls are reconstructed in bulk at the
        end of the run segment (the pop rule's result is canonical for
        sorted points), which is valid because cross products of
        integer-valued coordinates below the guarded magnitude are exact
        in float64 — the entry checks refuse anything else.

        Tangent-pointer advances cannot be ruled out from the chain
        alone, so each tighten is pre-checked against the running
        extreme of the anchor-to-point slopes (the true tangent walk
        only advances when some hull point beats the anchor, and the
        extreme slope over *all* points is attained on the hull); a
        near-miss materializes the hulls and lets scalar :meth:`feed`
        run the real walk for that one point.

        Returns False — with the sketch state untouched — when the
        preconditions don't hold and the caller must use the scalar
        loop (non-integer data, magnitude overflow, or non-monotone
        times, which the scalar loop rejects with the exact error).
        """
        n = len(t_arr)
        if (
            n != len(v_arr)
            or t_arr.dtype.kind not in "iu"
            or v_arr.dtype.kind not in "iu"
            or not self.delta.is_integer()
        ):
            return False
        if self._count > 0 and not int(t_arr[0]) > self._t0 + self._last_x:
            return False
        if n > 1 and not bool(np.all(np.diff(t_arr) > 0)):
            return False
        # Exact-cross-product guard: every |dx * dy| must stay below
        # 2**53 so the bulk hull predicates round identically to the
        # scalar ones (they are then all exact integers).
        x_lim = float(int(t_arr[-1]) - (self._t0 if self._count else int(t_arr[0]))) + 2.0
        y_lim = float(np.max(np.abs(v_arr))) + self.delta + 2.0
        for hull in (self._hull_a, self._hull_b):
            for _hx, hy in hull:
                y_lim = max(y_lim, abs(hy) + 2.0)
        if x_lim * 2.0 * y_lim >= 2.0**52:
            return False
        # Grow the working window geometrically and shrink it back after
        # every break/fallback: an event restarts the vectorized scan
        # (the tangent anchor moved), so unbounded windows would redo
        # O(remaining) numpy work per event.
        pos = 0
        limit = _FUSED_WINDOW
        while pos < n:
            if self._count < 2:
                self.feed(t_arr[pos].item(), v_arr[pos].item())
                pos += 1
                continue
            end, clean = self._fused_segment(
                t_arr, v_arr, pos, min(limit, n - pos)
            )
            limit = limit * _FUSED_GROWTH if clean else _FUSED_WINDOW
            pos = end
        return True

    def _fused_segment(
        self, t_arr: np.ndarray, v_arr: np.ndarray, pos: int, limit: int
    ) -> tuple[int, bool]:
        """Process up to ``limit`` points of ``t_arr[pos:]`` in bulk.

        Returns ``(next_pos, clean)`` where ``clean`` is False when the
        window stopped early on a break or a tangent-walk fallback.
        Requires ``self._count >= 2``.
        """
        x = (t_arr[pos : pos + limit] - self._t0).astype(np.float64)
        v = v_arr[pos : pos + limit].astype(np.float64)
        a = v - self.delta
        b = v + self.delta
        ax, ay = self._hull_a[self._start_a]
        bx, by = self._hull_b[self._start_b]
        dxa = x - ax
        dxb = x - bx
        # Event-candidate masks: strict running-min records of the
        # tighten-u thresholds (mirrored for l), slack-padded so float
        # rounding can never hide a true event (see _feed_fused).
        tau_u = (b + _EPS - ay) / dxa
        tau_l = (a - _EPS - by) / dxb
        su = self._u_slope
        iu = self._u_icept
        sl = self._l_slope
        il = self._l_icept
        prev_min = np.minimum.accumulate(np.concatenate(([su], tau_u[:-1])))
        prev_max = np.maximum.accumulate(np.concatenate(([sl], tau_l[:-1])))
        records = (tau_u < prev_min + _MASK_SLACK * (1.0 + np.abs(tau_u))) | (
            tau_l > prev_max - _MASK_SLACK * (1.0 + np.abs(tau_l))
        )
        # Anchor-to-point slopes: their running extremes bound what the
        # tangent walk could find, proving "no pointer advance" cheaply.
        # Seeding the accumulate with the existing hull's extreme makes
        # ``cg[j]`` the bound over everything strictly before point j.
        g0 = max(
            ((hy - ay) / (hx - ax) for hx, hy in self._hull_a[self._start_a + 1 :]),
            default=float("-inf"),
        )
        h0 = min(
            ((hy - by) / (hx - bx) for hx, hy in self._hull_b[self._start_b + 1 :]),
            default=float("inf"),
        )
        cg = np.maximum.accumulate(np.concatenate(([g0], (a - ay) / dxa)))
        ch = np.minimum.accumulate(np.concatenate(([h0], (b - by) / dxb)))
        madv = _MASK_SLACK + 2.2e-13 * float(x[-1])
        broke = False
        fallback = False
        stop = len(x)
        recs = np.flatnonzero(records)
        xl = x[recs].tolist()
        al = a[recs].tolist()
        bl = b[recs].tolist()
        cgl = cg[recs].tolist()
        chl = ch[recs].tolist()
        for k, j in enumerate(recs.tolist()):
            xj = xl[k]
            aj = al[k]
            bj = bl[k]
            uj = su * xj + iu
            lj = sl * xj + il
            if uj < aj - _EPS or lj > bj + _EPS:
                broke = True
                stop = j
                break
            if uj > bj + _EPS:
                sig = (bj - ay) / (xj - ax)
                if cgl[k] > sig - madv * (1.0 + abs(sig)):
                    fallback = True
                    stop = j
                    break
                su = sig
                iu = ay - su * ax
            if lj < aj - _EPS:
                sig = (aj - by) / (xj - bx)
                if chl[k] < sig + madv * (1.0 + abs(sig)):
                    fallback = True
                    stop = j
                    break
                sl = sig
                il = by - sl * bx
        self._u_slope = su
        self._u_icept = iu
        self._l_slope = sl
        self._l_icept = il
        if stop > 0:
            self._last_x = float(x[stop - 1])
            self._count += stop
        if broke:
            # The pre-break points only matter through count/last_x and
            # the supporting lines (the reset wipes the hulls anyway).
            self._emit_segment()
            self._reset_run()
        else:
            self._bulk_append_hulls(x, a, b, stop)
        if broke or fallback:
            # Scalar feed replays the stopping point exactly: a break
            # begins the next run; a fallback runs the real tangent
            # walk against the freshly materialized hulls.
            self.feed(t_arr[pos + stop].item(), v_arr[pos + stop].item())
            return pos + stop + 1, False
        return pos + stop, True

    def _bulk_append_hulls(
        self, x: np.ndarray, a: np.ndarray, b: np.ndarray, upto: int
    ) -> None:
        """Append ``upto`` points to both hulls in bulk.

        Equivalent to ``upto`` sequential ``_append_hull_*`` calls: the
        incremental pop rule computes the strict upper (lower) hull of
        the sorted chain seeded at the frozen tangent anchor, and with
        exact cross products that result is canonical, so it can be
        recomputed from the anchor's suffix plus the new points.
        """
        if upto <= 0:
            return
        for hull, start, ys, upper in (
            (self._hull_a, self._start_a, a, True),
            (self._hull_b, self._start_b, b, False),
        ):
            seed = hull[start:]
            xs_full = np.concatenate(
                ([p[0] for p in seed], x[:upto])
            )
            ys_full = np.concatenate(
                ([p[1] for p in seed], ys[:upto])
            )
            chain = _bulk_chain(xs_full, ys_full, upper)
            if upper:
                self._hull_a = hull[:start] + chain
            else:
                self._hull_b = hull[:start] + chain

    def finalize(self) -> PiecewiseLinearFunction:
        """Emit the pending segment (if any) and return the PLA function.

        The generator can keep being fed afterwards; finalizing mid-stream
        simply closes the current run.
        """
        if self._count > 0:
            self._emit_segment()
            self._reset_run()
        return self.function

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``.

        Works while the stream is still being ingested: query times inside
        the open (not yet emitted) run are served from the current
        supporting-line bisector, which is within ``delta`` of every fed
        point of the run.
        """
        if self._count > 0 and t >= self._t0:
            x = min(float(t - self._t0), self._last_x)
            return self._bisector_at(x)
        return self.function.value_at(t)

    def segment_count(self, include_open: bool = True) -> int:
        """Number of emitted segments (plus the open run by default)."""
        return len(self.function) + (1 if include_open and self._count > 0 else 0)

    def words(self) -> int:
        """Persistent-archive space in machine words.

        Counts only *generated* segments, matching the paper's Section 6.2
        accounting (its explanation of Figure 3(b) states that no PLA
        segment is generated for counters that never deviate by ``delta``).
        The open run's supporting-line state is live working memory — the
        analogue of the ephemeral sketch, which the paper also excludes —
        and is what :meth:`value_at` consults for query times beyond the
        last emitted segment.
        """
        return self.function.words()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _begin_run(self, t: int, v: float) -> None:
        if self._run_points is not None:
            self._run_points.append((t, v))
        self._t0 = t
        self._last_x = 0.0
        self._count = 1
        self._first_v = v
        self._hull_a = [(0.0, v - self.delta)]
        self._start_a = 0
        self._hull_b = [(0.0, v + self.delta)]
        self._start_b = 0

    def _second_point(self, x: float, a: float, b: float) -> None:
        v0_a = self._first_v - self.delta
        v0_b = self._first_v + self.delta
        # Max-slope line: lowered first point up to raised second point.
        self._u_slope = (b - v0_a) / x
        self._u_icept = v0_a
        # Min-slope line: raised first point down to lowered second point.
        self._l_slope = (a - v0_b) / x
        self._l_icept = v0_b
        self._append_hull_a(x, a)
        self._append_hull_b(x, b)
        self._count = 2

    def _bisector_at(self, x: float) -> float:
        if self._count == 1:
            return self._first_v
        slope = 0.5 * (self._u_slope + self._l_slope)
        icept = 0.5 * (self._u_icept + self._l_icept)
        return slope * x + icept

    def _emit_segment(self) -> None:
        if self._count == 1:
            segment = Segment(
                t_start=self._t0,
                t_end=self._t0,
                slope=0.0,
                value_at_start=self._first_v,
            )
        else:
            slope = 0.5 * (self._u_slope + self._l_slope)
            icept = 0.5 * (self._u_icept + self._l_icept)
            segment = Segment(
                t_start=self._t0,
                t_end=self._t0 + int(self._last_x),
                slope=slope,
                value_at_start=icept,
            )
        if self._run_points:
            contracts.check_segment_error(
                segment,
                [point[0] for point in self._run_points],
                [point[1] for point in self._run_points],
                self.delta,
            )
        self._on_segment(segment)

    def _append_hull_a(self, x: float, y: float) -> None:
        hull = self._hull_a
        start = self._start_a
        # Upper hull: pop while the last point falls on/below the new chord.
        while len(hull) - start >= 2 and (
            _cross(hull[-2][0], hull[-2][1], hull[-1][0], hull[-1][1], x, y)
            >= 0
        ):
            hull.pop()
        hull.append((x, y))

    def _append_hull_b(self, x: float, y: float) -> None:
        hull = self._hull_b
        start = self._start_b
        # Lower hull: pop while the last point falls on/above the new chord.
        while len(hull) - start >= 2 and (
            _cross(hull[-2][0], hull[-2][1], hull[-1][0], hull[-1][1], x, y)
            <= 0
        ):
            hull.pop()
        hull.append((x, y))


def _bulk_chain(
    xs: np.ndarray, ys: np.ndarray, upper: bool
) -> list[tuple[float, float]]:
    """Strict upper (lower) hull of sorted points, as the pop rule builds it.

    Parallel deletion: every interior point whose cross product against
    its current neighbours fails the keep rule is dropped, repeatedly,
    until the chain is strictly convex.  With exact cross products this
    fixed point is unique and equals the sequential pop rule's result:
    true hull vertices are above (below) the chord of *any* flanking
    pair, so no pass ever deletes one, and a surviving non-vertex would
    poke through a hull edge.  The first point (the frozen tangent
    anchor) and the last are never deleted, matching the
    ``len(hull) - start >= 2`` guard of the scalar appends.

    A chord prefilter runs first: interior points on or below (above)
    the first-to-last chord can never be strict upper (lower) hull
    vertices, and one vectorized orientation test deletes them all.
    """
    if len(xs) > _CHAIN_MIN:
        dx = xs[-1] - xs[0]
        dy = ys[-1] - ys[0]
        side = dx * (ys[1:-1] - ys[0]) - dy * (xs[1:-1] - xs[0])
        good = np.flatnonzero(side > 0.0 if upper else side < 0.0) + 1
        if len(good) < len(xs) - 2:
            xs = np.concatenate((xs[:1], xs[good], xs[-1:]))
            ys = np.concatenate((ys[:1], ys[good], ys[-1:]))
    if len(xs) <= _CHAIN_MIN:
        return _sequential_chain(xs.tolist(), ys.tolist(), upper)
    for _ in range(_CHAIN_PASSES):
        m = len(xs)
        if m <= _CHAIN_MIN:
            return _sequential_chain(xs.tolist(), ys.tolist(), upper)
        cross = (xs[1:-1] - xs[:-2]) * (ys[2:] - ys[:-2]) - (
            ys[1:-1] - ys[:-2]
        ) * (xs[2:] - xs[:-2])
        good = np.flatnonzero(cross < 0.0 if upper else cross > 0.0)
        if len(good) == m - 2:
            break
        good += 1
        xs = np.concatenate((xs[:1], xs[good], xs[-1:]))
        ys = np.concatenate((ys[:1], ys[good], ys[-1:]))
    else:
        return _sequential_chain(xs.tolist(), ys.tolist(), upper)
    return list(zip(xs.tolist(), ys.tolist()))


def _sequential_chain(
    xs: list[float], ys: list[float], upper: bool
) -> list[tuple[float, float]]:
    """Sequential fallback for :func:`_bulk_chain` (identical pop rule)."""
    chain: list[tuple[float, float]] = []
    for x, y in zip(xs, ys):
        while len(chain) >= 2:
            ox, oy = chain[-2]
            px, py = chain[-1]
            c = (px - ox) * (y - oy) - (py - oy) * (x - ox)
            if (c >= 0) if upper else (c <= 0):
                chain.pop()
            else:
                break
        chain.append((x, y))
    return chain


def _tangent_min_slope(
    hull: list[tuple[float, float]], start: int, px: float, py: float
) -> int:
    """Index of the hull point minimizing slope to the external point.

    ``hull[start:]`` is a concave chain left of ``(px, py)``; the slope
    from chain point to external point is unimodal (decreasing, then
    increasing), so a forward walk finds the minimum.  The returned index
    becomes the new chain start: earlier points can never be tangent for
    later external points, which is what makes the walk amortized O(1).
    """
    i = start
    last = len(hull) - 1
    while i < last:
        cur = (py - hull[i][1]) / (px - hull[i][0])
        nxt = (py - hull[i + 1][1]) / (px - hull[i + 1][0])
        if nxt < cur:
            i += 1
        else:
            break
    return i


def _tangent_max_slope(
    hull: list[tuple[float, float]], start: int, px: float, py: float
) -> int:
    """Index of the hull point maximizing slope to the external point.

    Mirror image of :func:`_tangent_min_slope` for the convex (lower hull)
    chain.
    """
    i = start
    last = len(hull) - 1
    while i < last:
        cur = (py - hull[i][1]) / (px - hull[i][0])
        nxt = (py - hull[i + 1][1]) / (px - hull[i + 1][0])
        if nxt > cur:
            i += 1
        else:
            break
    return i
