"""Piecewise approximation of counters over time.

This package provides the two "counter compression" substrates of the paper:

* :class:`~repro.pla.orourke.OnlinePLA` — O'Rourke's optimal online
  algorithm [24] for fitting a piecewise-linear function through vertical
  error bars of half-width ``delta``, used by the PLA-based persistent
  Count-Min sketch (Section 3).
* :class:`~repro.pla.piecewise_constant.OnlinePWC` — the piecewise-constant
  recorder of the baseline solution (Section 2): record a value whenever it
  deviates from the last recorded value by more than ``delta``.

Both emit compact, binary-searchable read-only functions
(:class:`~repro.pla.piecewise.PiecewiseLinearFunction` and
:class:`~repro.pla.piecewise_constant.PiecewiseConstantFunction`).
"""

from __future__ import annotations

from repro.pla.orourke import OnlinePLA
from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.piecewise_constant import OnlinePWC, PiecewiseConstantFunction
from repro.pla.segment import Segment

__all__ = [
    "Segment",
    "OnlinePLA",
    "PiecewiseLinearFunction",
    "OnlinePWC",
    "PiecewiseConstantFunction",
]
