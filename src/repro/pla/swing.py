"""A suboptimal O(1)-state online PLA (swing-filter style), for ablation.

O'Rourke's algorithm (:mod:`repro.pla.orourke`) is optimal in segment
count but keeps two convex hulls per open run.  A classic cheaper
alternative anchors every candidate line at the run's *first* point and
narrows a slope funnel as points arrive: constant state, same +-delta
correctness, but the anchor constraint can force segments the optimal
algorithm avoids.

The ablation benchmark (``benchmarks/bench_ablation_pla.py``) quantifies
what the paper's choice of the optimal algorithm buys: on counter-shaped
inputs the anchored filter typically emits noticeably more segments at
equal delta.
"""

from __future__ import annotations

from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.segment import Segment


class SwingPLA:
    """Anchored slope-funnel PLA with O(1) state per open run.

    Guarantees every fed point lies within ``delta`` of the emitted
    piecewise-linear function (same contract as
    :class:`~repro.pla.orourke.OnlinePLA`), but is not optimal in the
    number of segments.
    """

    __slots__ = (
        "delta",
        "function",
        "_t0",
        "_v0",
        "_last_x",
        "_count",
        "_slope_lo",
        "_slope_hi",
    )

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.function = PiecewiseLinearFunction(initial_value=initial_value)
        self._reset()

    def _reset(self) -> None:
        self._t0 = 0
        self._v0 = 0.0
        self._last_x = 0.0
        self._count = 0
        self._slope_lo = 0.0
        self._slope_hi = 0.0

    def feed(self, t: int, v: float) -> None:
        """Feed the counter value ``v`` observed at time ``t``."""
        if self._count == 0:
            self._t0, self._v0, self._count = t, v, 1
            return
        x = float(t - self._t0)
        if x <= self._last_x:
            raise ValueError(
                f"feed times must be strictly increasing: {t} after "
                f"{self._t0 + self._last_x}"
            )
        # Slopes through the anchor that keep the new point in the tube.
        lo = (v - self.delta - self._v0) / x
        hi = (v + self.delta - self._v0) / x
        if self._count == 1:
            self._slope_lo, self._slope_hi = lo, hi
        else:
            new_lo = max(self._slope_lo, lo)
            new_hi = min(self._slope_hi, hi)
            if new_lo > new_hi:
                # Emit under the *pre-break* funnel: narrowing first
                # would let the midpoint violate earlier constraints.
                self._emit()
                self._t0, self._v0, self._count = t, v, 1
                self._last_x = 0.0
                return
            self._slope_lo, self._slope_hi = new_lo, new_hi
        self._last_x = x
        self._count += 1

    def _emit(self) -> None:
        slope = (
            0.0
            if self._count == 1
            else 0.5 * (self._slope_lo + self._slope_hi)
        )
        self.function.append(
            Segment(
                t_start=self._t0,
                t_end=self._t0 + int(self._last_x),
                slope=slope,
                value_at_start=self._v0,
            )
        )

    def finalize(self) -> PiecewiseLinearFunction:
        """Emit the pending segment (if any) and return the function."""
        if self._count > 0:
            self._emit()
            self._reset()
        return self.function

    def segment_count(self) -> int:
        """Emitted segments plus the open run, if any."""
        return len(self.function) + (1 if self._count > 0 else 0)
