"""Line segments of a piecewise-linear approximation."""

from __future__ import annotations

from dataclasses import dataclass

#: Machine words needed to store one segment (slope, offset, start time) —
#: the accounting convention of Section 6.2 of the paper.
WORDS_PER_SEGMENT = 3


@dataclass(frozen=True, slots=True)
class Segment:
    """One segment ``y = slope * (t - t_start) + value_at_start``.

    Segments are anchored at their start time so that evaluation never
    multiplies a slope by a large absolute timestamp, keeping floating-point
    error independent of stream position.

    Attributes
    ----------
    t_start:
        First fed timestamp covered by the segment.
    t_end:
        Last fed timestamp covered by the segment.  The segment remains the
        best available approximation for query times in ``[t_end,
        next.t_start)``; the counter cannot have changed there (a change
        would have produced a fed point), so it is evaluated at ``t_end``.
    slope, value_at_start:
        Line parameters.
    """

    t_start: int
    t_end: int
    slope: float
    value_at_start: float

    def __call__(self, t: float) -> float:
        """Evaluate the underlying line at time ``t`` (no clamping)."""
        return self.value_at_start + self.slope * (t - self.t_start)

    def evaluate_clamped(self, t: float) -> float:
        """Evaluate at ``t`` clamped into ``[t_start, t_end]``.

        Clamping at ``t_end`` is what makes the segment valid for query
        times after its last fed point: the approximated step function is
        constant there.
        """
        if t > self.t_end:
            t = self.t_end
        elif t < self.t_start:
            t = self.t_start
        return self.value_at_start + self.slope * (t - self.t_start)
