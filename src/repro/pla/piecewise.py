"""Read-optimized storage for a piecewise-linear counter approximation."""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Sequence

import numpy as np

from repro.pla.segment import WORDS_PER_SEGMENT, Segment


class PiecewiseLinearFunction:
    """An append-only sequence of :class:`Segment` with predecessor lookup.

    Segments are appended in time order by the PLA generator.  Evaluation at
    a query time ``t`` picks the last segment starting at or before ``t``
    and evaluates it clamped to its covered range: between two consecutive
    fed points (and in the gap after a segment's last point) the underlying
    step-function counter is constant, so clamping is the faithful read.
    """

    __slots__ = ("_starts", "_segments", "initial_value")

    def __init__(self, initial_value: float = 0.0) -> None:
        self._starts: list[int] = []
        self._segments: list[Segment] = []
        self.initial_value = initial_value

    def append(self, segment: Segment) -> None:
        """Append ``segment``; its start must follow all existing segments."""
        if self._starts and segment.t_start <= self._starts[-1]:
            raise ValueError(
                f"segments must be appended in time order: "
                f"{segment.t_start} <= {self._starts[-1]}"
            )
        self._starts.append(segment.t_start)
        self._segments.append(segment)

    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``.

        Returns ``initial_value`` for times before the first segment.
        """
        idx = bisect_right(self._starts, t) - 1
        if idx < 0:
            return self.initial_value
        return self._segments[idx].evaluate_clamped(t)

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    @property
    def segments(self) -> Sequence[Segment]:
        """The stored segments, in time order."""
        return self._segments

    def words(self) -> int:
        """Space in machine words (3 per segment, per Section 6.2)."""
        return WORDS_PER_SEGMENT * len(self._segments)

    def as_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Columnar export ``(starts, ends, slopes, values_at_start)``.

        The arrays are parallel, one entry per segment, with ``starts``
        strictly increasing — the layout the frozen query engine
        (:mod:`repro.engine.frozen`) concatenates across counters for
        vectorized predecessor search.
        """
        segments = self._segments
        return (
            np.array([seg.t_start for seg in segments], dtype=np.int64),
            np.array([seg.t_end for seg in segments], dtype=np.int64),
            np.array([seg.slope for seg in segments], dtype=np.float64),
            np.array(
                [seg.value_at_start for seg in segments], dtype=np.float64
            ),
        )
