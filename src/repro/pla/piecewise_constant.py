"""Piecewise-constant counter recording — the Section 2 baseline.

The baseline persistent sketch keeps track of each counter over time but
records a ``(timestamp, value)`` pair only when the counter has deviated
from the last recorded value by more than ``delta``.  Reading at time ``t``
returns the last recorded value at or before ``t`` (the multiversion
predecessor read), which is within ``delta`` of the true counter value.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.analysis import contracts

#: Machine words per record (value + timestamp), per Section 6.2.
WORDS_PER_RECORD = 2


class PiecewiseConstantFunction:
    """Read side of a piecewise-constant recording."""

    __slots__ = ("_times", "_values", "initial_value")

    def __init__(self, initial_value: float = 0.0) -> None:
        self._times: list[int] = []
        self._values: list[float] = []
        self.initial_value = initial_value

    def append(self, t: int, value: float) -> None:
        """Record ``value`` at time ``t``; times must strictly increase."""
        if self._times and t <= self._times[-1]:
            raise ValueError(
                f"record times must be strictly increasing: {t} <= "
                f"{self._times[-1]}"
            )
        self._times.append(t)
        self._values.append(value)

    def value_at(self, t: float) -> float:
        """Last recorded value at or before ``t`` (``initial_value`` if none)."""
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return self.initial_value
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._times)

    def words(self) -> int:
        """Space in machine words (2 per record, per Section 6.2)."""
        return WORDS_PER_RECORD * len(self._times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar export ``(times, values)`` of the recorded pairs.

        ``times`` is strictly increasing; used by the frozen query engine
        (:mod:`repro.engine.frozen`) for vectorized predecessor search.
        """
        return (
            np.array(self._times, dtype=np.int64),
            np.array(self._values, dtype=np.float64),
        )


class OnlinePWC:
    """Online recorder: store the counter when it drifts more than ``delta``.

    Parameters
    ----------
    delta:
        Recording threshold.  A value is recorded when
        ``|value - last_recorded| > delta``; the implied read error is at
        most ``delta``.
    initial_value:
        Reference value before any record exists.
    """

    __slots__ = ("__weakref__", "delta", "function", "_last_recorded")

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.function = PiecewiseConstantFunction(initial_value=initial_value)
        self._last_recorded = float(initial_value)

    @contracts.monotone_timestamps(param="t")
    def feed(self, t: int, value: float) -> None:
        """Observe the counter value at time ``t``; record it if it drifted.

        Non-drifting observations skip the store, so out-of-order times
        between records are invisible to :class:`PiecewiseConstantFunction`
        validation; the ``@monotone_timestamps`` contract closes that gap
        when enforcement is on.
        """
        if abs(value - self._last_recorded) > self.delta:
            self.function.append(t, value)
            self._last_recorded = value

    def feed_many(
        self, times: Sequence[int], values: Sequence[float]
    ) -> None:
        """Batch :meth:`feed`: observe many ``(t, value)`` pairs at once.

        Bit-identical to the scalar loop.  Under contract enforcement the
        scalar path is kept so ``@monotone_timestamps`` state advances per
        observation; otherwise a fused drift walk skips the per-record
        call overhead (the recorded function still validates ordering).
        Numpy columns are converted to Python scalars first so the
        recorded pairs never hold numpy scalar types.
        """
        if isinstance(times, np.ndarray):
            times = times.tolist()
        if isinstance(values, np.ndarray):
            values = values.tolist()
        if contracts.ENABLED:
            for t, value in zip(times, values):
                self.feed(t, value)
            return
        delta = self.delta
        last = self._last_recorded
        append = self.function.append
        for t, value in zip(times, values):
            if abs(value - last) > delta:
                append(t, value)
                last = value
        self._last_recorded = last

    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``."""
        return self.function.value_at(t)

    def words(self) -> int:
        """Space in machine words."""
        return self.function.words()
