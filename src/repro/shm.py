"""Shared-memory buffer substrate: one mapped segment, many processes.

Every multi-process layer of the repo — the row-partitioned ingest pool,
frozen-view serving, checkpoint publication — moves data through the
same primitive: a POSIX shared-memory segment
(:class:`multiprocessing.shared_memory.SharedMemory`) holding a small
versioned header, a pickle (protocol 5) of an arbitrary object graph,
and the graph's numpy buffers laid out out-of-band.  Writing costs one
memcpy per array; :func:`read_object` reconstructs the arrays as
**zero-copy views over the mapped buffer**, so N attached processes
share one physical copy of the data no matter how many attach.

Ownership and lifecycle (the rules every user of this module follows)::

    * The CREATOR of a segment is its sole owner: only the owner calls
      unlink().  Owned segments are tracked in a module registry and
      unlinked at interpreter exit as a safety net, so a crashed owner
      leaks nothing (the stdlib resource tracker backstops a kill -9).
    * ATTACHERS call attach() -> read_object() -> close(); they never
      unlink.  Attaching deregisters the segment from this process's
      resource tracker, so an attacher exiting (or dying) can never
      tear down a segment the owner still serves.
    * POSIX semantics do the rest: an unlinked segment stays fully
      valid for every process still attached; the kernel frees the
      pages at last detach.  Cutover therefore never waits on readers.

``repro-shm-<pid>-...`` naming makes leak checks trivial:
:func:`leaked_segments` lists every live segment this process family
created, and the chaos suite asserts the list is empty after teardown.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import threading
from multiprocessing import shared_memory
from typing import Any, Iterator

#: Segment header: magic, format version, reserved flags, pickle byte
#: length, out-of-band buffer count.  Buffer lengths (u64 each) follow,
#: then the pickle bytes, then the buffers themselves, 64-byte aligned.
_HEADER = struct.Struct("<4sHHQI")

_MAGIC = b"RSHM"
_VERSION = 1
_ALIGN = 64

#: Default name prefix of every segment this module creates; leak
#: checks and the CI smoke job glob /dev/shm for it.
NAME_PREFIX = "repro-shm"

#: Where POSIX shared memory surfaces as files on Linux.
_SHM_DIR = "/dev/shm"


class ShmError(RuntimeError):
    """A shared-memory segment is malformed or unusable."""


class _Mapping(shared_memory.SharedMemory):
    """``SharedMemory`` whose finalizer tolerates still-exported views.

    A mapping whose zero-copy views outlive its handle cannot be closed
    (the buffer protocol forbids it); the kernel reclaims the pages at
    process exit instead, and the name is unlinked separately by the
    owner.  The stdlib finalizer raises ``BufferError`` in that state —
    pure noise under this module's lifecycle, so it is swallowed here.
    """

    def __del__(self) -> None:
        try:
            super().__del__()
        except BufferError:
            pass  # views pin the mapping; the kernel frees it at exit


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# --------------------------------------------------------------------- #
# Owned-segment registry (leak safety net)
# --------------------------------------------------------------------- #

_registry_lock = threading.Lock()
_owned: dict[str, "ShmSegment"] = {}


def _register_owned(segment: "ShmSegment") -> None:
    with _registry_lock:
        _owned[segment.name] = segment


def _forget_owned(name: str) -> None:
    with _registry_lock:
        _owned.pop(name, None)


def owned_segment_names() -> list[str]:
    """Names of segments this process created and has not yet unlinked."""
    with _registry_lock:
        return sorted(_owned)


def _reset_after_fork() -> None:
    """Drop inherited ownership in a forked child.

    A fork inherits the parent's owned-segment registry copy-on-write;
    without this reset the child's exit hook would unlink segments the
    parent still serves.  Ownership never crosses a fork.
    """
    global _registry_lock
    _registry_lock = threading.Lock()
    _owned.clear()


os.register_at_fork(after_in_child=_reset_after_fork)


@atexit.register
def _unlink_owned_at_exit() -> None:
    """Interpreter-exit safety net: unlink every still-owned segment.

    Normal paths unlink explicitly (pool collect/close, serving cutover,
    runtime close); this catches an owner that exits through an
    unhandled exception.  Attached readers in other processes keep
    their mappings — unlink only removes the name.
    """
    with _registry_lock:
        leftovers = list(_owned.values())
        _owned.clear()
    for segment in leftovers:
        segment.close()
        try:
            segment._shm.unlink()
        except FileNotFoundError:
            pass  # already gone: owner double-cleanup is benign


def shm_available() -> bool:
    """Whether POSIX shared memory works on this platform.

    The probe also starts the stdlib resource tracker as a side effect,
    which matters for lifecycle accounting: pools call this *before*
    forking workers, so the whole process family inherits one tracker
    (see :meth:`ShmSegment.attach`).
    """
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            probe = _Mapping(create=True, size=16)
            try:
                _SHM_PROBE = True
            finally:
                probe.unlink()
                probe.close()
        except Exception:  # sketchlint: disable=SL004,SL016 — capability probe; failure is the degrade signal (callers fall back to pipe transport) and is memoized, not lost
            _SHM_PROBE = False
    return _SHM_PROBE


_SHM_PROBE: bool | None = None


# --------------------------------------------------------------------- #
# Segment handle
# --------------------------------------------------------------------- #


class ShmSegment:
    """Handle to one shared-memory segment, owner- or attacher-side.

    Construct through :meth:`create` (owner) or :meth:`attach`
    (reader); the plain constructor is their shared plumbing.  Usable
    as a context manager: ``__exit__`` closes the local mapping and,
    for the owner, unlinks the name — the guaranteed
    unlink-on-close lifecycle the substrate promises.
    """

    __slots__ = ("_shm", "name", "size", "owner", "_closed")

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.size = shm.size
        self.owner = owner
        self._closed = False

    @classmethod
    def create(cls, size: int, *, prefix: str = NAME_PREFIX) -> "ShmSegment":
        """Create (and own) a fresh segment of at least ``size`` bytes."""
        if size < 1:
            raise ValueError(f"segment size must be >= 1, got {size}")
        counter = 0
        while True:
            name = f"{prefix}-{os.getpid()}-{os.urandom(4).hex()}"
            try:
                raw = _Mapping(
                    name=name, create=True, size=size
                )
                break
            except FileExistsError:
                counter += 1
                if counter >= 16:
                    raise
        segment = cls(raw, owner=True)
        _register_owned(segment)
        return segment

    @classmethod
    def attach(cls, name: str) -> "ShmSegment":
        """Attach to an existing segment by name (reader-side).

        Resource-tracker accounting stays with the owner: every process
        in this codebase that attaches is a fork descendant of the
        creator, so they share one tracker and the attach-side
        ``register`` is an idempotent no-op (the tracker keys by name).
        The owner's ``unlink`` performs the single matching
        ``unregister``; attachers never touch the registration, which
        is what keeps a dying reader from tearing the segment down
        under its siblings.  (:func:`shm_available`'s probe starts the
        tracker before any pool forks, so the whole family shares it.)
        """
        try:
            raw = _Mapping(name=name, create=False)
        except FileNotFoundError as exc:
            raise ShmError(
                f"shared segment {name!r} does not exist (owner unlinked "
                "it, or it was never published)"
            ) from exc
        return cls(raw, owner=False)

    @property
    def buf(self) -> memoryview:
        """The mapped buffer (writable for the owner)."""
        if self._closed:
            raise ShmError(f"segment {self.name!r} is closed")
        return self._shm.buf

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the local mapping."""
        return self._closed

    def close(self) -> bool:
        """Release this process's mapping (idempotent).

        Returns ``False`` when live zero-copy views still pin the
        mapping (numpy arrays from :func:`read_object` that the caller
        has not dropped yet) — the close is refused by the kernel
        buffer protocol, and the caller should retry after releasing
        the views.  Owners keep the name alive either way; only
        :meth:`unlink` removes it.
        """
        if self._closed:
            return True
        try:
            self._shm.close()
        except BufferError:
            return False  # exported views pin the mapping; retry later
        self._closed = True
        return True

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent).

        Already-attached readers keep a valid mapping until they close
        — POSIX keeps the pages alive until last detach — but no new
        attach can succeed afterwards.
        """
        if not self.owner:
            raise ShmError(
                f"segment {self.name!r} is attached, not owned; only the "
                "creator may unlink"
            )
        _forget_owned(self.name)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked: double-cleanup is benign

    def adopt(self) -> None:
        """Take unlink ownership of an attached segment.

        Used when lifecycle responsibility transfers across processes —
        e.g. a pool worker writes its partition state into a segment and
        hands the name to the master, which adopts it so exactly one
        process (the master) unlinks.  Idempotent for owners.
        """
        if not self.owner:
            self.owner = True
            _register_owned(self)

    def release(self) -> None:
        """Owner teardown in one call: close the mapping and unlink."""
        self.close()
        if self.owner:
            self.unlink()

    def __enter__(self) -> "ShmSegment":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release() if self.owner else self.close()


# --------------------------------------------------------------------- #
# Object <-> segment codec (pickle protocol 5, out-of-band buffers)
# --------------------------------------------------------------------- #


def write_object(obj: Any, *, prefix: str = NAME_PREFIX) -> ShmSegment:
    """Serialize ``obj`` into a fresh owned segment.

    Pickle protocol 5 externalizes every contiguous numpy array in the
    object graph as an out-of-band buffer; the pickle itself holds only
    the graph structure.  Cost: one pickling pass plus one memcpy per
    buffer.  The caller owns the returned segment and must eventually
    ``unlink()`` (or ``release()``) it.
    """
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [buffer.raw() for buffer in buffers]
    lengths = [view.nbytes for view in views]
    table = struct.pack(f"<{len(views)}Q", *lengths)
    data_start = _align(_HEADER.size + len(table) + len(payload))
    total = data_start
    for length in lengths:
        total = _align(total + length)
    segment = ShmSegment.create(max(total, 1), prefix=prefix)
    try:
        buf = segment.buf
        buf[: _HEADER.size] = _HEADER.pack(
            _MAGIC, _VERSION, 0, len(payload), len(views)
        )
        cursor = _HEADER.size
        buf[cursor : cursor + len(table)] = table
        cursor += len(table)
        buf[cursor : cursor + len(payload)] = payload
        cursor = data_start
        for view, length in zip(views, lengths):
            buf[cursor : cursor + length] = view
            cursor = _align(cursor + length)
    except BaseException:
        segment.release()  # never leak a half-written segment
        raise
    finally:
        for view in views:
            view.release()
        for buffer in buffers:
            buffer.release()
    return segment


def _layout(segment: ShmSegment) -> tuple[int, list[int], int]:
    """Validated ``(pickle_len, buffer_lengths, data_start)``."""
    buf = segment.buf
    if len(buf) < _HEADER.size:
        raise ShmError(f"segment {segment.name!r} is too small for a header")
    magic, version, _flags, payload_len, nbufs = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise ShmError(
            f"segment {segment.name!r} is not a repro shm segment "
            f"(bad magic {magic!r})"
        )
    if version != _VERSION:
        raise ShmError(
            f"segment {segment.name!r} has layout version {version}; "
            f"this build reads version {_VERSION}"
        )
    lengths = list(
        struct.unpack_from(f"<{nbufs}Q", buf, _HEADER.size)
    )
    data_start = _align(_HEADER.size + 8 * nbufs + payload_len)
    return payload_len, lengths, data_start


def read_object(segment: ShmSegment, *, readonly: bool = True) -> Any:
    """Reconstruct the object written by :func:`write_object`.

    Numpy arrays come back as zero-copy views over the mapped buffer —
    read-only by default, so an attached reader cannot scribble on
    state other processes share.  The views pin the segment's mapping:
    ``segment.close()`` reports ``False`` until the caller drops them.
    """
    payload_len, lengths, data_start = _layout(segment)
    buf = segment.buf
    pickle_off = _HEADER.size + 8 * len(lengths)
    payload = bytes(buf[pickle_off : pickle_off + payload_len])
    views = []
    cursor = data_start
    for length in lengths:
        view = buf[cursor : cursor + length]
        views.append(view.toreadonly() if readonly else view)
        cursor = _align(cursor + length)
    return pickle.loads(payload, buffers=views)


def read_attached(name: str, *, readonly: bool = True) -> tuple[Any, ShmSegment]:
    """Attach to ``name`` and decode it: ``(object, segment)``.

    The returned segment must outlive every array view inside the
    object; callers close it once they are done with the object.
    """
    segment = ShmSegment.attach(name)
    try:
        return read_object(segment, readonly=readonly), segment
    except BaseException:
        segment.close()
        raise


# --------------------------------------------------------------------- #
# Leak auditing
# --------------------------------------------------------------------- #


def leaked_segments(prefix: str = NAME_PREFIX) -> list[str]:
    """Live ``/dev/shm`` entries carrying ``prefix`` (any pid).

    The substrate's invariant is that this list is empty once every
    owner has closed: tests and the CI smoke job call it after
    teardown.  Returns ``[]`` on platforms without a /dev/shm.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # sketchlint: disable=SL016 — no /dev/shm means no POSIX segments can exist, so "no leaks" is the truthful answer
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def reap_segment(name: str) -> bool:
    """Forcibly unlink segment ``name``, whoever created it.

    The cleanup counterpart of :meth:`ShmSegment.adopt` for owners that
    can no longer do it themselves: a pool master calls this over a dead
    (kill -9'd) worker's segments.  Processes still attached keep valid
    mappings.  Returns ``False`` when the name is already gone.
    """
    try:
        raw = _Mapping(name=name, create=False)
    except FileNotFoundError:
        return False
    try:
        raw.unlink()
    except FileNotFoundError:
        return False  # raced another reaper: still cleaned up
    finally:
        raw.close()
    return True


def reap_pid_segments(pid: int, *, prefix: str = NAME_PREFIX) -> list[str]:
    """Unlink every live segment created by process ``pid``.

    Segment names embed the creator's pid, so a supervisor can sweep a
    dead worker's leftovers by listing ``/dev/shm``.  Returns the names
    reaped (useful for healing counters and leak assertions).
    """
    reaped = []
    for name in leaked_segments(f"{prefix}-{pid}-"):
        if reap_segment(name):
            reaped.append(name)
    return reaped


def iter_owned() -> Iterator[ShmSegment]:
    """Snapshot iterator over currently owned segments (diagnostics)."""
    with _registry_lock:
        snapshot = list(_owned.values())
    return iter(snapshot)
