"""Related-work baselines the paper positions itself against.

Section 1.1 contrasts persistent sketches with the *sliding-window*
model [3, 6, 13]: dedicated sliding-window summaries answer only the
current window position and forget past ones.  The canonical such
structure is the exponential histogram of Datar, Gionis, Indyk and
Motwani [13], implemented here so the capability gap (and the space
comparison) can be demonstrated rather than asserted — see
``tests/test_baselines.py``.
"""

from __future__ import annotations

from repro.baselines.exponential_histogram import ExponentialHistogram

__all__ = ["ExponentialHistogram"]
