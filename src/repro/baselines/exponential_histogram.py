"""The exponential histogram of Datar, Gionis, Indyk & Motwani [13].

Counts events in a sliding window of the last ``window`` time units with
relative error at most ``eps``, in ``O((1/eps) log^2 W)`` bits.  Events
are grouped into buckets whose sizes are powers of two; at most
``k + 1 = ceil(1/eps) + 1`` buckets of each size are kept, merging the
two oldest of a size when the budget is exceeded; buckets whose newest
timestamp has left the window are dropped.  The window estimate counts
full buckets plus half of the oldest (straddling) bucket.

This is the paper's Section 1.1 foil: it answers only the *current*
window position.  Once time moves on, past windows are unrecoverable —
exactly the capability persistent sketches add.
"""

from __future__ import annotations

import math
from collections import deque


class ExponentialHistogram:
    """Sliding-window event counter with ``eps`` relative error.

    Parameters
    ----------
    window:
        Window length ``W`` in time units.
    eps:
        Relative error bound; the per-size bucket budget is
        ``ceil(1/eps)``.
    """

    def __init__(self, window: int, eps: float = 0.1):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 < eps <= 1:
            raise ValueError(f"eps must lie in (0, 1], got {eps}")
        self.window = window
        self.eps = eps
        self._budget = math.ceil(1.0 / eps)
        # Buckets as (newest_timestamp, size), newest first.
        self._buckets: deque[tuple[int, int]] = deque()
        self._now = 0

    def add(self, time: int) -> None:
        """Record one event at ``time`` (non-decreasing)."""
        if time < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {time} < {self._now}"
            )
        self._now = time
        self._buckets.appendleft((time, 1))
        self._merge()
        self._expire()

    def advance(self, time: int) -> None:
        """Advance the clock without an event (expires old buckets)."""
        if time < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {time} < {self._now}"
            )
        self._now = time
        self._expire()

    def _merge(self) -> None:
        # Scan newest-to-oldest; when a size has budget + 1 buckets,
        # merge the two oldest of that size into one of double size.
        buckets = list(self._buckets)
        idx = 0
        size = 1
        while idx < len(buckets):
            run_start = idx
            while idx < len(buckets) and buckets[idx][1] == size:
                idx += 1
            run_length = idx - run_start
            if run_length > self._budget:
                # Merge the two oldest of this size (at the run's end).
                second, first = buckets[idx - 2], buckets[idx - 1]
                merged = (second[0], size * 2)
                buckets[idx - 2 : idx] = [merged]
                idx -= 1
            size *= 2
            # Skip to the next size's run start (idx already there).
        self._buckets = deque(buckets)

    def _expire(self) -> None:
        cutoff = self._now - self.window
        while self._buckets and self._buckets[-1][0] <= cutoff:
            self._buckets.pop()

    def estimate(self) -> float:
        """Events in ``(now - window, now]``, within ``eps`` relative error."""
        if not self._buckets:
            return 0.0
        total = sum(size for _ts, size in self._buckets)
        oldest_size = self._buckets[-1][1]
        return total - oldest_size / 2.0 + 0.5 if oldest_size > 1 else float(total)

    def bucket_count(self) -> int:
        """Live buckets (the structure's size, up to the log^2 factor)."""
        return len(self._buckets)

    def words(self) -> int:
        """Space in machine words (timestamp + size per bucket)."""
        return 2 * len(self._buckets)
