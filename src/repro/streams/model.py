"""The discrete-time streaming model of Section 1.2.

A stream is a sequence of updates ``(t, item, count)`` with strictly
increasing integer timestamps.  In the *cash-register* (standard) model
``count`` is always ``+1``; the *turnstile* model allows ``count`` in
``{-1, 0, +1}``.  The paper's discrete time model assumes at most one
arrival per time instant, which is what makes "the frequency vector at
time t" well defined; generators therefore assign each update its own
tick by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Update:
    """One stream update: ``count`` copies of ``item`` arriving at ``time``."""

    time: int
    item: int
    count: int = 1


class Stream:
    """A materialized stream with strictly increasing timestamps.

    Stored column-wise in numpy arrays so workloads of 10^5-10^6 updates
    stay cheap to hold and slice.  Iteration yields :class:`Update`.
    """

    def __init__(
        self,
        items: Sequence[int] | np.ndarray,
        times: Sequence[int] | np.ndarray | None = None,
        counts: Sequence[int] | np.ndarray | None = None,
        universe: int | None = None,
    ):
        self.items = np.asarray(items, dtype=np.int64)
        n = len(self.items)
        if times is None:
            self.times = np.arange(1, n + 1, dtype=np.int64)
        else:
            self.times = np.asarray(times, dtype=np.int64)
            if len(self.times) != n:
                raise ValueError("times and items must have equal length")
            if n > 1 and not (np.diff(self.times) > 0).all():
                raise ValueError("timestamps must be strictly increasing")
        if counts is None:
            self.counts = np.ones(n, dtype=np.int64)
        else:
            self.counts = np.asarray(counts, dtype=np.int64)
            if len(self.counts) != n:
                raise ValueError("counts and items must have equal length")
        self.universe = universe

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Update]:
        for t, i, c in zip(self.times, self.items, self.counts):
            yield Update(time=int(t), item=int(i), count=int(c))

    @property
    def is_cash_register(self) -> bool:
        """True when every update is a single insertion."""
        return bool((self.counts == 1).all())

    @property
    def end_time(self) -> int:
        """Timestamp of the last update (0 for the empty stream)."""
        return int(self.times[-1]) if len(self) else 0

    def prefix(self, length: int) -> "Stream":
        """The first ``length`` updates as a new stream."""
        return Stream(
            self.items[:length],
            self.times[:length],
            self.counts[:length],
            universe=self.universe,
        )

    @classmethod
    def from_updates(
        cls, updates: Iterable[Update], universe: int | None = None
    ) -> "Stream":
        """Materialize an iterable of :class:`Update`."""
        rows = list(updates)
        return cls(
            items=[u.item for u in rows],
            times=[u.time for u in rows],
            counts=[u.count for u in rows],
            universe=universe,
        )
