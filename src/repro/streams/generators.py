"""Synthetic stream generators.

``zipf_stream`` reproduces the paper's ``Zipf_3`` workload: items drawn
i.i.d. from a Zipf distribution with coefficient 3 over a universe of
``2^24`` (Section 6.1).  ``uniform_stream`` draws items uniformly; both
are instances of the paper's *random stream model* (Definition 3.1), under
which Theorem 3.3's ``O(m / Delta^2)`` PLA space bound holds.
"""

from __future__ import annotations

import numpy as np

from repro.streams.model import Stream

#: Universe size used by the paper's synthetic experiments.
PAPER_UNIVERSE = 2**24


def zipf_stream(
    length: int,
    universe: int = PAPER_UNIVERSE,
    exponent: float = 3.0,
    seed: int = 0,
) -> Stream:
    """The paper's ``Zipf_3`` workload (Section 6.1).

    Items are ranks drawn from a truncated Zipf law with the given
    exponent, then shuffled through a fixed permutation of the universe so
    the popular items are not simply ``0, 1, 2, ...``.

    Parameters
    ----------
    length:
        Number of updates ``m`` (the paper uses 10^6).
    universe:
        Universe size ``n`` (the paper uses ``2^24``).
    exponent:
        Zipf coefficient (the paper uses 3 — highly skewed).
    seed:
        RNG seed; streams are fully reproducible.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = np.random.default_rng(seed)
    # Truncated Zipf via inverse-CDF over the first `support` ranks.  With
    # exponent > 1 the tail mass beyond a few thousand ranks is negligible,
    # so a bounded support keeps memory flat without changing the law.
    support = min(universe, 100_000)
    ranks = np.arange(1, support + 1, dtype=np.float64)
    pmf = ranks**-exponent
    pmf /= pmf.sum()
    cdf = np.cumsum(pmf)
    draws = np.searchsorted(cdf, rng.random(length), side="right")
    # Scatter ranks over the universe with a seeded affine permutation so
    # bucket hashes see "random looking" identifiers.
    scatter = rng.permutation(support).astype(np.int64)
    stride = universe // max(support, 1) or 1
    items = (scatter[draws] * stride + 17) % universe
    return Stream(items=items, universe=universe)


def uniform_stream(
    length: int, universe: int = PAPER_UNIVERSE, seed: int = 0
) -> Stream:
    """Items drawn uniformly at random from the universe."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = np.random.default_rng(seed)
    items = rng.integers(0, universe, size=length, dtype=np.int64)
    return Stream(items=items, universe=universe)


def turnstile_stream(
    length: int,
    universe: int = 1024,
    deletion_probability: float = 0.3,
    seed: int = 0,
) -> Stream:
    """A random turnstile stream (Definition 3.1's generalization).

    Inserts uniform items; with the given probability an update instead
    deletes an element previously inserted (keeping frequencies
    non-negative, as the cash-register-compatible turnstile model of the
    paper assumes).
    """
    if not 0 <= deletion_probability < 1:
        raise ValueError("deletion_probability must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    live: list[int] = []
    items = np.empty(length, dtype=np.int64)
    counts = np.empty(length, dtype=np.int64)
    for pos in range(length):
        if live and rng.random() < deletion_probability:
            idx = int(rng.integers(len(live)))
            live[idx], live[-1] = live[-1], live[idx]
            items[pos] = live.pop()
            counts[pos] = -1
        else:
            item = int(rng.integers(0, universe))
            live.append(item)
            items[pos] = item
            counts[pos] = 1
    return Stream(items=items, counts=counts, universe=universe)
