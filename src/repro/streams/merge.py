"""Multiplexing several sources onto one stream time axis.

Real deployments ingest from several collectors at once; the sketches
need a single strictly increasing time axis per stream.  These utilities
merge time-stamped sources by time (stable across sources) and re-tick
them onto the discrete axis the paper's model uses, keeping a mapping
back to the original wall-clock times for display.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.streams.model import Stream


@dataclass(frozen=True)
class TickMapping:
    """Bidirectional mapping between wall-clock times and ticks.

    Ticks are 1-based positions in the merged stream; several events may
    share one wall-clock second but each gets its own tick (the paper's
    discrete model).  ``tick_for(wall_time)`` returns the last tick whose
    event happened at or before ``wall_time`` — the right boundary to
    use when translating a wall-clock window into a tick window.
    """

    wall_times: np.ndarray

    def tick_for(self, wall_time: float) -> int:
        """Last tick at or before ``wall_time`` (0 = before everything)."""
        return int(np.searchsorted(self.wall_times, wall_time, side="right"))

    def wall_for(self, tick: int) -> int:
        """Wall-clock time of a tick."""
        if not 1 <= tick <= len(self.wall_times):
            raise ValueError(
                f"tick {tick} out of range [1, {len(self.wall_times)}]"
            )
        return int(self.wall_times[tick - 1])

    def window(self, wall_s: float, wall_t: float) -> tuple[int, int]:
        """Translate a wall-clock window ``(wall_s, wall_t]`` to ticks."""
        return self.tick_for(wall_s), self.tick_for(wall_t)


def merge_sources(
    sources: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[Stream, TickMapping]:
    """Merge ``(wall_times, items)`` sources into one re-ticked stream.

    Each source's wall times must be non-decreasing; the merge is stable
    (ties broken by source order, then position).  Returns the merged
    stream on the tick axis plus the :class:`TickMapping`.
    """
    if not sources:
        return Stream(items=[]), TickMapping(np.array([], dtype=np.int64))
    walls = []
    items = []
    for idx, (source_times, source_items) in enumerate(sources):
        source_times = np.asarray(source_times, dtype=np.int64)
        source_items = np.asarray(source_items, dtype=np.int64)
        if len(source_times) != len(source_items):
            raise ValueError(f"source {idx}: times/items length mismatch")
        if len(source_times) > 1 and (np.diff(source_times) < 0).any():
            raise ValueError(f"source {idx}: wall times must be non-decreasing")
        walls.append(source_times)
        items.append(source_items)
    all_walls = np.concatenate(walls)
    all_items = np.concatenate(items)
    order = np.argsort(all_walls, kind="stable")
    merged_walls = all_walls[order]
    merged_items = all_items[order]
    stream = Stream(items=merged_items)  # ticks 1..n
    return stream, TickMapping(wall_times=merged_walls)


def split_window_by_wall_time(
    mapping: TickMapping, boundaries: list[int]
) -> list[tuple[int, int]]:
    """Tick windows for consecutive wall-clock boundary pairs.

    ``boundaries = [b0, b1, ..., bk]`` yields the tick windows of
    ``(b0, b1], (b1, b2], ...`` — e.g. hourly slices of a day.
    """
    if len(boundaries) < 2:
        raise ValueError("need at least two boundaries")
    if any(a > b for a, b in zip(boundaries, boundaries[1:])):
        raise ValueError("boundaries must be non-decreasing")
    return [
        mapping.window(a, b) for a, b in zip(boundaries, boundaries[1:])
    ]
