"""Exact answers to historical window queries, for evaluation and tests.

Ground truth stores, per element, the sorted array of its arrival times and
the running (cumulative) count, so any ``f_i(s, t]`` is two binary
searches.  This is linear space — exactly the cost the persistent sketches
exist to avoid — and is used only to *measure* their error.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from repro.streams.model import Stream


class GroundTruth:
    """Exact historical-window query answers for one stream."""

    def __init__(self, stream: Stream):
        self._all_times = np.asarray(stream.times, dtype=np.int64)
        self._all_counts = np.asarray(stream.counts, dtype=np.int64)
        self._cash_register = bool((self._all_counts == 1).all())
        self._per_item: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._build(stream)
        self.end_time = stream.end_time

    def _build(self, stream: Stream) -> None:
        items = np.asarray(stream.items, dtype=np.int64)
        if len(items) == 0:
            return
        order = np.argsort(items, kind="stable")
        s_items = items[order]
        s_times = self._all_times[order]
        s_counts = self._all_counts[order]
        boundaries = np.flatnonzero(np.diff(s_items)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(items)]))
        for lo, hi in zip(starts, ends):
            item = int(s_items[lo])
            times = s_times[lo:hi]
            cums = np.cumsum(s_counts[lo:hi])
            self._per_item[item] = (times, cums)

    # ------------------------------------------------------------------ #
    # Window queries (s, t]
    # ------------------------------------------------------------------ #

    def frequency(self, item: int, s: float = 0, t: float | None = None) -> int:
        """Exact ``f_item(s, t]``; ``t`` defaults to the end of the stream."""
        if t is None:
            t = self.end_time
        entry = self._per_item.get(item)
        if entry is None:
            return 0
        times, cums = entry
        hi = int(np.searchsorted(times, t, side="right"))
        lo = int(np.searchsorted(times, s, side="right"))
        high = int(cums[hi - 1]) if hi > 0 else 0
        low = int(cums[lo - 1]) if lo > 0 else 0
        return high - low

    def window_l1(self, s: float = 0, t: float | None = None) -> int:
        """Exact ``||f_{s,t}||_1``."""
        if t is None:
            t = self.end_time
        if self._cash_register:
            hi = int(np.searchsorted(self._all_times, t, side="right"))
            lo = int(np.searchsorted(self._all_times, s, side="right"))
            return hi - lo
        return sum(
            abs(self.frequency(item, s, t)) for item in self._per_item
        )

    def self_join_size(self, s: float = 0, t: float | None = None) -> int:
        """Exact ``||f_{s,t}||_2^2``."""
        return sum(
            self.frequency(item, s, t) ** 2 for item in self._per_item
        )

    def join_size(
        self, other: "GroundTruth", s: float = 0, t: float | None = None
    ) -> int:
        """Exact ``<f_{s,t}, g_{s,t}>`` with another stream's truth."""
        small, large = (
            (self, other)
            if len(self._per_item) <= len(other._per_item)
            else (other, self)
        )
        return sum(
            small.frequency(item, s, t) * large.frequency(item, s, t)
            for item in small._per_item
            if item in large._per_item
        )

    def heavy_hitters(
        self, phi: float, s: float = 0, t: float | None = None
    ) -> dict[int, int]:
        """Items with ``f_i(s, t) >= phi * ||f_{s,t}||_1``."""
        threshold = phi * self.window_l1(s, t)
        result: dict[int, int] = {}
        for item in self._per_item:
            freq = self.frequency(item, s, t)
            if freq >= threshold and freq > 0:
                result[item] = freq
        return result

    def top_k(
        self, k: int, s: float = 0, t: float | None = None
    ) -> list[tuple[int, int]]:
        """The ``k`` most frequent items in the window, descending."""
        freqs = (
            (self.frequency(item, s, t), item) for item in self._per_item
        )
        best = heapq.nlargest(k, freqs)
        return [(item, freq) for freq, item in best if freq > 0]

    def items(self) -> Iterable[int]:
        """All items that ever appeared in the stream."""
        return self._per_item.keys()

    def __len__(self) -> int:
        return len(self._per_item)
