"""Log-file ingestion: CSV streams and WorldCup-format binary logs.

The paper's Section 1.5 pipeline starts from the 1998 World Cup access
log: fixed-width binary records of 8 attributes, from which one
attribute column (``objectID`` or ``clientID``) is viewed as the element
stream.  This module rebuilds that pipeline end to end:

* a reader/writer for the trace's fixed-width binary record format
  (timestamp, clientID, objectID, size: u32; method, status, type,
  server: u8 — 20 bytes per request, little endian);
* a synthetic log generator with the paper's attribute profiles;
* ``attribute_stream`` to project any attribute into a
  :class:`~repro.streams.model.Stream`;
* plain CSV adapters for arbitrary logs.
"""

from __future__ import annotations

import csv
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.streams.model import Stream
from repro.streams.worldcup import client_id_stream, object_id_stream

#: struct layout of one request record (20 bytes, little endian).
_RECORD = struct.Struct("<IIIIBBBB")

#: Attributes that can be projected into element streams.
STREAMABLE_ATTRIBUTES = (
    "client_id",
    "object_id",
    "size",
    "method",
    "status",
    "doc_type",
    "server",
)


@dataclass(frozen=True, slots=True)
class WorldCupRecord:
    """One access-log request (the 8 attributes of Section 1.5)."""

    timestamp: int
    client_id: int
    object_id: int
    size: int
    method: int
    status: int
    doc_type: int
    server: int

    def pack(self) -> bytes:
        """Encode as a 20-byte fixed-width record."""
        return _RECORD.pack(
            self.timestamp,
            self.client_id,
            self.object_id,
            self.size,
            self.method,
            self.status,
            self.doc_type,
            self.server,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "WorldCupRecord":
        """Decode a 20-byte record."""
        fields = _RECORD.unpack(data)
        return cls(*fields)


def write_worldcup_log(
    records: Iterable[WorldCupRecord], path: str | Path
) -> int:
    """Write records in the trace's binary format; returns the count."""
    path = Path(path)
    count = 0
    with path.open("wb") as fh:
        for record in records:
            fh.write(record.pack())
            count += 1
    return count


def read_worldcup_log(path: str | Path) -> Iterator[WorldCupRecord]:
    """Stream records back from a binary log (lazily, one at a time)."""
    path = Path(path)
    with path.open("rb") as fh:
        while True:
            chunk = fh.read(_RECORD.size)
            if not chunk:
                return
            if len(chunk) != _RECORD.size:
                raise ValueError(
                    f"truncated record at end of {path} "
                    f"({len(chunk)} of {_RECORD.size} bytes)"
                )
            yield WorldCupRecord.unpack(chunk)


def synthesize_worldcup_log(
    length: int, seed: int = 0, start_timestamp: int = 894_000_000
) -> list[WorldCupRecord]:
    """Generate a synthetic access log with the paper's attribute profiles.

    ``object_id`` follows the skewed hot-set profile, ``client_id`` the
    near-uniform profile (see :mod:`repro.streams.worldcup`); the
    remaining attributes are filled with plausible values.  Timestamps
    are epoch seconds, several requests per second, non-decreasing.
    """
    rng = np.random.default_rng(seed)
    objects = object_id_stream(length, seed=seed + 1).items
    clients = client_id_stream(length, seed=seed + 2).items
    seconds = start_timestamp + np.sort(
        rng.integers(0, max(length // 8, 1), size=length)
    )
    sizes = rng.integers(200, 60_000, size=length)
    statuses = rng.choice([200, 304, 404], p=[0.8, 0.15, 0.05], size=length)
    return [
        WorldCupRecord(
            timestamp=int(seconds[i]),
            client_id=int(clients[i]),
            object_id=int(objects[i]),
            size=int(sizes[i]),
            method=0,  # GET
            status=int(statuses[i]) % 256,
            doc_type=int(objects[i]) % 16,
            server=int(clients[i]) % 32,
        )
        for i in range(length)
    ]


def attribute_stream(
    records: Iterable[WorldCupRecord], attribute: str
) -> Stream:
    """Project one attribute of a record sequence into a Stream.

    Per the paper's discrete time model, each record occupies its own
    tick (1, 2, ...), in log order; the original epoch timestamps remain
    available on the records for display purposes.
    """
    if attribute not in STREAMABLE_ATTRIBUTES:
        raise ValueError(
            f"unknown attribute {attribute!r}; choose from "
            f"{STREAMABLE_ATTRIBUTES}"
        )
    items = [getattr(record, attribute) for record in records]
    return Stream(items=items)


# --------------------------------------------------------------------- #
# CSV adapters
# --------------------------------------------------------------------- #


def read_csv_stream(
    path: str | Path,
    item_column: str,
    time_column: str | None = None,
    delimiter: str = ",",
) -> Stream:
    """Load a CSV log (with a header row) into a Stream.

    ``item_column`` values must be integers.  When ``time_column`` is
    given its values must be strictly increasing integers; otherwise
    rows get consecutive ticks.
    """
    items: list[int] = []
    times: list[int] = []
    with Path(path).open(newline="") as fh:
        reader = csv.DictReader(fh, delimiter=delimiter)
        if reader.fieldnames is None or item_column not in reader.fieldnames:
            raise ValueError(f"column {item_column!r} not found in {path}")
        if time_column is not None and time_column not in reader.fieldnames:
            raise ValueError(f"column {time_column!r} not found in {path}")
        for row in reader:
            items.append(int(row[item_column]))
            if time_column is not None:
                times.append(int(row[time_column]))
    return Stream(items=items, times=times if time_column else None)


def write_csv_stream(
    stream: Stream, path: str | Path, delimiter: str = ","
) -> int:
    """Write a Stream as a (time, item, count) CSV; returns row count."""
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(["time", "item", "count"])
        for update in stream:
            writer.writerow([update.time, update.item, update.count])
    return len(stream)
