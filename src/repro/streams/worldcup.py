"""Synthetic substitutes for the 1998 World Cup access-log attributes.

The paper's real-data experiments replay 7,000,000 requests from Day 46 of
the 1998 World Cup web log and sketch two attribute streams (Section 6.1):

* **ObjectID** (requested URL): "more skewed, with most frequencies
  concentrating on around 500 items" — a few hundred hot URLs carry most
  of the mass, with a long tail of rarely requested objects.
* **ClientID** (request IP): "a very uniform data set, with maximum
  frequency being 14645" (~0.2% of the stream) — most clients issue a
  similar, small number of requests, with a handful of proxy-like heavy
  clients.

Two properties of the real trace matter for reproducing the experiments:

1. the *marginal frequency profile* described above, and
2. *non-stationarity*: request rates drift over the day (matches start
   and end, pages trend), so individual sketch counters change slope over
   time.  Slope changes are what force the PLA persistence technique to
   emit segments even at large ``Delta``; a perfectly stationary stream
   would let almost every counter ride a single line (the Theorem 3.3
   regime that the paper's synthetic ``Zipf_3`` exhibits).

The generators therefore divide the stream into blocks ("hours") and
re-draw the popularity weights per block with a controlled log-normal
drift.  Set ``drift=0`` for stationary variants.  The original trace is
not redistributable offline; DESIGN.md section 3 argues why these
substitutes preserve the behaviours the experiments probe.
"""

from __future__ import annotations

import numpy as np

from repro.streams.model import Stream

#: Universe of anonymized 32-bit identifiers, as in the trace.
TRACE_UNIVERSE = 2**24


def _block_bounds(length: int, blocks: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into ``blocks`` near-equal slices."""
    edges = np.linspace(0, length, blocks + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]


def object_id_stream(
    length: int,
    hot_items: int = 500,
    tail_items: int = 50_000,
    hot_mass: float = 0.8,
    seed: int = 1,
    blocks: int = 24,
    drift: float = 0.8,
) -> Stream:
    """A skewed, non-stationary URL-like stream.

    ~``hot_items`` popular keys receive ``hot_mass`` of the requests (with
    a mild internal Zipf skew so there is a clear top-5, as in Table 1 of
    the paper); the rest spread uniformly over a long tail.  Per block
    ("hour of the day") the hot-item weights are perturbed by a log-normal
    factor of scale ``drift``, emulating the trace's trending pages.
    """
    if not 0 < hot_mass < 1:
        raise ValueError("hot_mass must lie in (0, 1)")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, hot_items + 1, dtype=np.float64)
    base_pmf = ranks**-1.0
    base_pmf /= base_pmf.sum()
    hot_keys = rng.permutation(TRACE_UNIVERSE // 2)[:hot_items].astype(np.int64)
    tail_offset = TRACE_UNIVERSE // 2

    items = np.empty(length, dtype=np.int64)
    for lo, hi in _block_bounds(length, blocks):
        size = hi - lo
        pmf = base_pmf * np.exp(drift * rng.normal(size=hot_items))
        pmf /= pmf.sum()
        cdf = np.cumsum(pmf)
        # The overall hot share also breathes over the day.
        block_hot_mass = float(
            np.clip(hot_mass * np.exp(0.25 * drift * rng.normal()), 0.1, 0.97)
        )
        is_hot = rng.random(size) < block_hot_mass
        n_hot = int(is_hot.sum())
        block = np.empty(size, dtype=np.int64)
        block[is_hot] = hot_keys[
            np.searchsorted(cdf, rng.random(n_hot), side="right")
        ]
        block[~is_hot] = tail_offset + rng.integers(
            0, tail_items, size=size - n_hot, dtype=np.int64
        )
        items[lo:hi] = block
    return Stream(items=items, universe=TRACE_UNIVERSE)


def client_id_stream(
    length: int,
    clients: int | None = None,
    proxy_clients: int = 10,
    proxy_mass: float = 0.02,
    seed: int = 2,
    blocks: int = 24,
    drift: float = 0.8,
) -> Stream:
    """A near-uniform, mildly non-stationary client-IP-like stream.

    Most requests come uniformly from a large population of clients
    (``clients`` defaults to ``length / 7``, matching the trace's mean of
    ~7 requests per client); a small ``proxy_mass`` share comes from
    ``proxy_clients`` proxy-like heavy clients whose activity drifts per
    block, reproducing the trace's modest maximum frequency (~0.2% of the
    stream).
    """
    if not 0 <= proxy_mass < 1:
        raise ValueError("proxy_mass must lie in [0, 1)")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = np.random.default_rng(seed)
    population = clients or max(length // 7, 1)
    proxy_offset = TRACE_UNIVERSE - proxy_clients

    items = np.empty(length, dtype=np.int64)
    for lo, hi in _block_bounds(length, blocks):
        size = hi - lo
        block_proxy_mass = float(
            np.clip(proxy_mass * np.exp(drift * rng.normal()), 0.0, 0.3)
        )
        is_proxy = rng.random(size) < block_proxy_mass
        n_proxy = int(is_proxy.sum())
        block = np.empty(size, dtype=np.int64)
        block[~is_proxy] = rng.integers(
            0, population, size=size - n_proxy, dtype=np.int64
        )
        block[is_proxy] = proxy_offset + rng.integers(
            0, max(proxy_clients, 1), size=n_proxy, dtype=np.int64
        )
        items[lo:hi] = block
    return Stream(items=items, universe=TRACE_UNIVERSE)
