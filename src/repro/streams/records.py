"""Raw ingest records: the ragged outside world, before the clean model.

:class:`~repro.streams.model.Stream` is the paper's idealized input —
materialized, strictly increasing timestamps, integer items.  Real
collectors deliver something messier: one JSON-ish record at a time,
possibly missing fields, mistyped, duplicated or out of order.  This
module defines the boundary type :class:`IngestRecord` plus parsing that
*classifies* failures (:class:`RecordError`), so the ingestion runtime's
policies (:mod:`repro.runtime.policies`) can decide whether a malformed
record raises, is skipped, or is quarantined to a dead-letter file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.streams.model import Stream


class RecordError(ValueError):
    """A raw record could not be parsed into an :class:`IngestRecord`."""


@dataclass(frozen=True, slots=True)
class IngestRecord:
    """One validated update destined for a named stream.

    ``time`` may be ``None`` (auto-tick: the runtime assigns the next
    tick of the target stream); once written to the write-ahead log the
    time is always resolved, so replay is deterministic.
    """

    stream: str
    item: int
    count: int = 1
    time: int | None = None

    def to_wire(self) -> dict[str, Any]:
        """Plain-dict form used by the WAL and dead-letter files."""
        return {
            "stream": self.stream,
            "item": self.item,
            "count": self.count,
            "time": self.time,
        }


def _require_int(raw: dict[str, Any], key: str, default: int | None = None) -> int:
    value = raw.get(key, default)
    if value is None and default is None:
        raise RecordError(f"record missing required field {key!r}")
    # bool is an int subclass; a True item id is a malformed record.
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecordError(
            f"record field {key!r} must be an integer, got {value!r}"
        )
    return value


def parse_record(raw: object) -> IngestRecord:
    """Validate one raw record (a mapping) into an :class:`IngestRecord`.

    Raises :class:`RecordError` on any shape problem: not a mapping,
    missing/mistyped fields, empty stream name, negative item, zero
    count.  Timestamp *ordering* is not checked here — lateness is a
    per-stream property the runtime judges against its clocks.
    """
    if not isinstance(raw, dict):
        raise RecordError(f"record must be a mapping, got {type(raw).__name__}")
    stream = raw.get("stream")
    if not isinstance(stream, str) or not stream or "/" in stream:
        raise RecordError(f"record field 'stream' invalid: {stream!r}")
    item = _require_int(raw, "item")
    if item < 0:
        raise RecordError(f"record field 'item' must be >= 0, got {item}")
    count = _require_int(raw, "count", default=1)
    if count == 0:
        raise RecordError("record field 'count' must be non-zero")
    time: int | None
    if raw.get("time") is None:
        time = None
    else:
        time = _require_int(raw, "time")
        if time < 1:
            raise RecordError(f"record field 'time' must be >= 1, got {time}")
    unknown = set(raw) - {"stream", "item", "count", "time"}
    if unknown:
        raise RecordError(f"record has unknown fields: {sorted(unknown)}")
    return IngestRecord(stream=stream, item=item, count=count, time=time)


def records_from_stream(name: str, stream: Stream) -> Iterator[IngestRecord]:
    """Adapt a materialized :class:`Stream` into per-record form."""
    for update in stream:
        yield IngestRecord(
            stream=name, item=update.item, count=update.count, time=update.time
        )


def read_jsonl_records(path: str | Path) -> Iterator[tuple[int, object]]:
    """Yield ``(line_number, raw)`` pairs from a JSON-lines record file.

    Unparsable lines yield a :class:`RecordError` *instance* as ``raw``
    (instead of raising), so the caller's malformed-record policy applies
    uniformly to bad JSON and bad shapes.
    """
    with open(path, encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError as exc:
                yield lineno, RecordError(f"line {lineno}: invalid JSON: {exc}")


def read_jsonl_batches(
    path: str | Path, size: int
) -> Iterator[list[object]]:
    """Yield lists of up to ``size`` raw records from a JSON-lines file.

    Chunked form of :func:`read_jsonl_records` for the batch ingestion
    path.  Chunking is purely a framing decision: unparsable lines stay
    *in position* inside their chunk as :class:`RecordError` instances,
    so the runtime's per-record malformed policy (raise / skip /
    quarantine) applies identically however the file is split.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    batch: list[object] = []
    for _lineno, raw in read_jsonl_records(path):
        batch.append(raw)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
