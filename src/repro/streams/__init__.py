"""Stream model, synthetic workload generators, and exact ground truth.

The paper's experiments use one synthetic and two real-trace workloads
(Section 6.1).  The real 1998 World Cup access log is not redistributable
offline, so :mod:`repro.streams.worldcup` generates synthetic traces that
match the paper's description of each attribute stream; see DESIGN.md
section 3 for the substitution argument.
"""

from __future__ import annotations

from repro.streams.generators import (
    uniform_stream,
    zipf_stream,
)
from repro.streams.model import Stream, Update
from repro.streams.truth import GroundTruth
from repro.streams.worldcup import client_id_stream, object_id_stream

__all__ = [
    "Update",
    "Stream",
    "zipf_stream",
    "uniform_stream",
    "client_id_stream",
    "object_id_stream",
    "GroundTruth",
]
