"""Lambda-style serving state: frozen past + live tail over one runtime.

:class:`ServingRuntime` wraps an :class:`~repro.runtime.IngestRuntime`
and serves every read either from an immutable :class:`ServingView`
(a :class:`~repro.engine.frozen.FrozenStoreView` built off a durable
checkpoint) or from the live store under the write lock — never from a
merge of partial answers.  Median-of-rows estimators do not decompose
across a window split, so per-query routing is the only composition
that stays bit-equal to the pure-live answer: a query whose window ends
at or before the frozen clock is answered wholly frozen (bit-equal by
the frozen-engine contract), anything newer is answered wholly live.

Cutover never touches the live store.  Freezing live sketch state would
finalize open PLA runs and perturb future segmentation, breaking the
bit-identical-recovery invariant; instead each view is built by
re-opening the newest on-disk checkpoint — whose ``save`` already
finalized at a cadence boundary, exactly as recovery replays it — and
swapping the view reference atomically.  Readers on the old view keep
it alive; nothing blocks on writers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

from repro.engine.frozen import FrozenStoreView, freeze_store
from repro.io import SerializationError
from repro.runtime import IngestRuntime
from repro.server.protocol import BadRequestError
from repro.store import SketchStore

_MODES = ("auto", "frozen", "live")


class ServingView:
    """One immutable generation of the frozen past.

    When the serving runtime publishes views (query workers enabled),
    ``segment`` holds the owned shared-memory segment carrying this
    view's tables and ``generation`` its monotonic publication number;
    reader processes attach by ``(generation, segment.name)``.  Both
    stay ``None``/``0`` in single-process serving.
    """

    __slots__ = ("seq", "frozen", "built_at", "segment", "generation")

    def __init__(
        self,
        seq: int,
        frozen: FrozenStoreView,
        built_at: float,
        segment: Any = None,
        generation: int = 0,
    ) -> None:
        self.seq = seq
        self.frozen = frozen
        self.built_at = built_at
        self.segment = segment
        self.generation = generation

    def clock(self, stream: str) -> int | None:
        """Frozen stream clock, or None if the view predates the stream."""
        try:
            return self.frozen.clock(stream)
        except KeyError:
            return None


class ServingRuntime:
    """Frozen/live router over one ingest runtime.

    Writes and live reads serialize on one lock; frozen reads touch
    only the immutable view and take no lock at all.  ``maybe_cutover``
    is safe to call from a background ticker thread concurrently with
    both.

    ``freeze_every`` / ``freeze_interval_s`` set the re-freeze cadence
    in records applied past the current view and in wall-clock seconds;
    with neither set, every new checkpoint triggers a cutover.  Views
    only ever advance to checkpoint boundaries, so the frozen horizon
    trails the live tail by up to one checkpoint interval plus the
    configured cadence.

    With the update-buffer tier enabled (``--buffer-window``), both
    serving routes still agree: checkpoint saves flush every sketch's
    buffer before encoding (so the snapshots a cutover freezes already
    contain every buffered update up to their sequence), and live reads
    flush through ``_ensure_synced`` on query — frozen and live answers
    for the same horizon stay bit-equal in exact mode, and coalesce-mode
    divergence is bounded by the documented window mass
    (:mod:`repro.core.buffer`).

    ``query_workers=N`` (with fork + POSIX shared memory available)
    turns on zero-copy multi-process serving: each cutover publishes
    the new view's tables into a shared-memory segment
    (:func:`repro.engine.frozen.share_view`), and frozen-routed reads
    run on a hot pool of N attached reader processes
    (:class:`~repro.server.workers.QueryWorkerPool`) that share that
    one physical copy.  Old segments are released on swap — attached
    readers stay valid until they detach — and any worker failure
    degrades that query to the master's local view, bit-identically.
    """

    def __init__(
        self,
        runtime: IngestRuntime,
        *,
        freeze_every: int | None = None,
        freeze_interval_s: float | None = None,
        freeze_workers: int | None = None,
        query_workers: int = 0,
        clock: Any = time.monotonic,
    ) -> None:
        if freeze_every is not None and freeze_every < 1:
            raise ValueError(f"freeze_every must be >= 1, got {freeze_every}")
        if freeze_interval_s is not None and freeze_interval_s <= 0:
            raise ValueError(
                f"freeze_interval_s must be > 0, got {freeze_interval_s}"
            )
        if query_workers < 0:
            raise ValueError(
                f"query_workers must be >= 0, got {query_workers}"
            )
        self.runtime = runtime
        self.freeze_every = freeze_every
        self.freeze_interval_s = freeze_interval_s
        self.freeze_workers = freeze_workers
        self.query_workers = query_workers
        self.cutovers = 0
        self._clock = clock
        self._lock = threading.Lock()  # writers + live reads
        self._cutover_lock = threading.Lock()  # one cutover at a time
        self._view: ServingView | None = None
        self._generation = 0
        self._query_pool: Any = None

    # ------------------------------------------------------------------ #
    # Cutover
    # ------------------------------------------------------------------ #

    def view(self) -> ServingView | None:
        """The current frozen view (atomic reference read)."""
        return self._view

    def _newest_checkpoint(self) -> tuple[int, Any] | None:
        checkpoints = IngestRuntime._checkpoints(self.runtime.directory)
        return checkpoints[-1] if checkpoints else None

    def maybe_cutover(self, force: bool = False) -> dict[str, Any]:
        """Swap in a fresh frozen view when the cadence says so.

        Returns a status dict ``{"swapped": bool, "view_seq": int|None,
        "reason": str}``.  A checkpoint that vanishes (pruned) or fails
        to load mid-read is skipped; the next tick sees a newer one.
        """
        with self._cutover_lock:
            current = self._view
            newest = self._newest_checkpoint()
            if newest is None:
                return self._status(False, "no checkpoint on disk yet")
            seq, path = newest
            if current is not None and seq <= current.seq:
                return self._status(False, "view already at newest checkpoint")
            if current is not None and not force:
                due_records = (
                    self.freeze_every is not None
                    and seq - current.seq >= self.freeze_every
                )
                due_clock = (
                    self.freeze_interval_s is not None
                    and self._clock() - current.built_at >= self.freeze_interval_s
                )
                if self.freeze_every is None and self.freeze_interval_s is None:
                    due_records = True  # default cadence: every new checkpoint
                if not (due_records or due_clock):
                    return self._status(False, "cutover cadence not due")
            try:
                store = SketchStore.open(path)
            except (SerializationError, OSError) as exc:  # sketchlint: disable=SL016 — checkpoint pruned or damaged mid-load: this tick skips, the next one retries, and the reason is surfaced in the returned status
                return self._status(False, f"checkpoint unreadable: {exc}")
            frozen = freeze_store(store, workers=self.freeze_workers)
            segment, generation = self._publish(frozen)
            old = self._view
            self._view = ServingView(
                seq, frozen, self._clock(), segment=segment,
                generation=generation,
            )
            self.cutovers += 1
            if old is not None and old.segment is not None:
                # Readers attached to the old generation keep a valid
                # mapping until they detach (POSIX); nothing remains in
                # /dev/shm for it after this release.
                old.segment.release()
            return self._status(True, f"view advanced to checkpoint seq {seq}")

    def _publish(self, frozen: FrozenStoreView) -> tuple[Any, int]:
        """Publish a fresh view's tables into a shared segment.

        Returns ``(segment, generation)`` — ``(None, 0)`` when query
        workers are disabled or the platform cannot share memory.  A
        publish failure downgrades this view to local-only serving
        rather than failing the cutover.
        """
        if self.query_workers < 1:
            return None, 0
        from repro import shm
        from repro.engine.frozen import share_view
        from repro.parallel import fork_available

        if not (shm.shm_available() and fork_available()):
            return None, 0
        try:
            segment = share_view(frozen)
        except Exception:  # sketchlint: disable=SL004,SL016 — publish failure degrades this view to local-only serving; every query still gets answered
            return None, 0
        self._generation += 1
        self._ensure_query_pool()
        return segment, self._generation

    def _ensure_query_pool(self) -> None:
        """Spawn the reader pool on first publication (hot thereafter)."""
        if self._query_pool is None:
            from repro.server.workers import QueryWorkerPool

            self._query_pool = QueryWorkerPool(self.query_workers)

    def query_pool(self) -> Any:
        """The attached :class:`~repro.server.workers.QueryWorkerPool`
        (``None`` until a view has been published)."""
        return self._query_pool

    def _frozen_query(self, view: ServingView, verb: str, args: tuple) -> Any:
        """Answer one frozen-routed query, offloading when possible.

        With a published segment and a live pool the query runs on an
        attached reader process — one shared copy of the tables, one
        core per worker.  Any worker failure (death, hang, staleness)
        falls back to the master's own view object, so offloading can
        degrade but never change or drop an answer.
        """
        pool = self._query_pool
        if pool is not None and view.segment is not None:
            from repro.server.workers import QueryWorkerError

            try:
                return pool.query(
                    view.generation, view.segment.name, verb, args
                )
            except QueryWorkerError:  # sketchlint: disable=SL016 — supervised degradation: the worker was respawned and the identical answer is computed locally below
                pass
        return getattr(view.frozen, verb)(*args)

    def _status(self, swapped: bool, reason: str) -> dict[str, Any]:
        view = self._view
        return {
            "swapped": swapped,
            "view_seq": None if view is None else view.seq,
            "reason": reason,
        }

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def _route(
        self, stream: str, t: float | None, mode: str
    ) -> tuple[ServingView | None, float | None]:
        """Pick the side that serves this query: ``(view, t)`` or
        ``(None, t)`` for the live store.

        ``t is None`` resolves against the live stream clock *before*
        routing, so "now" means the same instant on either side.  The
        frozen side serves iff its clock covers the resolved ``t`` —
        the record at exactly the freeze tick is inside the snapshot,
        so a boundary query counts it on the frozen side and never
        twice.
        """
        if mode not in _MODES:
            raise BadRequestError(
                f"mode must be one of {'/'.join(_MODES)}, got {mode!r}"
            )
        self.runtime.monitor.check_readable()
        view = None if mode == "live" else self._view
        if view is None:
            if mode == "frozen":
                raise ValueError("no frozen view is available yet")
            return None, t
        resolved = t
        if resolved is None:
            live_clock = self.runtime._clocks.get(stream)
            if live_clock is None:
                return None, None  # unknown stream: live path raises KeyError
            resolved = float(live_clock)
        frozen_clock = view.clock(stream)
        if frozen_clock is not None and float(resolved) <= frozen_clock:
            return view, float(resolved)
        if mode == "frozen":
            raise ValueError(
                f"frozen view (clock {frozen_clock}) cannot serve t={resolved}; "
                f"the window end lies in the live tail"
            )
        return None, float(resolved)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def point(
        self,
        stream: str,
        item: int,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window frequency estimate, frozen- or live-routed."""
        view, rt = self._route(stream, t, mode)
        if view is not None:
            return float(self._frozen_query(view, "point", (stream, item, s, rt)))
        with self._lock:
            return float(self.runtime.store.point(stream, item, s, rt))

    def point_many(
        self,
        stream: str,
        items: Iterable[int],
        windows: Any = None,
        mode: str = "auto",
    ) -> list[float]:
        """Batched window frequency estimates for one stream.

        ``windows`` is None (full history per probe), one ``(s, t)``
        pair for all probes, or one pair per probe; ``t`` may be None.
        The batch is split by routing mask — frozen-eligible probes go
        through the vectorized frozen engine, the rest through the live
        store — and reassembled in input order.
        """
        probes = [int(item) for item in items]
        n = len(probes)
        pairs = self._normalize_windows(windows, n)
        if mode not in _MODES:
            raise BadRequestError(
                f"mode must be one of {'/'.join(_MODES)}, got {mode!r}"
            )
        self.runtime.monitor.check_readable()
        if n == 0:
            return []
        live_clock = self.runtime._clocks.get(stream)
        if live_clock is None:
            raise KeyError(f"unknown stream {stream!r}")
        resolved = [
            (float(s), float(live_clock) if t is None else float(t))
            for s, t in pairs
        ]
        view = None if mode == "live" else self._view
        frozen_clock = view.clock(stream) if view is not None else None
        if frozen_clock is None:
            frozen_idx: list[int] = []
        else:
            frozen_idx = [
                i for i in range(n) if resolved[i][1] <= frozen_clock
            ]
        live_idx = [i for i in range(n) if i not in set(frozen_idx)]
        if mode == "frozen" and live_idx:
            raise ValueError(
                f"frozen view (clock {frozen_clock}) cannot serve "
                f"{len(live_idx)} of {n} probes; their window ends lie in "
                f"the live tail"
            )
        out = [0.0] * n
        if frozen_idx and view is not None:
            answers = self._frozen_query(
                view,
                "point_many",
                (
                    stream,
                    [probes[i] for i in frozen_idx],
                    [resolved[i] for i in frozen_idx],
                ),
            )
            for slot, i in enumerate(frozen_idx):
                out[i] = float(answers[slot])
        if live_idx:
            with self._lock:
                for i in live_idx:
                    s, rt = resolved[i]
                    out[i] = float(self.runtime.store.point(stream, probes[i], s, rt))
        return out

    @staticmethod
    def _normalize_windows(windows: Any, n: int) -> list[tuple[float, float | None]]:
        if windows is None:
            return [(0.0, None)] * n
        if (
            isinstance(windows, (tuple, list))
            and len(windows) == 2
            and not isinstance(windows[0], (tuple, list))
        ):
            s, t = windows
            return [(float(s), None if t is None else float(t))] * n
        pairs = list(windows)
        if len(pairs) != n:
            raise ValueError(
                f"expected {n} (s, t) windows, got {len(pairs)}; pass one "
                f"window per item or a single (s, t) pair"
            )
        out = []
        for pair in pairs:
            if not isinstance(pair, (tuple, list)) or len(pair) != 2:
                raise ValueError(f"window must be an (s, t) pair, got {pair!r}")
            s, t = pair
            out.append((float(s), None if t is None else float(t)))
        return out

    def heavy_hitters(
        self,
        stream: str,
        phi: float,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> dict[int, float]:
        """Window heavy hitters, frozen- or live-routed."""
        view, rt = self._route(stream, t, mode)
        if view is not None:
            hits = self._frozen_query(view, "heavy_hitters", (stream, phi, s, rt))
        else:
            with self._lock:
                hits = self.runtime.store.heavy_hitters(stream, phi, s, rt)
        return {int(item): float(est) for item, est in hits.items()}

    def self_join_size(
        self,
        stream: str,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window second frequency moment, frozen- or live-routed."""
        view, rt = self._route(stream, t, mode)
        if view is not None:
            return float(self._frozen_query(view, "self_join_size", (stream, s, rt)))
        with self._lock:
            return float(self.runtime.store.self_join_size(stream, s, rt))

    def window_mass(
        self,
        stream: str,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window L1 mass estimate, frozen- or live-routed."""
        view, rt = self._route(stream, t, mode)
        if view is not None:
            return float(self._frozen_query(view, "window_mass", (stream, s, rt)))
        with self._lock:
            return float(self.runtime.store.window_mass(stream, s, rt))

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def ingest(self, raw: object) -> bool:
        """Apply one raw record through the runtime (WAL-before-apply)."""
        with self._lock:
            return self.runtime.ingest(raw)

    def ingest_batch(self, raws: Iterable[object]) -> int:
        """Apply a batch of raw records; returns the applied count."""
        with self._lock:
            return self.runtime.ingest_batch(raws)

    # ------------------------------------------------------------------ #
    # Admin
    # ------------------------------------------------------------------ #

    def serving_snapshot(self) -> dict[str, Any]:
        """The serving-side status block merged into health/describe."""
        view = self._view
        applied = self.runtime.applied_seq
        pool = self._query_pool
        return {
            "view_seq": None if view is None else view.seq,
            "view_age_s": None if view is None else self._clock() - view.built_at,
            "tail_records": applied - (0 if view is None else view.seq),
            "cutovers": self.cutovers,
            "freeze_every": self.freeze_every,
            "freeze_interval_s": self.freeze_interval_s,
            "shared_segment": (
                None
                if view is None or view.segment is None
                else view.segment.name
            ),
            "view_generation": 0 if view is None else view.generation,
            "query_pool": None if pool is None else pool.health(),
        }

    def health(self) -> dict[str, Any]:
        """Runtime health plus the serving status block."""
        with self._lock:
            payload = self.runtime.health()
        payload["serving"] = self.serving_snapshot()
        return payload

    def describe(self) -> dict[str, Any]:
        """Runtime description plus the serving status block."""
        with self._lock:
            payload = self.runtime.describe()
        payload["serving"] = self.serving_snapshot()
        return payload

    def fsck(self) -> dict[str, Any]:
        """Scan-only durability audit of the runtime directory."""
        with self._lock:
            return self.runtime.fsck().as_dict()

    def close(self) -> None:
        """Seal the WAL, stop the query pool, release the shared view."""
        pool = self._query_pool
        self._query_pool = None
        if pool is not None:
            pool.close()
        view = self._view
        if view is not None and view.segment is not None:
            view.segment.release()
        with self._lock:
            self.runtime.close()
