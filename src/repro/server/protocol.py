"""Wire protocol of the sketch-serving daemon.

One request or response per line, UTF-8 JSON, newline-terminated — the
classic JSON-lines framing.  Requests carry a caller-chosen ``id`` that
is echoed verbatim in the response, so a client may pipeline several
requests over one connection and match replies by id::

    -> {"id": 7, "verb": "point", "stream": "urls", "item": 3, "t": 40}
    <- {"id": 7, "ok": true, "result": 12.0}
    <- {"id": 8, "ok": false, "error": {"type": "unknown-stream", ...}}

Failures are typed so the client can re-raise the same exception class
the embedded API would have raised:

=================  ====================================================
``type``           client-side exception
=================  ====================================================
degraded           :class:`repro.runtime.health.DegradedError`
malformed-record   :class:`repro.runtime.policies.MalformedRecordError`
late-record        :class:`repro.runtime.policies.LateRecordError`
unknown-stream     :class:`KeyError`
bad-request        :class:`BadRequestError`
value-error        :class:`ValueError`
internal           :class:`ServerError`
=================  ====================================================
"""

from __future__ import annotations

import json
from typing import Any, NoReturn

from repro.runtime.health import DegradedError, HealthState
from repro.runtime.policies import LateRecordError, MalformedRecordError

# Refuse absurd frames before handing them to json.loads.  Generous
# enough for a ~100k-record ingest_batch, small enough to bound memory
# per connection.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a valid protocol frame."""


class BadRequestError(ValueError):
    """The request was well-formed JSON but not a valid request."""


class ServerError(RuntimeError):
    """The server failed internally while handling a request."""


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one frame, newline-terminated."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> dict[str, Any]:
    """Parse one frame; raise :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Map an exception to the wire-error object (server side).

    Subclass checks run most-specific first: the record errors and
    :class:`BadRequestError` are all ``ValueError`` subclasses.
    """
    if isinstance(exc, DegradedError):
        return {
            "type": "degraded",
            "state": exc.state.value,
            "cause": exc.cause,
            "message": exc.detail,
        }
    if isinstance(exc, MalformedRecordError):
        return {"type": "malformed-record", "message": str(exc)}
    if isinstance(exc, LateRecordError):
        return {"type": "late-record", "message": str(exc)}
    if isinstance(exc, BadRequestError):
        return {"type": "bad-request", "message": str(exc)}
    if isinstance(exc, KeyError):
        # KeyError's str() wraps the key in repr quotes; unwrap args.
        message = str(exc.args[0]) if exc.args else str(exc)
        return {"type": "unknown-stream", "message": message}
    if isinstance(exc, (ValueError, TypeError)):
        return {"type": "value-error", "message": str(exc)}
    return {"type": "internal", "message": f"{type(exc).__name__}: {exc}"}


def raise_for_error(error: dict[str, Any]) -> NoReturn:
    """Re-raise the typed exception for a wire-error object (client side)."""
    kind = error.get("type", "internal")
    message = str(error.get("message") or "")
    if kind == "degraded":
        try:
            state = HealthState(error.get("state"))
        except ValueError:
            state = HealthState.DEGRADED_READONLY
        raise DegradedError(state, str(error.get("cause") or "unknown"), message)
    if kind == "malformed-record":
        raise MalformedRecordError(message)
    if kind == "late-record":
        raise LateRecordError(message)
    if kind == "unknown-stream":
        raise KeyError(message)
    if kind == "bad-request":
        raise BadRequestError(message)
    if kind == "value-error":
        raise ValueError(message)
    raise ServerError(message)
