"""Sketch-serving daemon: a long-lived network service over a runtime.

The package splits along the classic client/server seam:

:mod:`repro.server.protocol`
    The JSON-lines wire format and the typed-error mapping shared by
    both ends.
:mod:`repro.server.serving`
    :class:`ServingRuntime` — the lambda-style serving state machine
    (frozen past + live tail) over one
    :class:`~repro.runtime.IngestRuntime`, independent of any socket.
:mod:`repro.server.daemon`
    :class:`SketchServer` — the threaded TCP daemon speaking the
    protocol, with the background cutover ticker.
:mod:`repro.server.client`
    :class:`Client` — blocking client with connection reuse, timeouts
    and typed errors (including
    :class:`~repro.runtime.health.DegradedError` passthrough).

``repro serve`` (see :mod:`repro.cli`) is the operator entry point; see
``docs/serving.md`` for the protocol, the cutover model and the failure
modes.
"""

from __future__ import annotations

from repro.server.client import Client
from repro.server.daemon import SketchServer
from repro.server.protocol import (
    BadRequestError,
    ProtocolError,
    ServerError,
)
from repro.server.serving import ServingRuntime, ServingView
from repro.server.workers import QueryWorkerError, QueryWorkerPool

__all__ = [
    "BadRequestError",
    "Client",
    "ProtocolError",
    "QueryWorkerError",
    "QueryWorkerPool",
    "ServerError",
    "ServingRuntime",
    "ServingView",
    "SketchServer",
]
