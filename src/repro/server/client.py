"""Blocking client for the sketch-serving daemon.

One :class:`Client` owns one TCP connection, lazily opened on first
use and reused across calls.  A connection that dies is torn down and
re-opened transparently on the *next* call — never retried for the
failed call itself, because an ingest whose reply was lost may already
have been applied and WAL-logged server-side; blind retry would
double-count.  Callers that need at-least-once delivery should compare
``describe()["applied_seq"]`` against their own send count and re-send
the tail, exactly as the crash/restart tests do.

Server-side failures re-raise as the same exception classes the
embedded API uses — :class:`~repro.runtime.health.DegradedError`,
:class:`~repro.runtime.policies.MalformedRecordError`,
:class:`~repro.runtime.policies.LateRecordError`, :class:`KeyError`,
:class:`ValueError` — plus :class:`~repro.server.protocol.ServerError`
for anything unclassified (see :func:`repro.server.protocol.raise_for_error`).
"""

from __future__ import annotations

import socket
from typing import Any, BinaryIO, Iterable, Sequence

from repro.server import protocol

_OMIT = object()


class Client:
    """JSON-lines protocol client with connection reuse and timeouts."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile: BinaryIO | None = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #

    def connect(self) -> "Client":
        """Open the connection now (otherwise the first call does it)."""
        if self._sock is not None:
            return self
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        """Drop the connection; the client stays usable (reconnects)."""
        rfile, sock = self._rfile, self._sock
        self._rfile = None
        self._sock = None
        for closable in (rfile, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # sketchlint: disable=SL016 — teardown only
                    pass

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #

    def _call(self, verb: str, **params: Any) -> Any:
        payload: dict[str, Any] = {"id": self._next_id, "verb": verb}
        for key, value in params.items():
            if value is not _OMIT:
                payload[key] = value
        self._next_id += 1
        self.connect()
        sock, rfile = self._sock, self._rfile
        if sock is None or rfile is None:
            raise ConnectionError("connection lost before the request was sent")
        try:
            sock.sendall(protocol.encode(payload))
            line = rfile.readline(protocol.MAX_LINE_BYTES + 1)
        except TimeoutError:
            self.close()
            raise TimeoutError(
                f"server at {self.host}:{self.port} did not answer "
                f"{verb!r} within {self.timeout}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ConnectionError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            self.close()
            raise ConnectionError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        reply = protocol.decode(line)
        if reply.get("id") != payload["id"]:
            self.close()
            raise protocol.ProtocolError(
                f"response id {reply.get('id')!r} does not match request "
                f"id {payload['id']!r}"
            )
        if reply.get("ok"):
            return reply.get("result")
        protocol.raise_for_error(reply.get("error") or {})

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def ingest(  # sketchlint: disable=SL014 — monotonicity is enforced server-side by IngestRuntime's per-stream clock guard
        self,
        stream: str,
        item: int,
        count: int = 1,
        time: int | None = None,
    ) -> bool:
        """Ingest one record; False means the policy skipped/quarantined it."""
        record: dict[str, Any] = {"stream": stream, "item": item, "count": count}
        if time is not None:
            record["time"] = time
        return bool(self._call("ingest", record=record))

    def ingest_record(self, record: dict[str, Any]) -> bool:
        """Ingest one raw record dict, policy checks included."""
        return bool(self._call("ingest", record=record))

    def ingest_batch(self, records: Iterable[dict[str, Any]]) -> int:
        """Ingest a batch of raw record dicts; returns the applied count."""
        return int(self._call("ingest_batch", records=list(records)))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def point(
        self,
        stream: str,
        item: int,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window frequency estimate for ``item`` over ``(s, t]``."""
        return float(
            self._call("point", stream=stream, item=item, s=s, t=t, mode=mode)
        )

    def point_many(
        self,
        stream: str,
        items: Sequence[int],
        windows: Any = None,
        mode: str = "auto",
    ) -> list[float]:
        """Batched point queries; see ``ServingRuntime.point_many``."""
        result = self._call(
            "point_many",
            stream=stream,
            items=list(items),
            windows=windows,
            mode=mode,
        )
        return [float(v) for v in result]

    def heavy_hitters(
        self,
        stream: str,
        phi: float,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> dict[int, float]:
        """Window heavy hitters as ``{item: estimate}``."""
        pairs = self._call(
            "heavy_hitters", stream=stream, phi=phi, s=s, t=t, mode=mode
        )
        return {int(item): float(est) for item, est in pairs}

    def self_join_size(
        self,
        stream: str,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window second frequency moment estimate."""
        return float(
            self._call("self_join_size", stream=stream, s=s, t=t, mode=mode)
        )

    def window_mass(
        self,
        stream: str,
        s: float = 0,
        t: float | None = None,
        mode: str = "auto",
    ) -> float:
        """Window L1 mass estimate."""
        return float(
            self._call("window_mass", stream=stream, s=s, t=t, mode=mode)
        )

    # ------------------------------------------------------------------ #
    # Admin
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        return self._call("ping") == "pong"

    def health(self) -> dict[str, Any]:
        """Health snapshot, including the ``serving`` block."""
        return dict(self._call("health"))

    def describe(self) -> dict[str, Any]:
        """Full runtime description, including the ``serving`` block."""
        return dict(self._call("describe"))

    def fsck(self) -> dict[str, Any]:
        """Scan-only durability audit of the server's directory."""
        return dict(self._call("fsck"))

    def cutover(self, force: bool = True) -> dict[str, Any]:
        """Ask the server to advance its frozen view now."""
        return dict(self._call("cutover", force=force))
