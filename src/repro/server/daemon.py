"""The sketch-serving TCP daemon.

:class:`SketchServer` pairs a :class:`~repro.server.serving.ServingRuntime`
with a ``socketserver.ThreadingTCPServer`` speaking the JSON-lines
protocol of :mod:`repro.server.protocol`, plus a background ticker that
drives :meth:`ServingRuntime.maybe_cutover` so the frozen view keeps
pace with checkpointing without any reader or writer asking for it.

Exception policy per request: anything that is an :class:`Exception`
becomes a typed error response and the connection lives on.
:class:`~repro.runtime.faults.SimulatedCrash` (a ``BaseException``,
raised by an armed :class:`~repro.runtime.faults.FaultPlan` mid-ingest)
instead kills the whole server abruptly — no response to the in-flight
request, no WAL seal, no checkpoint — emulating ``kill -9`` for the
crash/restart test matrix.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, BinaryIO

from repro.runtime.faults import SimulatedCrash
from repro.server import protocol
from repro.server.protocol import BadRequestError
from repro.server.serving import ServingRuntime

_MISSING = object()


def _param(message: dict[str, Any], key: str, default: Any = _MISSING) -> Any:
    value = message.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise BadRequestError(f"missing required parameter {key!r}")
        return default
    return value


def _str_param(message: dict[str, Any], key: str, default: Any = _MISSING) -> Any:
    value = _param(message, key, default)
    if value is not default and not isinstance(value, str):
        raise BadRequestError(f"parameter {key!r} must be a string")
    return value


def _int_param(message: dict[str, Any], key: str, default: Any = _MISSING) -> Any:
    value = _param(message, key, default)
    if value is default:
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"parameter {key!r} must be an integer")
    return value


def _num_param(message: dict[str, Any], key: str, default: Any = _MISSING) -> Any:
    value = _param(message, key, default)
    if value is default or value is None:
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"parameter {key!r} must be a number")
    return float(value)


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "SketchServer"

    def handle_error(self, request: Any, client_address: Any) -> None:
        # Disconnects mid-write are routine; everything else keeps the
        # default traceback-to-stderr behaviour.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, BrokenPipeError, OSError)):
            return
        super().handle_error(request, client_address)


class _RequestHandler(socketserver.StreamRequestHandler):
    """One thread per connection; requests on a connection run in order."""

    def handle(self) -> None:
        server: SketchServer = self.server.owner  # type: ignore[attr-defined]
        rfile: BinaryIO = self.rfile
        while True:
            line = rfile.readline(protocol.MAX_LINE_BYTES + 1)
            if not line:
                return
            if not line.strip():
                continue
            if len(line) > protocol.MAX_LINE_BYTES:
                self._respond(
                    None,
                    error=protocol.error_payload(
                        BadRequestError(
                            f"frame exceeds {protocol.MAX_LINE_BYTES} bytes"
                        )
                    ),
                )
                return
            request_id: Any = None
            try:
                message = protocol.decode(line)
                request_id = message.get("id")
                result = server.dispatch(message)
            except protocol.ProtocolError as exc:
                # Framing is broken; answer once, then drop the link.
                self._respond(
                    request_id,
                    error=protocol.error_payload(BadRequestError(str(exc))),
                )
                return
            except SimulatedCrash:
                server._abrupt_stop()
                return  # the in-flight request dies unanswered, like kill -9
            except Exception as exc:  # sketchlint: disable=SL004 — protocol boundary: every Exception becomes a typed error response
                self._respond(request_id, error=protocol.error_payload(exc))
                continue
            self._respond(request_id, result=result)

    def _respond(
        self,
        request_id: Any,
        result: Any = None,
        error: dict[str, Any] | None = None,
    ) -> None:
        payload: dict[str, Any] = {"id": request_id, "ok": error is None}
        if error is None:
            payload["result"] = result
        else:
            payload["error"] = error
        self.wfile.write(protocol.encode(payload))
        self.wfile.flush()


class SketchServer:
    """Long-lived daemon owning a serving runtime on a TCP socket.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address` after construction.  :meth:`start` spawns the
    accept loop and the cutover ticker and builds the initial frozen
    view from the newest on-disk checkpoint; :meth:`stop` shuts down
    gracefully (the WAL tail is sealed via ``runtime.close()``).
    """

    def __init__(
        self,
        serving: ServingRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cutover_poll_s: float = 0.25,
    ) -> None:
        self.serving = serving
        self.cutover_poll_s = cutover_poll_s
        self.last_cutover_error: BaseException | None = None
        self._tcp = _ThreadingServer((host, port), _RequestHandler)
        self._tcp.owner = self
        self._stop = threading.Event()
        self._crashed = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` bindings."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def crashed(self) -> bool:
        """True once a :class:`SimulatedCrash` killed the server."""
        return self._crashed.is_set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SketchServer":
        """Build the initial view, then serve in background threads."""
        self.serving.maybe_cutover(force=True)
        accept = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-accept",
            daemon=True,
        )
        ticker = threading.Thread(
            target=self._cutover_loop, name="repro-serve-cutover", daemon=True
        )
        accept.start()
        ticker.start()
        self._threads = [accept, ticker]
        return self

    def __enter__(self) -> "SketchServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _cutover_loop(self) -> None:
        while not self._stop.wait(self.cutover_poll_s):
            try:
                self.serving.maybe_cutover()
            except Exception as exc:  # sketchlint: disable=SL004 — cutover must never kill the daemon; the error is surfaced on the server object
                self.last_cutover_error = exc

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, seal the WAL."""
        self._stop.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if not self._crashed.is_set():
            self.serving.close()

    def _abrupt_stop(self) -> None:
        """Simulated process death: nothing is sealed or checkpointed."""
        if self._crashed.is_set():
            return
        self._crashed.set()
        self._stop.set()
        # shutdown() must not run on a handler thread (it would deadlock
        # waiting for serve_forever to acknowledge while we hold it up).
        threading.Thread(
            target=self._close_tcp, name="repro-serve-crash", daemon=True
        ).start()

    def _close_tcp(self) -> None:
        try:
            self._tcp.shutdown()
            self._tcp.server_close()
        except OSError:  # sketchlint: disable=SL016 — already dying abruptly
            pass

    def serve_until_stopped(self) -> None:
        """Block the calling thread until :meth:`stop` (or a crash)."""
        self._stop.wait()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def dispatch(self, message: dict[str, Any]) -> Any:
        """Execute one decoded request; returns the JSON-safe result."""
        if self._crashed.is_set():
            # Connections that outlive the crash die unanswered too.
            raise SimulatedCrash("server crashed")
        verb = _str_param(message, "verb")
        handler = self._VERBS.get(verb)
        if handler is None:
            raise BadRequestError(f"unknown verb {verb!r}")
        return handler(self, message)

    # --- writes -------------------------------------------------------- #

    def _verb_ingest(self, message: dict[str, Any]) -> bool:
        record = _param(message, "record")
        return self.serving.ingest(record)

    def _verb_ingest_batch(self, message: dict[str, Any]) -> int:
        records = _param(message, "records")
        if not isinstance(records, list):
            raise BadRequestError("parameter 'records' must be a list")
        return self.serving.ingest_batch(records)

    # --- reads --------------------------------------------------------- #

    def _verb_point(self, message: dict[str, Any]) -> float:
        return self.serving.point(
            _str_param(message, "stream"),
            _int_param(message, "item"),
            s=_num_param(message, "s", 0.0),
            t=_num_param(message, "t", None),
            mode=_str_param(message, "mode", "auto"),
        )

    def _verb_point_many(self, message: dict[str, Any]) -> list[float]:
        items = _param(message, "items")
        if not isinstance(items, list):
            raise BadRequestError("parameter 'items' must be a list")
        return self.serving.point_many(
            _str_param(message, "stream"),
            items,
            windows=_param(message, "windows", None),
            mode=_str_param(message, "mode", "auto"),
        )

    def _verb_heavy_hitters(self, message: dict[str, Any]) -> list[list[float]]:
        hits = self.serving.heavy_hitters(
            _str_param(message, "stream"),
            _num_param(message, "phi"),
            s=_num_param(message, "s", 0.0),
            t=_num_param(message, "t", None),
            mode=_str_param(message, "mode", "auto"),
        )
        # JSON objects only take string keys; ship sorted [item, est] pairs.
        return [
            [item, est]
            for item, est in sorted(hits.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def _verb_self_join_size(self, message: dict[str, Any]) -> float:
        return self.serving.self_join_size(
            _str_param(message, "stream"),
            s=_num_param(message, "s", 0.0),
            t=_num_param(message, "t", None),
            mode=_str_param(message, "mode", "auto"),
        )

    def _verb_window_mass(self, message: dict[str, Any]) -> float:
        return self.serving.window_mass(
            _str_param(message, "stream"),
            s=_num_param(message, "s", 0.0),
            t=_num_param(message, "t", None),
            mode=_str_param(message, "mode", "auto"),
        )

    # --- admin --------------------------------------------------------- #

    def _verb_ping(self, message: dict[str, Any]) -> str:
        return "pong"

    def _verb_health(self, message: dict[str, Any]) -> dict[str, Any]:
        return self.serving.health()

    def _verb_describe(self, message: dict[str, Any]) -> dict[str, Any]:
        return self.serving.describe()

    def _verb_fsck(self, message: dict[str, Any]) -> dict[str, Any]:
        return self.serving.fsck()

    def _verb_cutover(self, message: dict[str, Any]) -> dict[str, Any]:
        force = _param(message, "force", True)
        if not isinstance(force, bool):
            raise BadRequestError("parameter 'force' must be a boolean")
        return self.serving.maybe_cutover(force=force)

    _VERBS = {
        "ingest": _verb_ingest,
        "ingest_batch": _verb_ingest_batch,
        "point": _verb_point,
        "point_many": _verb_point_many,
        "heavy_hitters": _verb_heavy_hitters,
        "self_join_size": _verb_self_join_size,
        "window_mass": _verb_window_mass,
        "ping": _verb_ping,
        "health": _verb_health,
        "describe": _verb_describe,
        "fsck": _verb_fsck,
        "cutover": _verb_cutover,
    }
