"""Query worker pool: forked readers attached to shared frozen views.

PR 8's daemon answered every frozen query on the accept thread's
process, so N connections shared one GIL and one copy of the frozen
tables.  This pool is the scale-out half of the shared-memory rework:
``--query-workers N`` forks N **stateless reader** processes that
attach to the serving view's published segment
(:func:`repro.engine.frozen.attach_view`) instead of materializing a
copy — one physical copy of the columnar tables serves every worker,
so RSS does not scale with worker count and each query runs on its own
core.

Workers cache their attachment per view *generation*: a query carries
``(generation, segment_name, verb, args)``, and a worker seeing a new
generation attaches the new segment and drops the old one (deferred
when still pinned by in-flight views).  Cutover therefore never blocks
on readers — POSIX keeps an unlinked segment valid until the last
attacher detaches.

Failure model (deliberately simpler than the ingest pool's): workers
hold **no unique state**, so supervision is respawn-and-fallback — a
dead, hung, or stale worker raises :class:`QueryWorkerError`, the
supervisor respawns the slot, and the caller (``ServingRuntime``)
answers that one query from its local frozen view instead.  Workers
only ever *attach* segments (the publisher owns every unlink), so a
kill -9'd worker cannot leak a ``/dev/shm`` entry — the chaos matrix
pins this by listing.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import traceback
from multiprocessing.connection import Connection
from typing import Any

from repro import shm
from repro.engine.frozen import attach_view
from repro.parallel import fork_available

#: Per-query reply deadline: frozen queries are milliseconds, so a
#: worker silent for this long is treated as dead and respawned.
_REPLY_DEADLINE_S = 30.0

_JOIN_TIMEOUT_S = 5.0


class QueryWorkerError(RuntimeError):
    """A query worker could not answer; the caller should serve locally."""


def _query_worker_main(conn: Connection) -> None:
    """Command loop of one forked query worker.

    Holds at most one live attachment: ``(generation, segment,
    view)``.  Superseded attachments are closed as soon as their views
    are dropped; a mapping still pinned by an in-flight answer is
    parked and retried between queries (its name is already unlinked
    publisher-side, so nothing is leaked either way).
    """
    generation: int | None = None
    segment: shm.ShmSegment | None = None
    view: Any = None
    parked: list[shm.ShmSegment] = []
    while True:
        parked[:] = [old for old in parked if not old.close()]
        try:
            message = conn.recv()
        except (EOFError, OSError):  # master went away
            break
        if message[0] == "exit":
            break
        _kind, gen, name, verb, args = message
        try:
            if gen != generation:
                view, new_segment = attach_view(name)
                if segment is not None and not segment.close():
                    parked.append(segment)
                generation, segment = gen, new_segment
            result = getattr(view, verb)(*args)
        except shm.ShmError:
            # The publisher moved past this generation and unlinked the
            # segment before we attached; the master serves locally.
            reply = ("stale", name)
        except BaseException:  # sketchlint: disable=SL004 — forwarded to master as an ("err", traceback) reply
            reply = ("err", traceback.format_exc())
        else:
            reply = ("ok", result)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # master went away
            break
    conn.close()


class _Slot:
    """One worker process plus the lock serializing its pipe."""

    __slots__ = ("proc", "conn", "lock")

    def __init__(self, proc: Any, conn: Connection | None) -> None:
        self.proc = proc
        self.conn = conn
        self.lock = threading.Lock()


class QueryWorkerPool:
    """``nworkers`` forked reader processes over shared frozen views.

    Thread-safe: the serving daemon's connection threads call
    :meth:`query` concurrently; queries round-robin across workers and
    serialize per worker pipe.  The pool is *hot* across cutovers —
    workers re-attach per generation, they are never restarted for one.
    """

    def __init__(
        self,
        nworkers: int,
        *,
        reply_deadline_s: float = _REPLY_DEADLINE_S,
    ) -> None:
        if nworkers < 1:
            raise ValueError(f"need >= 1 query worker, got {nworkers}")
        if not fork_available():
            raise QueryWorkerError(
                "query workers need the fork start method"
            )
        if not shm.shm_available():  # also pre-starts the resource tracker
            raise QueryWorkerError(
                "query workers need POSIX shared memory"
            )
        self.nworkers = nworkers
        self._reply_deadline_s = reply_deadline_s
        self._ctx = multiprocessing.get_context("fork")
        self._slots: list[_Slot] = []
        self._rr = itertools.count()
        self._closed = False
        #: Supervision counter (surfaced via serving health).
        self.respawns = 0
        for _ in range(nworkers):
            self._slots.append(self._spawn())

    def _spawn(self) -> _Slot:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_query_worker_main, args=(child,), daemon=True
        )
        proc.start()
        child.close()
        return _Slot(proc, parent)

    @property
    def pids(self) -> list[int]:
        """Worker process ids (0 for a slot awaiting respawn)."""
        return [
            slot.proc.pid or 0 if slot.proc is not None else 0
            for slot in self._slots
        ]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def _discard(self, slot: _Slot) -> None:
        """Kill and reap one slot's process (caller holds ``slot.lock``)."""
        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join(timeout=_JOIN_TIMEOUT_S)
        if slot.conn is not None:
            try:
                slot.conn.close()
            except Exception:  # sketchlint: disable=SL004 — best-effort fd cleanup
                pass
        slot.proc = None
        slot.conn = None

    def _respawn(self, slot: _Slot) -> None:
        """Supervisor path: replace a dead worker (caller holds the lock).

        Workers attach, never own, so there is no shm state to recover
        — a fresh fork re-attaches on its first query.
        """
        self._discard(slot)
        self.respawns += 1
        fresh = self._spawn()
        slot.proc = fresh.proc
        slot.conn = fresh.conn

    def query(
        self, generation: int, segment_name: str, verb: str, args: tuple
    ) -> Any:
        """Run one frozen query on an attached worker.

        Raises :class:`QueryWorkerError` when the worker is dead, hung,
        stale, or errored — after respawning it — so the caller can
        fall back to its local view; a query is never silently dropped.
        """
        if self._closed:
            raise QueryWorkerError("query worker pool is closed")
        slot = self._slots[next(self._rr) % self.nworkers]
        with slot.lock:
            conn = slot.conn
            if conn is None:
                self._respawn(slot)
                conn = slot.conn
            try:
                conn.send(("query", generation, segment_name, verb, args))
                if not conn.poll(self._reply_deadline_s):
                    raise QueryWorkerError(
                        f"query worker silent for {self._reply_deadline_s}s"
                    )
                status, value = conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                self._respawn(slot)
                raise QueryWorkerError(
                    f"query worker died mid-query: {type(exc).__name__}"
                ) from exc
            except QueryWorkerError:
                self._respawn(slot)
                raise
        if status == "ok":
            return value
        if status == "stale":
            raise QueryWorkerError(
                f"worker could not attach superseded segment {value!r}"
            )
        raise QueryWorkerError(f"query worker raised:\n{value}")

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            with slot.lock:
                if slot.conn is not None:
                    try:
                        slot.conn.send(("exit",))
                    except Exception:  # sketchlint: disable=SL004 — worker already dead; the discard below reaps it
                        pass
                self._discard(slot)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # sketchlint: disable=SL004 — finalizers must never raise
            pass

    def __enter__(self) -> "QueryWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def health(self) -> dict[str, Any]:
        """Status block merged into serving health."""
        return {
            "workers": self.nworkers,
            "pids": self.pids,
            "respawns": self.respawns,
        }

    def wait_ready(self, timeout_s: float = 5.0) -> bool:
        """Best-effort wait until every worker process is alive."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                slot.proc is not None and slot.proc.is_alive()
                for slot in self._slots
            ):
                return True
            time.sleep(0.01)
        return False
