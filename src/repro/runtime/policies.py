"""Per-stream ingest policies: what to do when the input is ragged.

The sketches demand pristine input — strictly increasing timestamps,
well-formed integer records — but production collectors deliver
duplicates, clock skew and garbage.  An :class:`IngestPolicy` makes the
runtime's reaction explicit and configurable per failure class:

============  =========================================================
``raise``     propagate (development / strict pipelines)
``skip``      drop the record, count it in :class:`IngestStats`
``quarantine``  append the record + reason to the dead-letter file,
              count it, continue
============  =========================================================

Lateness means a resolved timestamp at or before the target stream's
clock (the paper's model admits at most one arrival per tick, so a
duplicate timestamp is late too).  Malformedness is anything
:func:`repro.streams.records.parse_record` rejects.

Snapshot I/O gets a separate knob: transient ``OSError`` during a
checkpoint is retried up to ``max_retries`` times with exponential
backoff (deterministic, injectable sleep — tests pass a recording stub).
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.io.atomic import fsync_directory

T = TypeVar("T")

#: Valid policy actions for malformed / late records.
ACTIONS = ("raise", "skip", "quarantine")


class MalformedRecordError(ValueError):
    """A malformed record arrived under the ``raise`` policy."""


class LateRecordError(ValueError):
    """A late/non-monotone record arrived under the ``raise`` policy."""


class SnapshotRetryError(RuntimeError):
    """Snapshot I/O kept failing after all scripted retries."""


@dataclass(frozen=True)
class IngestPolicy:
    """How the runtime reacts to ragged input and flaky snapshot I/O.

    Attributes
    ----------
    on_malformed, on_late:
        One of :data:`ACTIONS`.
    max_retries:
        Additional snapshot attempts after the first failure.
    backoff_base:
        Sleep before the first retry, in seconds.
    backoff_factor:
        Multiplier between consecutive retries.
    backoff_cap:
        Ceiling on any *single* backoff sleep, in seconds (exponential
        growth saturates here instead of running away).
    backoff_total_cap:
        Ceiling on the *cumulative* time slept across all retries of one
        operation; once reached, remaining retries run back-to-back.
        Keeps worst-case retry latency bounded and fault-injection tests
        off the real wall clock.
    """

    on_malformed: str = "raise"
    on_late: str = "raise"
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    backoff_total_cap: float = 10.0

    def __post_init__(self) -> None:
        for name, value in (
            ("on_malformed", self.on_malformed),
            ("on_late", self.on_late),
        ):
            if value not in ACTIONS:
                raise ValueError(
                    f"{name} must be one of {ACTIONS}, got {value!r}"
                )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1")
        if self.backoff_cap < 0 or self.backoff_total_cap < 0:
            raise ValueError(
                "backoff_cap >= 0 and backoff_total_cap >= 0"
            )


@dataclass
class IngestStats:
    """Counters surfaced on the runtime (and by ``repro recover``)."""

    ingested: int = 0
    malformed: int = 0
    late: int = 0
    quarantined: int = 0
    checkpoints: int = 0
    snapshot_retries: int = 0
    replayed: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order) for logs and the CLI."""
        return {
            "ingested": self.ingested,
            "malformed": self.malformed,
            "late": self.late,
            "quarantined": self.quarantined,
            "checkpoints": self.checkpoints,
            "snapshot_retries": self.snapshot_retries,
            "replayed": self.replayed,
        }


class DeadLetterFile:
    """Append-only JSON-lines quarantine for rejected records.

    Each entry records the failure class, the reason, and the offending
    raw record (stringified when not JSON-serializable).  Appends are
    flushed line-at-a-time; the file is an operator-facing artifact, not
    a recovery input, so it does not need WAL-grade framing.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Entry count, maintained incrementally after the first (lazy)
        # scan so status surfaces never pay O(quarantine size) again.
        self._count: int | None = None

    def append(self, kind: str, reason: str, raw: object) -> None:
        """Quarantine one record."""
        try:
            payload = json.dumps(raw)
        except TypeError:
            payload = json.dumps(repr(raw))
        entry = json.dumps(
            {"kind": kind, "reason": reason, "record": json.loads(payload)},
            separators=(",", ":"),
        )
        # Append-only quarantine log: fsync-in-place is the correct
        # durability primitive here (tmp+rename would clobber prior
        # entries), so the raw handle is deliberate.
        with open(self.path, "a", encoding="utf-8") as handle:  # sketchlint: disable=SL012 — fsync'd append, not a tearable final-path write
            handle.write(entry + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self.path.parent)
        if self._count is not None:
            self._count += 1

    def count(self) -> int:
        """Number of quarantined entries, without materializing them.

        The first call scans the file once (counting non-blank lines, so
        the answer matches ``len(self.entries())`` without any JSON
        parsing); later calls return a counter maintained by
        :meth:`append`.  Status surfaces — the runtime's ``describe()``
        and the serving daemon's health endpoint — call this per
        request, so it must not scale with the quarantine file.
        """
        if self._count is None:
            if not self.path.exists():
                self._count = 0
            else:
                with open(self.path, "rb") as handle:
                    self._count = sum(
                        1 for line in handle if line.strip()
                    )
        return self._count

    def entries(self) -> list[dict[str, Any]]:
        """All quarantined entries (empty when the file does not exist)."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out


def run_with_retry(
    operation: Callable[[], T],
    policy: IngestPolicy,
    stats: IngestStats,
    sleep: Callable[[float], None] | None = None,
    what: str = "snapshot",
) -> T:
    """Run ``operation`` retrying transient ``OSError`` with backoff.

    Only ``OSError`` is retried: a :class:`SimulatedCrash` is a
    ``BaseException`` and always propagates (as a real crash would), and
    non-IO errors indicate bugs, not flaky disks.  Raises
    :class:`SnapshotRetryError` once the budget is exhausted.

    The sleep callable is injectable (tests pass a recording stub or a
    no-op, keeping fault injection off the real wall clock), and backoff
    is doubly capped by the policy: per-sleep at ``backoff_cap`` and
    cumulatively at ``backoff_total_cap`` — so an operation's worst-case
    retry latency is bounded no matter how ``max_retries``,
    ``backoff_base`` and ``backoff_factor`` are configured.
    """
    sleep = _time.sleep if sleep is None else sleep
    delay = policy.backoff_base
    slept = 0.0
    last: OSError | None = None
    for attempt in range(policy.max_retries + 1):
        if attempt > 0:
            stats.snapshot_retries += 1
            step = min(delay, policy.backoff_cap)
            step = min(step, max(0.0, policy.backoff_total_cap - slept))
            sleep(step)
            slept += step
            delay *= policy.backoff_factor
        try:
            return operation()
        except OSError as exc:
            last = exc
    raise SnapshotRetryError(
        f"{what} failed after {policy.max_retries + 1} attempts: {last}"
    ) from last
