"""Durability scrubber for an ingest-runtime directory (``repro fsck``).

Recovery (:meth:`~repro.runtime.runtime.IngestRuntime.recover`) is only
as strong as the on-disk state it starts from, and PR 2's machinery
discovers at-rest damage — bit-rot inside a sealed WAL segment, a
truncated checkpoint archive, a lost ``CHECKPOINT`` pointer — either
mid-recovery (as a hard :class:`~repro.runtime.wal.WalCorruption`) or
never.  This module walks the whole directory *first* and turns every
kind of damage into an explicit verdict:

Segments (``wal/segment-*.wal``)
    ``clean`` — every line CRC-checks and the sequence run is contiguous;
    ``torn-tail`` — only the final line of the *final* segment is
    damaged (a crashed append; the record was never acknowledged, so
    truncating it is repair, not loss);
    ``corrupt`` — a damaged frame or sequence anomaly anywhere else
    (records here *were* acknowledged);
    ``orphaned`` — intact, but unreachable by replay because an earlier
    segment is corrupt or missing (a sequence gap severs the chain).

Checkpoints (``checkpoints/ckpt-*``)
    ``clean`` — the snapshot deserializes end-to-end
    (:meth:`~repro.store.store.SketchStore.open`); ``unreadable``
    otherwise.

Pointer (``CHECKPOINT``)
    ``clean`` / ``missing`` / ``corrupt`` (unparseable or inconsistent)
    / ``dangling`` (names a checkpoint that is absent or unreadable).

Damage is judged relative to the best *intact* checkpoint: a corrupt
segment whose records are all covered by that checkpoint is loss-free
(replay never needs it), while damage past the checkpoint loses
acknowledged records — reported, never silently dropped.  With
``repair=True`` the scrubber truncates torn tails, sweeps orphaned
checkpoint staging directories, moves corrupt/orphaned segments and
unreadable checkpoints into ``quarantine/``, and rewrites the pointer at
the best intact checkpoint, leaving a directory
:meth:`~repro.runtime.runtime.IngestRuntime.recover` always accepts.

See ``docs/robustness.md`` for the failure-mode matrix this feeds.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.io import SerializationError
from repro.io.atomic import atomic_write_text, fsync_directory
from repro.runtime.wal import _SEGMENT_RE, _decode_line
from repro.store.store import SketchStore

_CKPT_RE = re.compile(r"^ckpt-(\d{12})$")

#: Name of the quarantine directory created under the runtime root.
QUARANTINE_DIR = "quarantine"

#: Segment verdicts.
SEG_CLEAN = "clean"
SEG_TORN_TAIL = "torn-tail"
SEG_CORRUPT = "corrupt"
SEG_ORPHANED = "orphaned"

#: Checkpoint verdicts.
CKPT_CLEAN = "clean"
CKPT_UNREADABLE = "unreadable"

#: Pointer verdicts.
PTR_CLEAN = "clean"
PTR_MISSING = "missing"
PTR_CORRUPT = "corrupt"
PTR_DANGLING = "dangling"


@dataclass
class SegmentVerdict:
    """Scrub result for one WAL segment file."""

    #: File name (``segment-<first_seq>.wal``).
    name: str
    #: Sequence number carried by the file name.
    start_seq: int
    #: One of the ``SEG_*`` verdicts.
    verdict: str
    #: Human-readable elaboration (damage position, gap description).
    detail: str
    #: CRC-valid records decoded from the file.
    valid_records: int
    #: Damaged (undecodable) lines encountered.
    damaged_lines: int
    #: Highest sequence number decoded (0 when none).
    last_seq: int
    #: Valid records beyond the best intact checkpoint — acknowledged
    #: history that is lost if this segment cannot be replayed.
    records_beyond_checkpoint: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view for the CLI report."""
        return {
            "name": self.name,
            "verdict": self.verdict,
            "detail": self.detail,
            "valid_records": self.valid_records,
            "damaged_lines": self.damaged_lines,
            "last_seq": self.last_seq,
            "records_beyond_checkpoint": self.records_beyond_checkpoint,
        }


@dataclass
class CheckpointVerdict:
    """Scrub result for one checkpoint directory."""

    #: Directory name (``ckpt-<covered_seq>``).
    name: str
    #: Sequence number the snapshot covers.
    covered_seq: int
    #: ``clean`` or ``unreadable``.
    verdict: str
    #: Deserialization error text when unreadable.
    detail: str

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view for the CLI report."""
        return {
            "name": self.name,
            "covered_seq": self.covered_seq,
            "verdict": self.verdict,
            "detail": self.detail,
        }


@dataclass
class PointerVerdict:
    """Scrub result for the ``CHECKPOINT`` pointer file."""

    #: One of the ``PTR_*`` verdicts.
    verdict: str
    #: Human-readable elaboration.
    detail: str
    #: Checkpoint name the pointer references (when parseable).
    checkpoint: str | None

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view for the CLI report."""
        return {
            "verdict": self.verdict,
            "detail": self.detail,
            "checkpoint": self.checkpoint,
        }


@dataclass
class FsckReport:
    """Everything one scrub pass learned (and did, under ``repair``)."""

    #: Runtime directory that was scrubbed.
    directory: str
    #: Per-segment verdicts, oldest first.
    segments: list[SegmentVerdict] = field(default_factory=list)
    #: Per-checkpoint verdicts, oldest first.
    checkpoints: list[CheckpointVerdict] = field(default_factory=list)
    #: Pointer verdict.
    pointer: PointerVerdict = field(
        default_factory=lambda: PointerVerdict(PTR_MISSING, "not scanned", None)
    )
    #: Covered sequence of the best intact checkpoint (``None`` when no
    #: checkpoint deserializes — recovery is impossible).
    best_covered_seq: int | None = None
    #: Highest sequence replay can reach after repair.
    replayable_through: int = 0
    #: Highest sequence number seen anywhere in the WAL.
    max_seq_seen: int = 0
    #: Acknowledged, decodable records that repair cannot save.
    lost_records: int = 0
    #: Damaged frames whose contents (and loss) are unknowable.
    unknown_damaged_frames: int = 0
    #: Orphaned checkpoint staging directories found.
    orphan_staging: list[str] = field(default_factory=list)
    #: Repair actions applied (empty on a scan-only pass).
    actions: list[str] = field(default_factory=list)
    #: Whether this pass ran with ``repair=True``.
    repaired: bool = False
    #: Records decoded across all segments (scan-throughput accounting).
    scanned_records: int = 0
    #: Bytes read across all segments.
    scanned_bytes: int = 0

    @property
    def data_loss(self) -> bool:
        """Whether acknowledged history is (or would be) lost."""
        return self.lost_records > 0 or self.unknown_damaged_frames > 0

    @property
    def recoverable(self) -> bool:
        """Whether :meth:`IngestRuntime.recover` can succeed at all."""
        return self.best_covered_seq is not None

    @property
    def clean(self) -> bool:
        """No damage of any kind (pointer, checkpoints, segments)."""
        return (
            self.recoverable
            and not self.data_loss
            and self.pointer.verdict == PTR_CLEAN
            and not self.orphan_staging
            and all(s.verdict == SEG_CLEAN for s in self.segments)
            and all(c.verdict == CKPT_CLEAN for c in self.checkpoints)
        )

    def summary(self) -> str:
        """One-line operator summary."""
        if self.clean:
            return (
                f"clean: {len(self.segments)} segment(s), "
                f"{len(self.checkpoints)} checkpoint(s), "
                f"replayable through seq {self.replayable_through}"
            )
        parts = []
        for verdict in (SEG_TORN_TAIL, SEG_CORRUPT, SEG_ORPHANED):
            count = sum(1 for s in self.segments if s.verdict == verdict)
            if count:
                parts.append(f"{count} {verdict} segment(s)")
        bad_ckpts = sum(
            1 for c in self.checkpoints if c.verdict != CKPT_CLEAN
        )
        if bad_ckpts:
            parts.append(f"{bad_ckpts} unreadable checkpoint(s)")
        if self.pointer.verdict != PTR_CLEAN:
            parts.append(f"pointer {self.pointer.verdict}")
        if self.orphan_staging:
            parts.append(f"{len(self.orphan_staging)} orphan staging dir(s)")
        if not self.recoverable:
            parts.append("NO RECOVERABLE CHECKPOINT")
        if self.data_loss:
            parts.append(
                f"DATA LOSS: {self.lost_records} acknowledged record(s) "
                f"+ {self.unknown_damaged_frames} unknown frame(s) "
                f"beyond seq {self.replayable_through}"
            )
        return "; ".join(parts) or "damage detected"

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view for ``repro fsck`` and the health endpoint."""
        return {
            "directory": self.directory,
            "clean": self.clean,
            "recoverable": self.recoverable,
            "data_loss": self.data_loss,
            "best_covered_seq": self.best_covered_seq,
            "replayable_through": self.replayable_through,
            "max_seq_seen": self.max_seq_seen,
            "lost_records": self.lost_records,
            "unknown_damaged_frames": self.unknown_damaged_frames,
            "pointer": self.pointer.as_dict(),
            "checkpoints": [c.as_dict() for c in self.checkpoints],
            "segments": [s.as_dict() for s in self.segments],
            "orphan_staging": self.orphan_staging,
            "repaired": self.repaired,
            "actions": self.actions,
            "scanned_records": self.scanned_records,
            "scanned_bytes": self.scanned_bytes,
            "summary": self.summary(),
        }


def _scan_checkpoints(
    directory: Path, report: FsckReport
) -> None:
    """Verdict every ``ckpt-*`` directory by full deserialization."""
    root = directory / "checkpoints"
    if not root.is_dir():
        return
    found: list[tuple[int, Path]] = []
    for path in root.iterdir():
        if path.name.startswith(".ckpt-") and ".saving." in path.name:
            report.orphan_staging.append(path.name)
            continue
        match = _CKPT_RE.match(path.name)
        if match and path.is_dir():
            found.append((int(match.group(1)), path))
    for covered, path in sorted(found):
        try:
            SketchStore.open(path)
        except SerializationError as exc:
            report.checkpoints.append(
                CheckpointVerdict(path.name, covered, CKPT_UNREADABLE, str(exc))
            )
            continue
        report.checkpoints.append(
            CheckpointVerdict(path.name, covered, CKPT_CLEAN, "")
        )
        if report.best_covered_seq is None or covered > report.best_covered_seq:
            report.best_covered_seq = covered


def _scan_pointer(directory: Path, report: FsckReport) -> None:
    """Verdict the ``CHECKPOINT`` pointer file."""
    path = directory / "CHECKPOINT"
    if not path.exists():
        report.pointer = PointerVerdict(
            PTR_MISSING, "CHECKPOINT pointer file does not exist", None
        )
        return
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        name = document["checkpoint"]
        covered = document["covered_seq"]
    except (ValueError, KeyError, TypeError, OSError) as exc:  # sketchlint: disable=SL016 — classification, not suppression: the damage becomes a pointer verdict the repair pass acts on
        report.pointer = PointerVerdict(
            PTR_CORRUPT, f"pointer unparseable: {exc}", None
        )
        return
    match = _CKPT_RE.match(str(name))
    if match is None or int(match.group(1)) != covered:
        report.pointer = PointerVerdict(
            PTR_CORRUPT,
            f"pointer names {name!r} but covers seq {covered!r}",
            str(name),
        )
        return
    verdicts = {c.name: c.verdict for c in report.checkpoints}
    if verdicts.get(name) != CKPT_CLEAN:
        state = (
            "unreadable" if name in verdicts else "absent"
        )
        report.pointer = PointerVerdict(
            PTR_DANGLING,
            f"pointer names {state} checkpoint {name}",
            str(name),
        )
        return
    report.pointer = PointerVerdict(PTR_CLEAN, "", str(name))


def _scan_segment(
    path: Path, report: FsckReport
) -> tuple[list[tuple[int, bool]], int]:
    """Read one segment; returns ``(line_infos, byte_size)``.

    ``line_infos`` holds ``(seq_or_-1, terminated)`` per non-trailing-blank
    line: ``seq`` is ``-1`` when the frame is damaged.
    """
    raw = path.read_text(encoding="utf-8", errors="replace")
    report.scanned_bytes += len(raw.encode("utf-8"))
    lines = raw.splitlines(keepends=True)
    while lines and not lines[-1].strip():
        lines.pop()
    infos: list[tuple[int, bool]] = []
    for line in lines:
        terminated = line.endswith("\n")
        record = _decode_line(line) if terminated else None
        if record is None:
            infos.append((-1, terminated))
        else:
            infos.append((int(record["seq"]), True))
            report.scanned_records += 1
    return infos, len(raw.encode("utf-8"))


def _scan_wal(directory: Path, report: FsckReport) -> None:
    """Verdict every WAL segment and compute the data-loss ledger.

    The chain is judged against ``report.best_covered_seq`` (damage
    wholly covered by the best intact checkpoint is loss-free because
    replay never needs those records); a damaged frame or sequence gap
    past the checkpoint severs the chain — everything after it, however
    intact, is unreachable by sequential replay and becomes ``orphaned``.
    """
    wal_dir = directory / "wal"
    best = report.best_covered_seq if report.best_covered_seq is not None else 0
    segments: list[tuple[int, Path]] = []
    if wal_dir.is_dir():
        for path in wal_dir.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                segments.append((int(match.group(1)), path))
    segments.sort()
    severed_at: int | None = None  # first untrusted seq, once the chain breaks
    expected = best + 1  # replay needs contiguity from here on
    for position, (start, path) in enumerate(segments):
        is_last_segment = position == len(segments) - 1
        infos, _size = _scan_segment(path, report)
        seqs = [seq for seq, _terminated in infos if seq >= 0]
        damaged = sum(1 for seq, _terminated in infos if seq < 0)
        last_seq = max(seqs) if seqs else 0
        beyond = sum(1 for seq in seqs if seq > best)
        report.max_seq_seen = max(report.max_seq_seen, last_seq)
        verdict, detail = SEG_CLEAN, ""
        severed_here = False

        if severed_at is not None:
            verdict = SEG_ORPHANED
            detail = (
                f"unreachable: replay chain severed at seq {severed_at}"
            )
        elif start > expected and start > best + 1:
            # Records expected..start-1 are missing (a whole segment lost).
            severed_at = max(expected, best + 1)
            severed_here = True
            verdict = SEG_ORPHANED
            detail = (
                f"sequence gap before segment: expected seq "
                f"{max(expected, best + 1)}, segment starts at {start}"
            )
            report.unknown_damaged_frames += start - max(expected, best + 1)
        else:
            # Intra-segment scan: contiguity + framing.
            run_expected = start
            for index, (seq, _terminated) in enumerate(infos):
                if seq < 0:
                    if is_last_segment and index == len(infos) - 1:
                        verdict = SEG_TORN_TAIL
                        detail = (
                            f"torn final line {index + 1} "
                            "(unacknowledged append; repair truncates)"
                        )
                        damaged -= 1  # not an at-rest frame loss
                    else:
                        verdict = SEG_CORRUPT
                        detail = (
                            f"damaged frame at line {index + 1} "
                            f"(expected seq {run_expected})"
                        )
                        if run_expected > best or beyond > 0:
                            severed_at = max(run_expected, best + 1)
                            severed_here = True
                    break
                if seq != run_expected:
                    verdict = SEG_CORRUPT
                    detail = (
                        f"sequence anomaly at line {index + 1}: "
                        f"expected {run_expected}, found {seq}"
                    )
                    if run_expected > best or beyond > 0:
                        severed_at = max(run_expected, best + 1)
                        severed_here = True
                    break
                run_expected = seq + 1

        if verdict in (SEG_CLEAN, SEG_TORN_TAIL) and seqs:
            expected = last_seq + 1
        # Damaged frames lost to at-rest corruption whose contents are
        # unknowable: only counted past the checkpoint (covered damage
        # is loss-free — replay never needs those records).
        if severed_here and verdict == SEG_CORRUPT:
            report.unknown_damaged_frames += max(0, damaged)
        elif verdict == SEG_ORPHANED and not severed_here:
            report.unknown_damaged_frames += max(0, damaged)

        report.segments.append(
            SegmentVerdict(
                name=path.name,
                start_seq=start,
                verdict=verdict,
                detail=detail,
                valid_records=len(seqs),
                damaged_lines=max(0, damaged),
                last_seq=last_seq,
                records_beyond_checkpoint=beyond,
            )
        )

    # The post-repair replayable floor.  Replay walks seq best+1, best+2,
    # ... through the surviving segments, so a damaged segment whose
    # records all sit at or below the floor is simply skipped (replay
    # never opens it), while one holding needed records ends the chain —
    # its valid prefix is quarantined with the rest of the file, so it
    # does not count.
    replayable = best
    for seg in report.segments:
        if seg.verdict in (SEG_CLEAN, SEG_TORN_TAIL):
            if not seg.valid_records:
                continue
            if seg.start_seq > replayable + 1:
                break  # records replay needs are missing before here
            replayable = max(replayable, seg.last_seq)
        elif seg.last_seq <= replayable and seg.verdict != SEG_ORPHANED:
            continue  # fully covered damage: replay skips the file
        else:
            break
    report.replayable_through = replayable

    # Loss ledger: acknowledged records we can decode but not replay.
    lost = 0
    for (_start, path), seg in zip(segments, report.segments):
        if seg.verdict in (SEG_CORRUPT, SEG_ORPHANED):
            lost += _count_lost(path, report.replayable_through)
    report.lost_records = lost


def _count_lost(path: Path, replayable_through: int) -> int:
    """Decodable records in ``path`` with seq beyond the replayable floor."""
    lost = 0
    raw = path.read_text(encoding="utf-8", errors="replace")
    for line in raw.splitlines():
        record = _decode_line(line + "\n") if line.strip() else None
        if record is not None and int(record["seq"]) > replayable_through:
            lost += 1
    return lost


def _repair(directory: Path, report: FsckReport) -> None:
    """Apply every safe repair the scan justified; records actions."""
    wal_dir = directory / "wal"
    quarantine = directory / QUARANTINE_DIR

    for staging in report.orphan_staging:
        shutil.rmtree(directory / "checkpoints" / staging, ignore_errors=True)
        report.actions.append(f"removed orphan staging dir {staging}")

    for seg in report.segments:
        path = wal_dir / seg.name
        if seg.verdict == SEG_TORN_TAIL:
            _truncate_torn_tail(path)
            seg.verdict = SEG_CLEAN
            seg.detail += " [repaired: truncated]"
            report.actions.append(f"truncated torn tail of {seg.name}")
        elif seg.verdict in (SEG_CORRUPT, SEG_ORPHANED):
            quarantine.mkdir(parents=True, exist_ok=True)
            shutil.move(str(path), str(quarantine / seg.name))
            fsync_directory(quarantine)
            fsync_directory(wal_dir)
            report.actions.append(
                f"quarantined {seg.verdict} segment {seg.name}"
                + (
                    f" (LOSES acknowledged records beyond seq "
                    f"{report.replayable_through})"
                    if seg.records_beyond_checkpoint
                    else " (loss-free: fully covered by checkpoint)"
                )
            )

    if report.best_covered_seq is not None:
        for ckpt in report.checkpoints:
            if ckpt.verdict != CKPT_UNREADABLE:
                continue
            quarantine.mkdir(parents=True, exist_ok=True)
            shutil.move(
                str(directory / "checkpoints" / ckpt.name),
                str(quarantine / ckpt.name),
            )
            fsync_directory(quarantine)
            report.actions.append(
                f"quarantined unreadable checkpoint {ckpt.name}"
            )
        if report.pointer.verdict != PTR_CLEAN:
            best = report.best_covered_seq
            atomic_write_text(
                directory / "CHECKPOINT",
                json.dumps(
                    {
                        "format": "repro-runtime",
                        "version": 1,
                        "checkpoint": f"ckpt-{best:012d}",
                        "covered_seq": best,
                    },
                    indent=2,
                ),
            )
            report.actions.append(
                f"rewrote pointer at best intact checkpoint "
                f"ckpt-{best:012d}"
            )
            report.pointer = PointerVerdict(
                PTR_CLEAN, "[repaired]", f"ckpt-{best:012d}"
            )
    report.repaired = True


def _truncate_torn_tail(path: Path) -> None:
    """Rewrite ``path`` down to its valid framed prefix (in place)."""
    raw = path.read_text(encoding="utf-8", errors="replace")
    valid_bytes = 0
    for line in raw.splitlines(keepends=True):
        if line.endswith("\n") and _decode_line(line) is not None:
            valid_bytes += len(line.encode("utf-8"))
        else:
            break
    if valid_bytes < len(raw.encode("utf-8")):
        with open(path, "r+b") as handle:  # sketchlint: disable=SL012 — torn-tail repair truncates in place; only discards bytes already proven invalid
            handle.truncate(valid_bytes)


def run_fsck(directory: str | Path, repair: bool = False) -> FsckReport:
    """Scrub one runtime directory; optionally repair what is safe.

    Scan-only (``repair=False``) never mutates the directory.  With
    ``repair=True`` the pass truncates torn tails, quarantines
    corrupt/orphaned segments and unreadable checkpoints (into
    ``quarantine/``), sweeps staging orphans and rewrites a damaged
    ``CHECKPOINT`` pointer — after which
    :meth:`~repro.runtime.runtime.IngestRuntime.recover` succeeds
    whenever :attr:`FsckReport.recoverable` is true.  Repair never
    deletes damaged data: quarantined files remain on disk for forensics,
    and any acknowledged-record loss is reported explicitly
    (:attr:`FsckReport.lost_records`), never silent.
    """
    directory = Path(directory)
    report = FsckReport(directory=str(directory))
    _scan_checkpoints(directory, report)
    _scan_pointer(directory, report)
    _scan_wal(directory, report)
    if repair:
        _repair(directory, report)
    return report
