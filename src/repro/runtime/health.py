"""Degraded-mode supervision for the ingestion runtime.

A long-lived ingest service cannot treat every disk hiccup as fatal:
``ENOSPC`` during a snapshot, a quarantined WAL segment, or exhausted
snapshot retries are all survivable *if* the service stops accepting
writes it can no longer make durable while continuing to answer queries
from the state it already holds.  This module is that supervision layer:

:class:`HealthState`
    ``HEALTHY -> DEGRADED_READONLY -> FAILED``.  ``DEGRADED_READONLY``
    rejects writes (with a typed :class:`DegradedError` carrying the
    cause) but keeps serving live and frozen queries; ``FAILED`` means
    the in-memory state may have diverged from the WAL (an apply-path
    exception after durability) and refuses reads too.

:class:`HealthMonitor`
    The state machine plus hysteresis-based re-probing: while degraded
    for a *recoverable* cause (a flaky or full disk), every
    ``probe_interval``-th rejected write runs a cheap durability probe
    (write + fsync + unlink of a token file); ``heal_after`` consecutive
    successful probes flip the runtime back to ``HEALTHY``.  Hysteresis
    prevents flapping on a disk that is intermittently writable.

Non-recoverable degradations (``wal-quarantined`` after fsck detected
data loss) are *sticky*: no amount of probing clears them, because the
problem is not the disk but the history — an operator must call
:meth:`HealthMonitor.acknowledge` (``repro fsck --repair`` /
``IngestRuntime.acknowledge_data_loss``) to accept the loss explicitly.

See ``docs/robustness.md`` for the full failure-mode matrix.
"""

from __future__ import annotations

import enum
import os
from pathlib import Path
from time import monotonic
from typing import Any, Callable


class HealthState(enum.Enum):
    """Runtime health, ordered from fully serving to fully stopped."""

    #: Accepting writes and serving queries.
    HEALTHY = "healthy"
    #: Rejecting writes (durability cannot be promised) but still
    #: serving live and frozen queries from the state already applied.
    DEGRADED_READONLY = "degraded-readonly"
    #: In-memory state is suspect (apply diverged from the WAL after a
    #: record was already durable); both writes and reads are refused.
    FAILED = "failed"


class DegradedError(RuntimeError):
    """An operation was refused because of the runtime's health state.

    Attributes
    ----------
    state:
        The :class:`HealthState` that caused the refusal.
    cause:
        Stable machine-readable cause token (e.g. ``"wal-io-error"``,
        ``"snapshot-retries-exhausted"``, ``"wal-quarantined"``,
        ``"apply-divergence"``).
    detail:
        Human-readable elaboration of the cause.
    """

    def __init__(self, state: HealthState, cause: str, detail: str) -> None:
        super().__init__(
            f"runtime is {state.value} ({cause}): {detail}"
        )
        self.state = state
        self.cause = cause
        self.detail = detail


def _probe_directory(directory: Path) -> bool:
    """Durably write, fsync and remove a token file; ``False`` on failure.

    This is the default recovery probe: it exercises exactly the
    operations an ingest needs (open/append/fsync in the runtime
    directory), so its success is evidence the WAL would accept writes
    again.
    """
    token = directory / ".health-probe"
    try:
        with open(token, "w", encoding="utf-8") as handle:  # sketchlint: disable=SL012 — probe token, not durable state; outcome is the boolean
            handle.write("ok\n")
            handle.flush()
            os.fsync(handle.fileno())
        token.unlink()
    except OSError:  # sketchlint: disable=SL016 — the probe's contract IS classifying OSError as "still not writable"
        return False
    return True


class HealthMonitor:
    """``HEALTHY -> DEGRADED_READONLY -> FAILED`` with probed healing.

    Parameters
    ----------
    directory:
        Runtime directory the default durability probe writes into.
    probe:
        Optional zero-argument callable returning ``True`` when the
        underlying storage accepts durable writes again; defaults to a
        write+fsync+unlink of ``.health-probe`` in ``directory``.  Tests
        inject stubs to script recovery.
    probe_interval:
        Run the probe on every Nth rejected write while degraded
        (1 = probe on every rejection).  The first rejection after a
        degradation always probes.
    heal_after:
        Consecutive successful probes required before flipping back to
        ``HEALTHY`` (hysteresis against flapping disks).
    clock:
        Monotonic-seconds source for checkpoint-age reporting
        (injectable for deterministic tests).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        probe: Callable[[], bool] | None = None,
        probe_interval: int = 8,
        heal_after: int = 2,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if heal_after < 1:
            raise ValueError("heal_after must be >= 1")
        self.directory = Path(directory)
        self.probe_interval = probe_interval
        self.heal_after = heal_after
        self._probe = probe
        self._clock = monotonic if clock is None else clock
        self.state = HealthState.HEALTHY
        self.cause: str | None = None
        self.detail: str | None = None
        self.recoverable = True
        #: Counters surfaced by :meth:`snapshot`.
        self.rejected_writes = 0
        self.degradations = 0
        self.heals = 0
        self.probes_run = 0
        self.quarantined_segments = 0
        self.quarantined_checkpoints = 0
        self._probe_streak = 0
        # First rejection after a degradation probes immediately.
        self._rejections_since_probe = probe_interval
        self._last_checkpoint_at: float | None = None

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #

    def degrade(
        self, cause: str, detail: str, *, recoverable: bool = True
    ) -> None:
        """Enter ``DEGRADED_READONLY`` (no-op when already ``FAILED``).

        ``recoverable=False`` marks the degradation sticky: probing never
        clears it and only :meth:`acknowledge` returns to ``HEALTHY``.
        A sticky cause also wins over a later recoverable one.
        """
        if self.state is HealthState.FAILED:
            return
        if (
            self.state is HealthState.DEGRADED_READONLY
            and not self.recoverable
        ):
            return  # sticky cause keeps precedence
        self.state = HealthState.DEGRADED_READONLY
        self.cause = cause
        self.detail = detail
        self.recoverable = recoverable
        self.degradations += 1
        self._probe_streak = 0
        self._rejections_since_probe = self.probe_interval

    def fail(self, cause: str, detail: str) -> None:
        """Enter terminal ``FAILED``: reads and writes are both refused."""
        self.state = HealthState.FAILED
        self.cause = cause
        self.detail = detail
        self.recoverable = False
        self.degradations += 1

    def acknowledge(self) -> None:
        """Operator acceptance of a sticky degradation (e.g. data loss).

        Returns the monitor to ``HEALTHY``; refuses to resurrect a
        ``FAILED`` runtime (recover from disk instead).
        """
        if self.state is HealthState.FAILED:
            raise DegradedError(
                self.state,
                self.cause or "failed",
                "a failed runtime cannot be acknowledged back to health; "
                "recover from the on-disk state instead",
            )
        self._heal()

    def _heal(self) -> None:
        self.state = HealthState.HEALTHY
        self.cause = None
        self.detail = None
        self.recoverable = True
        self.heals += 1
        self._probe_streak = 0

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #

    def check_writable(self) -> None:
        """Gate every write; raises :class:`DegradedError` when refused.

        While degraded for a recoverable cause this is also the healing
        engine: every ``probe_interval``-th rejection runs the probe and
        ``heal_after`` consecutive successes re-enter ``HEALTHY`` —
        in which case the *current* write proceeds.
        """
        if self.state is HealthState.HEALTHY:
            return
        if self.state is HealthState.DEGRADED_READONLY and self.recoverable:
            self._rejections_since_probe += 1
            if self._rejections_since_probe >= self.probe_interval:
                self._rejections_since_probe = 0
                if self.probe():
                    self._probe_streak += 1
                    if self._probe_streak >= self.heal_after:
                        self._heal()
                        return  # healed: this write proceeds
                else:
                    self._probe_streak = 0
        self.rejected_writes += 1
        raise DegradedError(
            self.state,
            self.cause or "unknown",
            self.detail or "no detail recorded",
        )

    def check_readable(self) -> None:
        """Gate queries: only ``FAILED`` refuses reads."""
        if self.state is HealthState.FAILED:
            raise DegradedError(
                self.state,
                self.cause or "unknown",
                self.detail or "no detail recorded",
            )

    def probe(self) -> bool:
        """Run the durability probe once (also callable by operators)."""
        self.probes_run += 1
        if self._probe is not None:
            return bool(self._probe())
        return _probe_directory(self.directory)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def note_checkpoint(self) -> None:
        """Record a successful checkpoint (feeds checkpoint-age)."""
        self._last_checkpoint_at = self._clock()

    def note_quarantine(self, segments: int, checkpoints: int = 0) -> None:
        """Record fsck quarantine counts for :meth:`snapshot`."""
        self.quarantined_segments += segments
        self.quarantined_checkpoints += checkpoints

    def checkpoint_age(self) -> float | None:
        """Seconds since the last successful checkpoint (``None`` before
        the first one)."""
        if self._last_checkpoint_at is None:
            return None
        return self._clock() - self._last_checkpoint_at

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of the monitor (the daemon's health endpoint)."""
        return {
            "state": self.state.value,
            "cause": self.cause,
            "detail": self.detail,
            "recoverable": self.recoverable,
            "rejected_writes": self.rejected_writes,
            "degradations": self.degradations,
            "heals": self.heals,
            "probes_run": self.probes_run,
            "quarantined_segments": self.quarantined_segments,
            "quarantined_checkpoints": self.quarantined_checkpoints,
            "checkpoint_age_s": self.checkpoint_age(),
        }
