"""Fault-tolerant ingestion runtime.

A persistent sketch's promise — answer queries about *any* past window —
is only as good as its history's durability: a crash mid-ingest that
loses or corrupts the archive silently falsifies every answer about the
lost span.  This package wraps a :class:`~repro.store.SketchStore` in a
crash-safe ingestion loop:

* :class:`~repro.runtime.runtime.IngestRuntime` — write-ahead logging,
  periodic atomic checkpoints, exactly-once recovery
  (:meth:`~repro.runtime.runtime.IngestRuntime.recover`);
* :class:`~repro.runtime.policies.IngestPolicy` — explicit handling of
  malformed and late records (``raise`` / ``skip`` / ``quarantine`` to a
  dead-letter file) plus bounded retry-with-backoff for snapshot I/O;
* :class:`~repro.runtime.faults.FaultPlan` — deterministic fault
  injection (torn writes, transient ``OSError``, simulated crashes,
  worker kills/hangs, at-rest corruption) driving the crash-recovery
  and chaos-matrix property tests;
* :func:`~repro.runtime.fsck.run_fsck` — the durability scrubber behind
  ``repro fsck``: re-verifies every WAL frame and checkpoint, classifies
  damage (torn tail / corrupt / orphaned), quarantines what replay
  cannot use, and reports any acknowledged-record loss explicitly;
* :class:`~repro.runtime.health.HealthMonitor` — degraded-mode
  supervision: ``HEALTHY -> DEGRADED_READONLY -> FAILED``, typed write
  rejection (:class:`~repro.runtime.health.DegradedError`), and
  hysteresis-based re-probing back to health.

See ``docs/robustness.md`` for the on-disk formats, the recovery
semantics and the failure-mode matrix, and
``tests/test_runtime_recovery.py`` / ``tests/test_chaos_matrix.py`` for
the kill-and-recover property tests the design is held to.
"""

from __future__ import annotations

from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.runtime.fsck import FsckReport, run_fsck
from repro.runtime.health import DegradedError, HealthMonitor, HealthState
from repro.runtime.policies import (
    DeadLetterFile,
    IngestPolicy,
    IngestStats,
    LateRecordError,
    MalformedRecordError,
    SnapshotRetryError,
)
from repro.runtime.runtime import IngestRuntime, RecoveryError
from repro.runtime.wal import WalCorruption, WriteAheadLog

__all__ = [
    "IngestRuntime",
    "IngestPolicy",
    "IngestStats",
    "FaultPlan",
    "SimulatedCrash",
    "WriteAheadLog",
    "WalCorruption",
    "DeadLetterFile",
    "MalformedRecordError",
    "LateRecordError",
    "SnapshotRetryError",
    "RecoveryError",
    "FsckReport",
    "run_fsck",
    "DegradedError",
    "HealthMonitor",
    "HealthState",
]
