"""Deterministic fault injection for the ingestion runtime.

Crash-safety claims are worthless untested, and crashes found by chance
are unreproducible.  A :class:`FaultPlan` scripts *exactly* where the
runtime fails: at the Nth WAL record (before durability, torn mid-write,
or after durability), at the Nth checkpoint (transient ``OSError`` for
the retry path, or a crash between snapshot commit and pointer flip).
Because every trigger is a plain counter threshold, a test can enumerate
every fault point of a given workload and assert recovery at each one —
the crash-recovery property test in ``tests/test_runtime_recovery.py``.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`:
a simulated power cut must not be swallowed by ``except Exception`` /
``except OSError`` handlers (notably the snapshot retry loop), exactly
as a real ``kill -9`` would not be.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SimulatedCrash(BaseException):
    """The process 'dies' here; only the test harness may catch this."""


@dataclass
class FaultPlan:
    """Scripted failures, keyed by 1-based record / checkpoint ordinals.

    Attributes
    ----------
    crash_before_record:
        Crash when ingesting the Nth record, before anything reaches the
        WAL (the record is lost — the caller never got an acknowledgment).
    torn_write_at_record:
        Crash while appending the Nth record to the WAL, after roughly
        half its bytes hit the file (a torn write recovery must discard).
    crash_after_record:
        Crash right after the Nth record is durable in the WAL but before
        it is applied to the in-memory store (recovery must replay it).
    io_error_at_checkpoint:
        Raise ``OSError`` at the start of the Nth checkpoint attempt,
        ``io_error_count`` consecutive times (exercises retry/backoff).
        With ``io_error_enospc`` the error carries ``errno.ENOSPC`` (a
        full disk — the canonical degraded-mode trigger).
    crash_at_checkpoint:
        Crash during the Nth checkpoint, after the snapshot directory is
        written but before the ``CHECKPOINT`` pointer commits (recovery
        must ignore the orphan snapshot and use the previous one).
    truncate_snapshot_at_checkpoint:
        Let the Nth checkpoint commit, then corrupt its archives by
        truncation *and crash* (recovery must detect the damage and fall
        back to the previous checkpoint + a longer WAL replay).
    pool_kill_worker / pool_kill_at_batch:
        ``SIGKILL`` worker ``pool_kill_worker`` just before the pool
        dispatches its Nth ``feed`` (dead-worker detection + respawn).
    pool_hang_worker / pool_hang_at_batch / pool_hang_seconds:
        Make that worker sleep without replying at the Nth ``feed``
        (reply-deadline detection; pair with
        ``pool_reply_deadline_s`` so tests don't wait out the default).
    pool_reply_deadline_s:
        Override the pool's per-reply deadline while this plan is
        installed (see :func:`repro.parallel.pool.pool_faults`).
    pool_fail_respawns:
        Force the first N respawn attempts to fail (exercises the
        capped backoff and, when it exceeds the respawn budget, the
        inline serial fallback).
    flip_byte_in_segment / flip_byte_offset:
        At-rest corruption (:meth:`apply_at_rest`): XOR one byte at
        ``flip_byte_offset`` of the Nth WAL segment (1-based, oldest
        first; negative offsets index from the end of the file).
    truncate_checkpoint_at_rest:
        At-rest corruption: truncate every archive of the Nth checkpoint
        directory (1-based, oldest first) to half its size.
    delete_checkpoint_at_rest:
        At-rest corruption: remove the Nth checkpoint directory.
    delete_pointer_at_rest / corrupt_pointer_at_rest:
        At-rest corruption: remove, or overwrite with garbage, the
        ``CHECKPOINT`` pointer file.
    """

    crash_before_record: int | None = None
    torn_write_at_record: int | None = None
    crash_after_record: int | None = None
    io_error_at_checkpoint: int | None = None
    io_error_count: int = 1
    io_error_enospc: bool = False
    crash_at_checkpoint: int | None = None
    truncate_snapshot_at_checkpoint: int | None = None

    pool_kill_worker: int | None = None
    pool_kill_at_batch: int | None = None
    pool_hang_worker: int | None = None
    pool_hang_at_batch: int | None = None
    pool_hang_seconds: float = 3600.0
    pool_reply_deadline_s: float | None = None
    pool_fail_respawns: int = 0

    flip_byte_in_segment: int | None = None
    flip_byte_offset: int = 0
    truncate_checkpoint_at_rest: int | None = None
    delete_checkpoint_at_rest: int | None = None
    delete_pointer_at_rest: bool = False
    corrupt_pointer_at_rest: bool = False

    records_seen: int = field(default=0, init=False)
    checkpoints_seen: int = field(default=0, init=False)
    pool_batches_seen: int = field(default=0, init=False)
    _io_errors_raised: int = field(default=0, init=False)
    _respawns_failed: int = field(default=0, init=False)

    # ------------------------------------------------------------------ #
    # Record-path hooks (called by the runtime / WAL)
    # ------------------------------------------------------------------ #

    def next_record(self) -> int:
        """Advance the record ordinal; crash if scripted pre-WAL."""
        self.records_seen += 1
        if self.records_seen == self.crash_before_record:
            raise SimulatedCrash(
                f"scripted crash before record {self.records_seen}"
            )
        return self.records_seen

    def tear_this_record(self) -> bool:
        """Whether the current record's WAL append should be torn."""
        return self.records_seen == self.torn_write_at_record

    def after_record_durable(self) -> None:
        """Crash hook between WAL durability and store application."""
        if self.records_seen == self.crash_after_record:
            raise SimulatedCrash(
                f"scripted crash after record {self.records_seen} "
                "reached the WAL"
            )

    def after_batch_durable(self, first_record: int) -> None:
        """Batch analogue of :meth:`after_record_durable`.

        A batch becomes durable at its single trailing fsync, so a
        post-durability crash scripted for *any* record of the batch
        fires there — records after the scripted ordinal are already in
        the WAL (and will be replayed), which is the semantic difference
        batch framing introduces.
        """
        if self.crash_after_record is None:
            return
        if first_record <= self.crash_after_record <= self.records_seen:
            raise SimulatedCrash(
                f"scripted crash after record {self.crash_after_record} "
                "reached the WAL (batch fsync)"
            )

    # ------------------------------------------------------------------ #
    # Checkpoint-path hooks
    # ------------------------------------------------------------------ #

    def next_checkpoint(self) -> int:
        """Advance the checkpoint ordinal (one per *attempted* snapshot)."""
        self.checkpoints_seen += 1
        return self.checkpoints_seen

    def before_snapshot(self) -> None:
        """Transient-IO hook at the start of a snapshot attempt."""
        if (
            self.checkpoints_seen == self.io_error_at_checkpoint
            and self._io_errors_raised < self.io_error_count
        ):
            self._io_errors_raised += 1
            message = (
                f"scripted transient IO error at checkpoint "
                f"{self.checkpoints_seen} "
                f"(attempt {self._io_errors_raised}/{self.io_error_count})"
            )
            if self.io_error_enospc:
                import errno

                raise OSError(errno.ENOSPC, message)
            raise OSError(message)

    def before_pointer_commit(self) -> None:
        """Crash hook between snapshot write and pointer commit."""
        if self.checkpoints_seen == self.crash_at_checkpoint:
            raise SimulatedCrash(
                f"scripted crash mid-checkpoint {self.checkpoints_seen} "
                "(snapshot written, pointer not committed)"
            )

    def corrupt_committed_snapshot(self) -> bool:
        """Whether to truncate the just-committed snapshot and crash."""
        return self.checkpoints_seen == self.truncate_snapshot_at_checkpoint

    # ------------------------------------------------------------------ #
    # Worker-pool hooks (called by repro.parallel.pool when installed
    # via pool_faults(); duck-typed there to avoid an import cycle)
    # ------------------------------------------------------------------ #

    def pool_feed_actions(self) -> list[tuple[int, str, float]]:
        """Advance the pool-batch ordinal; scripted ``(worker, action,
        arg)`` tuples for this ``feed`` (action in ``{"kill", "hang"}``)."""
        self.pool_batches_seen += 1
        actions: list[tuple[int, str, float]] = []
        if (
            self.pool_kill_worker is not None
            and self.pool_batches_seen == self.pool_kill_at_batch
        ):
            actions.append((self.pool_kill_worker, "kill", 0.0))
        if (
            self.pool_hang_worker is not None
            and self.pool_batches_seen == self.pool_hang_at_batch
        ):
            actions.append(
                (self.pool_hang_worker, "hang", self.pool_hang_seconds)
            )
        return actions

    def pool_respawn_should_fail(self) -> bool:
        """Whether the next worker respawn attempt is scripted to fail."""
        if self._respawns_failed < self.pool_fail_respawns:
            self._respawns_failed += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # At-rest corruption (applied to a closed runtime directory)
    # ------------------------------------------------------------------ #

    def apply_at_rest(self, directory) -> list[str]:
        """Damage a *closed* runtime directory as scripted; returns a
        description of each action (for chaos-test assertions).

        This is the media-failure half of the plan: bit-rot inside a
        sealed WAL segment, a truncated or vanished checkpoint, a lost
        pointer — the damage :func:`repro.runtime.fsck.run_fsck` exists
        to detect.  Unlike the crash hooks, these mutate files directly
        rather than interrupting a live runtime.
        """
        from pathlib import Path

        directory = Path(directory)
        actions: list[str] = []
        if self.flip_byte_in_segment is not None:
            segments = sorted((directory / "wal").glob("segment-*.wal"))
            path = segments[self.flip_byte_in_segment - 1]
            data = bytearray(path.read_bytes())
            offset = self.flip_byte_offset
            if offset < 0:
                offset += len(data)
            offset = max(0, min(offset, len(data) - 1))
            data[offset] ^= 0xFF
            path.write_bytes(bytes(data))  # sketchlint: disable=SL009 — corruption injection: the non-atomic in-place write IS the fault
            actions.append(
                f"flipped byte {offset} of {path.name}"
            )
        for ordinal, remove in (
            (self.truncate_checkpoint_at_rest, False),
            (self.delete_checkpoint_at_rest, True),
        ):
            if ordinal is None:
                continue
            checkpoints = sorted((directory / "checkpoints").glob("ckpt-*"))
            target = checkpoints[ordinal - 1]
            if remove:
                import shutil

                shutil.rmtree(target)
                actions.append(f"deleted checkpoint {target.name}")
            else:
                for archive in sorted(target.glob("*.json.gz")):
                    blob = archive.read_bytes()
                    archive.write_bytes(blob[: len(blob) // 2])  # sketchlint: disable=SL009 — corruption injection: the non-atomic in-place write IS the fault
                actions.append(f"truncated archives of {target.name}")
        pointer = directory / "CHECKPOINT"
        if self.delete_pointer_at_rest:
            pointer.unlink(missing_ok=True)
            actions.append("deleted CHECKPOINT pointer")
        if self.corrupt_pointer_at_rest:
            pointer.write_text("{ not json", encoding="utf-8")  # sketchlint: disable=SL009 — corruption injection: the non-atomic in-place write IS the fault
            actions.append("corrupted CHECKPOINT pointer")
        return actions
