"""Deterministic fault injection for the ingestion runtime.

Crash-safety claims are worthless untested, and crashes found by chance
are unreproducible.  A :class:`FaultPlan` scripts *exactly* where the
runtime fails: at the Nth WAL record (before durability, torn mid-write,
or after durability), at the Nth checkpoint (transient ``OSError`` for
the retry path, or a crash between snapshot commit and pointer flip).
Because every trigger is a plain counter threshold, a test can enumerate
every fault point of a given workload and assert recovery at each one —
the crash-recovery property test in ``tests/test_runtime_recovery.py``.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`:
a simulated power cut must not be swallowed by ``except Exception`` /
``except OSError`` handlers (notably the snapshot retry loop), exactly
as a real ``kill -9`` would not be.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SimulatedCrash(BaseException):
    """The process 'dies' here; only the test harness may catch this."""


@dataclass
class FaultPlan:
    """Scripted failures, keyed by 1-based record / checkpoint ordinals.

    Attributes
    ----------
    crash_before_record:
        Crash when ingesting the Nth record, before anything reaches the
        WAL (the record is lost — the caller never got an acknowledgment).
    torn_write_at_record:
        Crash while appending the Nth record to the WAL, after roughly
        half its bytes hit the file (a torn write recovery must discard).
    crash_after_record:
        Crash right after the Nth record is durable in the WAL but before
        it is applied to the in-memory store (recovery must replay it).
    io_error_at_checkpoint:
        Raise ``OSError`` at the start of the Nth checkpoint attempt,
        ``io_error_count`` consecutive times (exercises retry/backoff).
    crash_at_checkpoint:
        Crash during the Nth checkpoint, after the snapshot directory is
        written but before the ``CHECKPOINT`` pointer commits (recovery
        must ignore the orphan snapshot and use the previous one).
    truncate_snapshot_at_checkpoint:
        Let the Nth checkpoint commit, then corrupt its archives by
        truncation *and crash* (recovery must detect the damage and fall
        back to the previous checkpoint + a longer WAL replay).
    """

    crash_before_record: int | None = None
    torn_write_at_record: int | None = None
    crash_after_record: int | None = None
    io_error_at_checkpoint: int | None = None
    io_error_count: int = 1
    crash_at_checkpoint: int | None = None
    truncate_snapshot_at_checkpoint: int | None = None

    records_seen: int = field(default=0, init=False)
    checkpoints_seen: int = field(default=0, init=False)
    _io_errors_raised: int = field(default=0, init=False)

    # ------------------------------------------------------------------ #
    # Record-path hooks (called by the runtime / WAL)
    # ------------------------------------------------------------------ #

    def next_record(self) -> int:
        """Advance the record ordinal; crash if scripted pre-WAL."""
        self.records_seen += 1
        if self.records_seen == self.crash_before_record:
            raise SimulatedCrash(
                f"scripted crash before record {self.records_seen}"
            )
        return self.records_seen

    def tear_this_record(self) -> bool:
        """Whether the current record's WAL append should be torn."""
        return self.records_seen == self.torn_write_at_record

    def after_record_durable(self) -> None:
        """Crash hook between WAL durability and store application."""
        if self.records_seen == self.crash_after_record:
            raise SimulatedCrash(
                f"scripted crash after record {self.records_seen} "
                "reached the WAL"
            )

    def after_batch_durable(self, first_record: int) -> None:
        """Batch analogue of :meth:`after_record_durable`.

        A batch becomes durable at its single trailing fsync, so a
        post-durability crash scripted for *any* record of the batch
        fires there — records after the scripted ordinal are already in
        the WAL (and will be replayed), which is the semantic difference
        batch framing introduces.
        """
        if self.crash_after_record is None:
            return
        if first_record <= self.crash_after_record <= self.records_seen:
            raise SimulatedCrash(
                f"scripted crash after record {self.crash_after_record} "
                "reached the WAL (batch fsync)"
            )

    # ------------------------------------------------------------------ #
    # Checkpoint-path hooks
    # ------------------------------------------------------------------ #

    def next_checkpoint(self) -> int:
        """Advance the checkpoint ordinal (one per *attempted* snapshot)."""
        self.checkpoints_seen += 1
        return self.checkpoints_seen

    def before_snapshot(self) -> None:
        """Transient-IO hook at the start of a snapshot attempt."""
        if (
            self.checkpoints_seen == self.io_error_at_checkpoint
            and self._io_errors_raised < self.io_error_count
        ):
            self._io_errors_raised += 1
            raise OSError(
                f"scripted transient IO error at checkpoint "
                f"{self.checkpoints_seen} "
                f"(attempt {self._io_errors_raised}/{self.io_error_count})"
            )

    def before_pointer_commit(self) -> None:
        """Crash hook between snapshot write and pointer commit."""
        if self.checkpoints_seen == self.crash_at_checkpoint:
            raise SimulatedCrash(
                f"scripted crash mid-checkpoint {self.checkpoints_seen} "
                "(snapshot written, pointer not committed)"
            )

    def corrupt_committed_snapshot(self) -> bool:
        """Whether to truncate the just-committed snapshot and crash."""
        return self.checkpoints_seen == self.truncate_snapshot_at_checkpoint
