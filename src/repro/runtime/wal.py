"""Write-ahead log for sketch ingestion.

Layout: a directory of append-only segment files, one line per record::

    wal/
      segment-000000000001.wal     # records 1..N   (sealed at checkpoint)
      segment-0000000000N1.wal     # records N+1..  (active)

Segment names carry the sequence number of their first record; a new
segment starts at every checkpoint (so fully-covered segments can be
pruned) and at every recovery (so a torn tail is never appended onto).

Each line frames one record with a CRC32 over the JSON body::

    8f1c2a07 {"seq":17,"stream":"urls","item":3,"count":1,"time":17}\n

Torn writes are expected, not exceptional: a crash mid-append leaves a
partial final line whose CRC cannot match.  Replay therefore *drops* a
damaged trailing line (the record was never acknowledged, so dropping
it is correct exactly-once behaviour) but treats damage followed by
more valid records — or any sequence gap — as real corruption and
raises :class:`WalCorruption` rather than silently skipping history.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import IO, Any, Iterator

from repro.runtime.faults import FaultPlan, SimulatedCrash

_SEGMENT_RE = re.compile(r"^segment-(\d{12})\.wal$")


class WalCorruption(RuntimeError):
    """The WAL is damaged beyond the benign torn-tail case."""


def _encode_line(record: dict[str, Any]) -> str:
    body = json.dumps(record, separators=(",", ":"), sort_keys=True)
    return f"{zlib.crc32(body.encode()):08x} {body}\n"


def _decode_line(line: str) -> dict[str, Any] | None:
    """Parse one framed line; ``None`` when damaged (torn/corrupt)."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_hex, body = line[:8], line[9:].rstrip("\n")
    try:
        if int(crc_hex, 16) != zlib.crc32(body.encode()):
            return None
        document = json.loads(body)
    except ValueError:
        return None
    if not isinstance(document, dict) or "seq" not in document:
        return None
    return document


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated record log.

    Parameters
    ----------
    directory:
        The ``wal/`` directory (created if missing).
    next_seq:
        Sequence number the next appended record receives.  A fresh
        runtime starts at 1; recovery resumes at ``applied_seq + 1``.
    faults:
        Optional :class:`FaultPlan`; consulted per append for scripted
        torn writes.
    """

    def __init__(
        self,
        directory: str | Path,
        next_seq: int = 1,
        faults: FaultPlan | None = None,
    ) -> None:
        if next_seq < 1:
            raise ValueError(f"next_seq must be >= 1, got {next_seq}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.next_seq = next_seq
        self.faults = faults
        self._handle: IO[str] | None = None

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def _active_handle(self) -> IO[str]:
        if self._handle is None:
            path = self.directory / f"segment-{self.next_seq:012d}.wal"
            self._handle = open(path, "a", encoding="utf-8")  # sketchlint: disable=SL012 — the WAL is the durability mechanism: fsync-per-append plus recovery-time torn-tail repair
        return self._handle

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The record dict must not contain ``seq`` (the log owns it).  The
        append is acknowledged only after ``fsync``; a scripted torn
        write flushes a partial line and then simulates a crash.
        """
        seq = self.next_seq
        line = _encode_line({"seq": seq, **record})
        handle = self._active_handle()
        if self.faults is not None and self.faults.tear_this_record():
            handle.write(line[: max(1, len(line) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            raise SimulatedCrash(f"scripted torn WAL write at seq {seq}")
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        self.next_seq = seq + 1
        return seq

    def append_many(self, records: list[dict[str, Any]]) -> list[int]:
        """Durably append a batch of records with ONE flush + fsync.

        Framing stays record-granular — one CRC'd line per record,
        byte-identical to what :meth:`append` writes — so replay and
        torn-tail repair are unchanged.  Scripted faults keep their
        per-record ordinals: a crash or torn write at the k-th record
        first makes the batch's earlier complete lines durable, which is
        exactly the prefix a real crash mid-batch could leave on disk
        (none of the batch was acknowledged, so recovery replaying that
        prefix is still exactly-once).
        """
        if not records:
            return []
        handle = self._active_handle()
        seqs: list[int] = []
        seq = self.next_seq
        for record in records:
            line = _encode_line({"seq": seq, **record})
            if self.faults is not None:
                try:
                    self.faults.next_record()
                except SimulatedCrash:
                    handle.flush()
                    os.fsync(handle.fileno())
                    self.next_seq = seq
                    raise
                if self.faults.tear_this_record():
                    handle.write(line[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    self.next_seq = seq
                    raise SimulatedCrash(
                        f"scripted torn WAL write at seq {seq}"
                    )
            handle.write(line)
            seqs.append(seq)
            seq += 1
        handle.flush()
        os.fsync(handle.fileno())
        self.next_seq = seq
        return seqs

    def rotate(self) -> None:
        """Seal the active segment; the next append opens a new one."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Close the active segment handle (idempotent)."""
        self.rotate()

    # ------------------------------------------------------------------ #
    # Reading / maintenance
    # ------------------------------------------------------------------ #

    def segments(self) -> list[tuple[int, Path]]:
        """``(start_seq, path)`` of every segment, in sequence order."""
        found = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def prune(self, covered_seq: int) -> list[Path]:
        """Delete segments whose records are all ``<= covered_seq``.

        A segment is removable when a later segment starts at or before
        ``covered_seq + 1`` (so no record above the floor lives in it).
        Returns the deleted paths.
        """
        segments = self.segments()
        removed = []
        for (start, path), (next_start, _next_path) in zip(
            segments, segments[1:]
        ):
            if start <= covered_seq and next_start <= covered_seq + 1:
                path.unlink()
                removed.append(path)
        return removed

    def replay(self, after_seq: int) -> Iterator[dict[str, Any]]:
        """Yield records with ``seq > after_seq``, oldest first.

        Verifies CRC framing and sequence contiguity.  A damaged line is
        tolerated only as the final non-empty line of its segment (a
        torn tail); anything else raises :class:`WalCorruption`.
        """
        expected = after_seq + 1
        for start, path in self.segments():
            lines = path.read_text(
                encoding="utf-8", errors="replace"
            ).splitlines()
            while lines and not lines[-1].strip():
                lines.pop()
            for index, line in enumerate(lines):
                record = _decode_line(line)
                if record is None:
                    if index == len(lines) - 1:
                        break  # torn tail: unacknowledged record, drop
                    raise WalCorruption(
                        f"{path}: damaged record at line {index + 1} "
                        "followed by valid records"
                    )
                seq = record["seq"]
                if seq <= after_seq:
                    continue
                if seq != expected:
                    raise WalCorruption(
                        f"{path}: sequence gap: expected {expected}, "
                        f"found {seq} at line {index + 1}"
                    )
                expected = seq + 1
                yield record
