"""Crash-safe ingestion runtime wrapping a :class:`SketchStore`.

Durability protocol (WAL-before-apply, snapshot-behind)::

    ingest(record)
      1. classify: malformed / late records go through the policy
      2. resolve the timestamp (auto-tick against the stream's clock)
      3. append to the write-ahead log, fsync     <- record is durable
      4. apply to the in-memory store
      5. every `checkpoint_every` records: checkpoint()

    checkpoint()
      a. save the store to checkpoints/ckpt-<covered_seq>/  (atomic:
         tmp dir + fsync + rename, retried with backoff on OSError)
      b. atomically rewrite the CHECKPOINT pointer file
      c. rotate the WAL and prune segments/checkpoints now redundant
         (the two newest checkpoints are retained, so one damaged
         snapshot never loses history)

:meth:`IngestRuntime.ingest_batch` is the chunked form of the same
protocol: accepted records are framed into the WAL with one fsync per
chunk (record-granular CRC lines, so replay is unchanged), applied
through the sketches' columnar batch planners, and chunks are cut at
checkpoint boundaries — the resulting state, statistics and checkpoint
cadence are bit-identical to per-record ingest; only acknowledgment
granularity coarsens to the batch.

A crash at *any* point leaves the directory recoverable:
:meth:`IngestRuntime.recover` loads the newest checkpoint that opens
cleanly (falling back on :class:`~repro.io.SerializationError`), repairs
torn WAL tails, replays the WAL tail *sequentially* (bit-identical for
deterministic trackers; the sampled AMS resumes from its serialized RNG
state, so an uninterrupted twin makes the same draws), re-validates the
timeline contracts, and resumes at ``applied_seq + 1``.  Records whose
WAL append never completed were never acknowledged, so re-sending them
after recovery is exactly-once, not a duplicate.
"""

from __future__ import annotations

import json
import re
import shutil
from itertools import groupby
from pathlib import Path
from typing import Any, Callable, Iterable, NoReturn

import numpy as np

from repro.analysis import contracts
from repro.io import SerializationError
from repro.io.atomic import atomic_write_text
from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.runtime.fsck import FsckReport, run_fsck
from repro.runtime.health import DegradedError, HealthMonitor
from repro.runtime.policies import (
    DeadLetterFile,
    IngestPolicy,
    IngestStats,
    LateRecordError,
    MalformedRecordError,
    SnapshotRetryError,
    run_with_retry,
)
from repro.runtime.wal import WriteAheadLog
from repro.store.store import SketchStore
from repro.streams.model import Stream
from repro.streams.records import IngestRecord, RecordError, parse_record

_CKPT_RE = re.compile(r"^ckpt-(\d{12})$")

POINTER_NAME = "CHECKPOINT"
DEADLETTER_NAME = "deadletter.jsonl"

#: Checkpoints retained after pruning; two, so recovery can always fall
#: back past one damaged snapshot.
RETAINED_CHECKPOINTS = 2


class RecoveryError(RuntimeError):
    """The runtime directory holds no recoverable checkpoint."""


class IngestRuntime:
    """Fault-tolerant ingestion for a multi-stream sketch store.

    Construct with :meth:`create` (fresh directory) or :meth:`recover`
    (after a crash or clean shutdown); the constructor itself is the
    shared plumbing and takes already-resolved state.
    """

    def __init__(
        self,
        directory: str | Path,
        store: SketchStore,
        *,
        policy: IngestPolicy | None = None,
        checkpoint_every: int = 1000,
        faults: FaultPlan | None = None,
        sleep: Callable[[float], None] | None = None,
        applied_seq: int = 0,
        workers: int | None = None,
        buffer_window: int | None = None,
        buffer_mode: str = "exact",
        probe: Callable[[], bool] | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.directory = Path(directory)
        self.store = store
        if workers is not None:
            store.set_workers(workers)
        if buffer_window is not None:
            # Execution-layer knob, like ``workers``: the update buffer
            # sits *below* the WAL (records are durable before they are
            # absorbed), so buffered state never outruns durability and
            # checkpoints flush it implicitly via the save drain.
            store.configure_buffer(window=buffer_window, mode=buffer_mode)
        self.policy = policy or IngestPolicy()
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self._sleep = sleep
        self.applied_seq = applied_seq
        self.stats = IngestStats()
        self.monitor = HealthMonitor(self.directory, probe=probe)
        self.fsck_report: FsckReport | None = None
        self.dead_letters = DeadLetterFile(self.directory / DEADLETTER_NAME)
        self.wal = WriteAheadLog(
            self.directory / "wal", next_seq=applied_seq + 1, faults=faults
        )
        self._clocks: dict[str, int] = {
            name: store._state(name).point_sketch.now for name in store.streams()
        }
        self._since_checkpoint = 0
        # (applied_seq, workers, view) of the last frozen_view() build.
        self._frozen_cache: tuple[int, int | None, Any] | None = None
        # (view, segment) of the last shared_frozen_view() publication.
        self._shared_cache: tuple[Any, Any] | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        directory: str | Path,
        store: SketchStore,
        *,
        policy: IngestPolicy | None = None,
        checkpoint_every: int = 1000,
        faults: FaultPlan | None = None,
        sleep: Callable[[float], None] | None = None,
        workers: int | None = None,
        buffer_window: int | None = None,
        buffer_mode: str = "exact",
        probe: Callable[[], bool] | None = None,
    ) -> "IngestRuntime":
        """Initialize a fresh runtime directory around ``store``.

        Takes a bootstrap checkpoint immediately (covering sequence 0),
        so a crash at any later instant — including before the first
        scheduled checkpoint — recovers to a well-defined state.  The
        bootstrap snapshot does not consult the fault plan: checkpoint
        ordinals in a :class:`FaultPlan` count post-creation checkpoints.
        """
        directory = Path(directory)
        if (directory / POINTER_NAME).exists() or (
            directory / "checkpoints"
        ).exists():
            raise FileExistsError(
                f"{directory} already contains an ingest runtime; "
                "use IngestRuntime.recover()"
            )
        directory.mkdir(parents=True, exist_ok=True)
        runtime = cls(
            directory,
            store,
            policy=policy,
            checkpoint_every=checkpoint_every,
            faults=faults,
            sleep=sleep,
            workers=workers,
            buffer_window=buffer_window,
            buffer_mode=buffer_mode,
            probe=probe,
        )
        runtime._checkpoint_inner(bootstrap=True)
        return runtime

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        policy: IngestPolicy | None = None,
        checkpoint_every: int = 1000,
        faults: FaultPlan | None = None,
        sleep: Callable[[float], None] | None = None,
        workers: int | None = None,
        buffer_window: int | None = None,
        buffer_mode: str = "exact",
        probe: Callable[[], bool] | None = None,
        fsck: bool = True,
        acknowledge_data_loss: bool = False,
        publish_shared: bool = False,
    ) -> "IngestRuntime":
        """Rebuild the runtime from its directory after a crash.

        With ``publish_shared=True`` the replayed state is published
        into a shared-memory segment before this returns (see
        :meth:`shared_frozen_view`): recovery targets shared state
        directly, so serving readers attach to the recovered view
        without a post-recovery copy.

        Runs the durability scrubber first (``fsck=True``, the default):
        :func:`repro.runtime.fsck.run_fsck` re-verifies every CRC frame
        and snapshot, truncates torn WAL tails, quarantines irreparably
        damaged segments/checkpoints, and rewrites a missing or corrupt
        ``CHECKPOINT`` pointer.  When the scrub proves *acknowledged*
        records were lost (mid-segment corruption past the best
        checkpoint), the recovered runtime comes up degraded read-only
        with the sticky cause ``wal-quarantined`` — queries serve, writes
        are refused until the loss is accepted explicitly
        (``acknowledge_data_loss=True`` here, or
        :meth:`acknowledge_data_loss` later).  The full report is kept on
        :attr:`fsck_report`.

        Then tries checkpoints newest-first, skipping any whose snapshot
        no longer opens cleanly (truncated archive, damaged manifest);
        the WAL tail past the chosen checkpoint is replayed sequentially.
        After replay the recovered store's timeline contracts are
        re-validated (regardless of ``REPRO_CONTRACTS``), so a corrupt
        recovery can never serve queries silently.
        """
        from repro.engine.replay import replay_records

        directory = Path(directory)
        report: FsckReport | None = None
        if fsck:
            report = run_fsck(directory, repair=True)
        # A crash mid-save can orphan a staging directory; it was never
        # committed, so recovery sweeps it.  (fsck already removed these
        # when it ran; this keeps ``fsck=False`` safe too.)
        if (directory / "checkpoints").is_dir():
            for staging in (directory / "checkpoints").glob(
                ".ckpt-*.saving.*"
            ):
                shutil.rmtree(staging, ignore_errors=True)
        candidates = cls._checkpoints(directory)
        if not candidates:
            raise RecoveryError(f"{directory}: no checkpoints to recover from")
        failures: list[str] = []
        store: SketchStore | None = None
        covered = 0
        for covered_seq, path in reversed(candidates):
            try:
                store = SketchStore.open(path)
                covered = covered_seq
                break
            except SerializationError as exc:
                failures.append(str(exc))
        if store is None:
            raise RecoveryError(
                f"{directory}: every checkpoint is damaged: "
                + "; ".join(failures)
            )

        wal = WriteAheadLog(directory / "wal", next_seq=covered + 1)
        cls._repair_torn_tails(wal)
        last_seq = covered

        # Replay in cadence-aligned slices, re-snapshotting at every
        # checkpoint boundary the tail crosses.  A replay tail only
        # crosses a boundary when the checkpoint that once covered it is
        # gone (fsck quarantined it, or snapshot I/O failed while
        # degraded) — and snapshotting finalizes open PLA runs in place,
        # so skipping the boundary would leave the recovered store
        # diverged from a never-crashed twin.  Saving here both restores
        # bit-identical answers and re-materialises the lost checkpoint
        # on disk: recovery heals the checkpoint chain itself.
        def slices() -> Iterable[list[dict[str, Any]]]:
            nonlocal last_seq
            batch: list[dict[str, Any]] = []
            for record in wal.replay(covered):
                last_seq = record["seq"]
                batch.append(record)
                if last_seq % checkpoint_every == 0:
                    yield batch
                    batch = []
            if batch:
                yield batch

        replayed = 0
        resnapped = covered
        for batch in slices():
            replayed += replay_records(store, iter(batch))
            if last_seq % checkpoint_every == 0 and last_seq > resnapped:
                target = directory / "checkpoints" / f"ckpt-{last_seq:012d}"
                if target.exists():  # damaged leftover (fsck=False path)
                    shutil.rmtree(target)
                store.save(target)
                resnapped = last_seq
        with contracts.enforced(True):
            contracts.check_store(store)

        runtime = cls(
            directory,
            store,
            policy=policy,
            checkpoint_every=checkpoint_every,
            faults=faults,
            sleep=sleep,
            applied_seq=last_seq,
            # WAL replay above ran serially and *unbuffered* on the
            # freshly-opened store; the pool width and buffer window only
            # affect batches ingested from here on.  Unbuffered replay is
            # deliberate: in exact mode flush boundaries are invisible so
            # buffering would change nothing, and in coalesce mode the WAL
            # holds the raw uncoalesced records — replaying them verbatim
            # restores a history at least as accurate as the crashed
            # run's, never a wider one.
            workers=workers,
            buffer_window=buffer_window,
            buffer_mode=buffer_mode,
            probe=probe,
        )
        runtime.stats.replayed = replayed
        runtime.fsck_report = report
        if report is not None:
            runtime.monitor.note_quarantine(
                sum(
                    1
                    for action in report.actions
                    if action.startswith("quarantined") and "segment" in action
                ),
                sum(
                    1
                    for action in report.actions
                    if action.startswith("quarantined") and "checkpoint" in action
                ),
            )
            if report.data_loss and not acknowledge_data_loss:
                runtime.monitor.degrade(
                    "wal-quarantined",
                    f"fsck quarantined damaged history: "
                    f"{report.lost_records} acknowledged records lost, "
                    f"{report.unknown_damaged_frames} frames undecodable; "
                    "call acknowledge_data_loss() to accept and resume "
                    "writes",
                    recoverable=False,
                )
        # Re-align the checkpoint schedule with an uninterrupted run:
        # snapshotting finalizes open PLA runs, so checkpoint *positions*
        # shape future segmentation.  Counting the replayed tail (and
        # immediately taking a checkpoint the crash pre-empted) keeps a
        # recovered run bit-identical to a never-crashed twin with the
        # same cadence.
        runtime._since_checkpoint = last_seq - resnapped
        if runtime._since_checkpoint >= checkpoint_every:
            runtime.checkpoint()
        if publish_shared:
            runtime.shared_frozen_view(workers=workers)
        return runtime

    def close(self) -> None:
        """Seal the WAL (no implicit checkpoint; state is already durable).

        Worker pools are drained tolerantly: a poisoned pool is simply
        released — its lost batch was durable in the WAL before dispatch,
        so the next :meth:`recover` replays it.  A published shared view
        segment is released too; attached readers stay valid until they
        detach, but nothing remains in ``/dev/shm``.
        """
        self.store.drain_workers(strict=False)
        self.wal.close()
        if self._shared_cache is not None:
            self._shared_cache[1].release()
            self._shared_cache = None

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def _classify(
        self, raw: object, clock_of: Callable[[str], int | None]
    ) -> tuple[str, Any, Any]:
        """Policy-free classification of one raw record.

        Returns ``("ok", record, resolved_time)`` for an acceptable
        record, or ``(kind, reason, wire)`` with ``kind`` in
        ``{"malformed", "late"}`` for the caller's :meth:`_reject`.
        ``clock_of`` supplies the stream clock to judge lateness
        against — the live clocks for scalar ingest, a view including
        not-yet-applied records for batch ingest.
        """
        if isinstance(raw, IngestRecord):
            record = raw
        elif isinstance(raw, RecordError):
            return ("malformed", str(raw), None)
        else:
            try:
                record = parse_record(raw)
            except RecordError as exc:
                return ("malformed", str(exc), raw)
        clock = clock_of(record.stream)
        if clock is None:
            return (
                "malformed",
                f"unknown stream {record.stream!r}",
                record.to_wire(),
            )
        if record.time is None:
            time = clock + 1
        elif record.time <= clock:
            return (
                "late",
                f"stream {record.stream!r} clock is at {clock}, "
                f"record time {record.time} is not past it",
                record.to_wire(),
            )
        else:
            time = record.time
        return ("ok", record, time)

    def ingest(self, raw: object) -> bool:
        """Ingest one raw record through the policy pipeline.

        Returns ``True`` when the record was applied, ``False`` when the
        active policy dropped or quarantined it.  Acknowledgment
        contract: once this method returns ``True`` the record is
        durable in the WAL; a record that never returned (crash) may be
        re-sent after recovery without double counting.

        While the runtime is degraded (see :meth:`health`) this raises
        :class:`~repro.runtime.health.DegradedError` without consuming
        the record — unless the degradation is recoverable and the
        periodic re-probe just proved the disk writable again, in which
        case the runtime heals and this very record proceeds.
        """
        self.monitor.check_writable()
        kind, record, time = self._classify(raw, self._clocks.get)
        if kind != "ok":
            return self._reject(kind, record, time)

        if self.faults is not None:
            self.faults.next_record()
        try:
            seq = self.wal.append(
                {
                    "stream": record.stream,
                    "item": record.item,
                    "count": record.count,
                    "time": time,
                }
            )
        except OSError as exc:
            self._degrade_for_wal_error(exc)
        if self.faults is not None:
            self.faults.after_record_durable()
        try:
            self.store.update(record.stream, record.item, record.count, time)
        except Exception:
            # The record is durable but the in-memory state may be
            # half-applied: live answers can no longer be trusted.
            self.monitor.fail(
                "apply-divergence",
                f"apply of durable record seq {seq} raised; in-memory "
                "state diverged from the WAL — recover from disk",
            )
            raise
        self._clocks[record.stream] = time
        self.applied_seq = seq
        self.stats.ingested += 1
        self._since_checkpoint += 1
        self._maybe_checkpoint()
        return True

    def ingest_batch(self, raws: Iterable[object]) -> int:
        """Ingest raw records through the policy pipeline, batch-framed.

        Semantically equal to calling :meth:`ingest` per record — the
        resulting store, clocks, statistics and checkpoint positions are
        bit-identical — but accepted records are framed into the WAL in
        chunks with a *single* flush + fsync each, and applied to the
        sketches through their columnar batch planners.

        Classification stays per-record (malformed / late / auto-tick,
        judged against a clock view that includes records accepted
        earlier in the batch), and chunks are cut at checkpoint
        boundaries so the checkpoint cadence — which shapes PLA
        segmentation via finalize-on-snapshot — matches scalar ingest
        exactly.  Acknowledgment is batch-level: when this method
        returns, every accepted record is durable.  Returns the number
        of applied records.

        Degraded-mode semantics match :meth:`ingest`: a degraded runtime
        refuses the whole batch up front with
        :class:`~repro.runtime.health.DegradedError`.
        """
        self.monitor.check_writable()
        pending: list[tuple[str, int, int, int]] = []
        pending_clocks: dict[str, int] = {}
        applied = 0

        def effective_clock(stream: str) -> int | None:
            got = pending_clocks.get(stream)
            return got if got is not None else self._clocks.get(stream)

        def flush() -> None:
            nonlocal applied
            if pending:
                applied += self._apply_chunk(pending)
                pending.clear()
                pending_clocks.clear()

        for raw in raws:
            kind, record, time = self._classify(raw, effective_clock)
            if kind != "ok":
                action = (
                    self.policy.on_malformed
                    if kind == "malformed"
                    else self.policy.on_late
                )
                if action == "raise":
                    # Scalar semantics: records preceding the offender
                    # are durable and applied before the raise.
                    flush()
                self._reject(kind, record, time)
                continue
            pending.append((record.stream, record.item, record.count, time))
            pending_clocks[record.stream] = time
            if self._since_checkpoint + len(pending) >= self.checkpoint_every:
                flush()  # the due checkpoint fires at the scalar position
        flush()
        return applied

    def _apply_chunk(self, pending: list[tuple[str, int, int, int]]) -> int:
        """WAL-append and apply one chunk of accepted records."""
        first_ordinal = (
            self.faults.records_seen + 1 if self.faults is not None else 0
        )
        try:
            seqs = self.wal.append_many(
                [
                    {"stream": stream, "item": item, "count": count, "time": time}
                    for stream, item, count, time in pending
                ]
            )
        except OSError as exc:
            self._degrade_for_wal_error(exc)
        if self.faults is not None:
            self.faults.after_batch_durable(first_ordinal)
        try:
            for name, run_iter in groupby(pending, key=lambda rec: rec[0]):
                run = list(run_iter)
                times = np.array([rec[3] for rec in run], dtype=np.int64)
                items = np.array([rec[1] for rec in run], dtype=np.int64)
                counts = np.array([rec[2] for rec in run], dtype=np.int64)
                self.store.update_batch(name, times, items, counts)
                self._clocks[name] = int(times[-1])
        except Exception:
            # The chunk is durable but partially applied: live answers
            # can no longer be trusted (recovery replays it cleanly).
            self.monitor.fail(
                "apply-divergence",
                f"apply of durable batch through seq {seqs[-1]} raised; "
                "in-memory state diverged from the WAL — recover from disk",
            )
            raise
        self.applied_seq = seqs[-1]
        self.stats.ingested += len(pending)
        self._since_checkpoint += len(pending)
        self._maybe_checkpoint()
        return len(pending)

    def ingest_stream(
        self, name: str, stream: Stream, batch_size: int | None = None
    ) -> int:
        """Ingest a materialized stream into stream ``name``; returns
        the number of applied records.

        With ``batch_size`` set, records are WAL-framed and applied in
        chunks of that many records (one fsync per chunk) via
        :meth:`ingest_batch`; the resulting state is bit-identical to
        the per-record default, only acknowledgment granularity changes.
        """
        if batch_size is not None:
            if batch_size < 1:
                raise ValueError(
                    f"batch_size must be >= 1, got {batch_size}"
                )
            applied = 0
            chunk: list[IngestRecord] = []
            for update in stream:
                chunk.append(
                    IngestRecord(
                        stream=name,
                        item=update.item,
                        count=update.count,
                        time=update.time,
                    )
                )
                if len(chunk) >= batch_size:
                    applied += self.ingest_batch(chunk)
                    chunk = []
            if chunk:
                applied += self.ingest_batch(chunk)
            return applied
        applied = 0
        for update in stream:
            if self.ingest(
                IngestRecord(
                    stream=name,
                    item=update.item,
                    count=update.count,
                    time=update.time,
                )
            ):
                applied += 1
        return applied

    def _reject(self, kind: str, reason: str, raw: object) -> bool:
        if kind == "malformed":
            self.stats.malformed += 1
            action = self.policy.on_malformed
            error: type[ValueError] = MalformedRecordError
        else:
            self.stats.late += 1
            action = self.policy.on_late
            error = LateRecordError
        if action == "raise":
            raise error(reason)
        if action == "quarantine":
            self.dead_letters.append(kind, reason, raw)
            self.stats.quarantined += 1
        return False

    def _degrade_for_wal_error(self, exc: OSError) -> NoReturn:
        """Flip read-only on a failed WAL append and surface the cause.

        The record/batch was *not* acknowledged (the append raised before
        durability), so rejecting it loses nothing; the periodic re-probe
        heals the runtime once the disk accepts durable writes again.
        """
        import errno as _errno

        cause = (
            "disk-full"
            if getattr(exc, "errno", None) == _errno.ENOSPC
            else "wal-io-error"
        )
        self.monitor.degrade(cause, f"WAL append failed: {exc}")
        raise DegradedError(self.monitor.state, cause, str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> Path:
        """Snapshot the store and advance the durable recovery point.

        When snapshot I/O keeps failing past the retry budget the
        runtime degrades to read-only (cause ``disk-full`` on ENOSPC,
        ``snapshot-retries-exhausted`` otherwise) and the
        :class:`~repro.runtime.policies.SnapshotRetryError` propagates.
        Already-ingested records stay durable in the WAL either way.
        """
        import errno as _errno

        try:
            return self._checkpoint_inner(bootstrap=False)
        except SnapshotRetryError as exc:
            root = exc.__cause__
            cause = (
                "disk-full"
                if getattr(root, "errno", None) == _errno.ENOSPC
                else "snapshot-retries-exhausted"
            )
            self.monitor.degrade(cause, str(exc))
            raise

    def _maybe_checkpoint(self) -> None:
        """Run a cadence-due checkpoint, absorbing snapshot exhaustion.

        Ingest callers reach here *after* their records are durable in
        the WAL: a failed checkpoint must not retract the acknowledgment,
        so the :class:`SnapshotRetryError` is absorbed — the runtime is
        now degraded read-only and the *next* write surfaces the typed
        :class:`~repro.runtime.health.DegradedError`.  The WAL keeps the
        un-snapshotted tail; recovery replays it.
        """
        if self._since_checkpoint < self.checkpoint_every:
            return
        try:
            self.checkpoint()
        except SnapshotRetryError:  # sketchlint: disable=SL016 — absorbed by design: checkpoint() already degraded the runtime, and the acked records stay durable in the WAL
            pass

    def _checkpoint_inner(self, bootstrap: bool) -> Path:
        faults = None if bootstrap else self.faults
        if faults is not None:
            faults.next_checkpoint()
        covered = self.applied_seq
        target = self.directory / "checkpoints" / f"ckpt-{covered:012d}"
        target.parent.mkdir(parents=True, exist_ok=True)

        def attempt() -> Path:
            if faults is not None:
                faults.before_snapshot()
            return self.store.save(target)

        run_with_retry(
            attempt,
            self.policy,
            self.stats,
            sleep=self._sleep,
            what=f"checkpoint covering seq {covered}",
        )
        if faults is not None:
            faults.before_pointer_commit()
        atomic_write_text(
            self.directory / POINTER_NAME,
            json.dumps(
                {
                    "format": "repro-runtime",
                    "version": 1,
                    "checkpoint": target.name,
                    "covered_seq": covered,
                },
                indent=2,
            ),
        )
        if faults is not None and faults.corrupt_committed_snapshot():
            self._truncate_snapshot(target)
            raise SimulatedCrash(
                f"scripted crash after corrupting snapshot {target.name}"
            )
        self.wal.rotate()
        self._prune(covered)
        self.stats.checkpoints += 1
        self._since_checkpoint = 0
        self.monitor.note_checkpoint()
        return target

    @staticmethod
    def _truncate_snapshot(target: Path) -> None:
        """Simulated media damage: cut every archive in half."""
        for archive in sorted(target.glob("*.json.gz")):
            data = archive.read_bytes()
            with open(archive, "wb") as handle:  # sketchlint: disable=SL012 — test-only fault injector: the torn write IS the point
                handle.write(data[: len(data) // 2])

    def _prune(self, covered: int) -> None:
        checkpoints = self._checkpoints(self.directory)
        retained = checkpoints[-RETAINED_CHECKPOINTS:]
        for _seq, path in checkpoints[:-RETAINED_CHECKPOINTS]:
            shutil.rmtree(path, ignore_errors=True)
        if retained:
            self.wal.prune(retained[0][0])

    @staticmethod
    def _checkpoints(directory: Path) -> list[tuple[int, Path]]:
        """``(covered_seq, path)`` of every checkpoint, oldest first."""
        root = directory / "checkpoints"
        if not root.is_dir():
            return []
        found = []
        for path in root.iterdir():
            match = _CKPT_RE.match(path.name)
            if match and path.is_dir():
                found.append((int(match.group(1)), path))
        return sorted(found)

    @staticmethod
    def _repair_torn_tails(wal: WriteAheadLog) -> None:
        """Truncate damaged trailing lines so appends never concatenate.

        A torn append leaves a partial, unterminated final line; writing
        a new record after it would fuse the two into garbage.  Repair
        rewrites each segment down to its valid prefix (the dropped
        record was never acknowledged, so nothing is lost).
        """
        from repro.runtime.wal import _decode_line

        for _start, path in wal.segments():
            raw = path.read_text(encoding="utf-8", errors="replace")
            lines = raw.splitlines(keepends=True)
            valid_bytes = 0
            for line in lines:
                if line.endswith("\n") and _decode_line(line) is not None:
                    valid_bytes += len(line.encode("utf-8"))
                else:
                    break
            if valid_bytes < len(raw.encode("utf-8")):
                with open(path, "r+b") as handle:  # sketchlint: disable=SL012 — recovery-time torn-tail repair truncates in place; only discards bytes already proven invalid
                    handle.truncate(valid_bytes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def clock(self, stream: str) -> int:
        """Current tick of ``stream`` (0 before any update)."""
        clock = self._clocks.get(stream)
        if clock is None:
            raise KeyError(f"unknown stream {stream!r}")
        return clock

    def health(self) -> dict[str, Any]:
        """Live health snapshot: state machine + durability lag.

        ``wal_lag`` is the number of durable records not yet covered by a
        checkpoint (what recovery would have to replay right now).
        """
        snapshot = self.monitor.snapshot()
        snapshot["applied_seq"] = self.applied_seq
        snapshot["wal_lag"] = self._since_checkpoint
        snapshot["stats"] = self.stats.as_dict()
        return snapshot

    def fsck(self) -> FsckReport:
        """Online durability scrub of this runtime's directory.

        Scan-only (never mutates; sealed segments and committed
        checkpoints are immutable, so scrubbing them while the runtime
        is live is safe).  Repair runs offline — ``repro fsck --repair``
        on a closed directory, or automatically inside :meth:`recover`.
        """
        return run_fsck(self.directory, repair=False)

    def acknowledge_data_loss(self) -> None:
        """Accept fsck-reported loss and return a degraded runtime to
        writable (see the sticky ``wal-quarantined`` cause on
        :meth:`recover`)."""
        self.monitor.acknowledge()

    def frozen_view(self, workers: int | None = None) -> Any:
        """Freeze every stream's point sketch into an immutable query
        view (:func:`repro.engine.frozen.freeze_store`).

        Serves even while the runtime is degraded read-only — that is
        the point of degraded mode — but a ``FAILED`` runtime refuses
        (its in-memory state is suspect).

        The view is memoized on ``applied_seq``: a repeat call with no
        intervening ingest returns the *same* object in O(1) instead of
        recompiling the whole store, so a periodic cutover tick (or a
        degraded runtime polled by its health endpoint) costs nothing
        while the store is quiet.  Any applied record invalidates the
        cache; so does asking for a different ``workers`` width.
        """
        from repro.engine.frozen import freeze_store

        self.monitor.check_readable()
        cached = self._frozen_cache
        if (
            cached is not None
            and cached[0] == self.applied_seq
            and cached[1] == workers
        ):
            return cached[2]
        view = freeze_store(self.store, workers=workers)
        self._frozen_cache = (self.applied_seq, workers, view)
        return view

    def shared_frozen_view(self, workers: int | None = None) -> Any:
        """Publish :meth:`frozen_view` into a shared-memory segment.

        Returns ``(view, segment)``.  Reader processes attach with
        :func:`repro.engine.frozen.attach_view` and query one physical
        copy of the columnar tables — the zero-copy serving path.  The
        runtime owns the segment: publishing a newer view releases the
        superseded segment (readers already attached stay valid until
        they detach, per POSIX), and :meth:`close` releases the last
        one.  Memoization piggybacks on :meth:`frozen_view`: while
        ``applied_seq`` is unchanged the same segment is returned, so a
        periodic cutover tick costs nothing.
        """
        from repro.engine.frozen import share_view

        view = self.frozen_view(workers=workers)
        cached = self._shared_cache
        if cached is not None and cached[0] is view and not cached[1].closed:
            return view, cached[1]
        if cached is not None:
            cached[1].release()
        segment = share_view(view)
        self._shared_cache = (view, segment)
        return view, segment

    @classmethod
    def open_checkpoint_shared(
        cls, directory: str | Path, *, workers: int | None = None
    ) -> tuple[int, Any, Any]:
        """Buffer-backed checkpoint load: newest checkpoint -> shared view.

        The fast path for read-only serving processes: instead of
        recovering a full runtime (WAL replay, contracts, worker pools),
        open the newest committed checkpoint under the existing
        atomic-write/fsck machinery, freeze it once, and publish the
        frozen view into a segment.  Returns ``(covered_seq, view,
        segment)``; the caller owns the segment.  Raises
        ``FileNotFoundError`` when the directory holds no checkpoint.
        """
        from repro.engine.frozen import freeze_store, share_view

        directory = Path(directory)
        checkpoints = cls._checkpoints(directory)
        if not checkpoints:
            raise FileNotFoundError(
                f"{directory} contains no committed checkpoints"
            )
        covered_seq, path = checkpoints[-1]
        store = SketchStore.open(path)
        view = freeze_store(store, workers=workers)
        segment = share_view(view)
        return covered_seq, view, segment

    def describe(self) -> dict[str, Any]:
        """Operator-facing summary (used by ``repro recover``)."""
        checkpoints = self._checkpoints(self.directory)
        quarantine = self.directory / "quarantine"
        return {
            "directory": str(self.directory),
            "streams": {
                name: self._clocks[name] for name in sorted(self._clocks)
            },
            "applied_seq": self.applied_seq,
            "checkpoints": [path.name for _seq, path in checkpoints],
            "wal_segments": [
                path.name for _seq, path in self.wal.segments()
            ],
            "dead_letters": self.dead_letters.count(),
            "stats": self.stats.as_dict(),
            "health": self.monitor.snapshot(),
            "quarantine": sorted(
                path.name for path in quarantine.iterdir()
            )
            if quarantine.is_dir()
            else [],
        }
