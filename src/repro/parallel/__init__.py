"""Multi-core parallel execution layer.

Row/shard/level-parallel ingestion over long-lived forked worker pools
(:class:`WorkerPool`) and one-shot read-only fan-out
(:func:`parallel_map`), with a deterministic in-process fallback when
``workers=1`` or the platform lacks ``fork``.  Parallel output is
bit-identical to serial for every sketch type — see ``docs/api.md``
("Parallel execution") for the determinism contract.
"""

from __future__ import annotations

from repro.parallel.errors import IngestError, WorkerUnavailable
from repro.parallel.pool import (
    WorkerHandler,
    WorkerPool,
    fork_available,
    install_pool_faults,
    parallel_map,
    pool_faults,
)

__all__ = [
    "IngestError",
    "WorkerHandler",
    "WorkerPool",
    "WorkerUnavailable",
    "fork_available",
    "install_pool_faults",
    "parallel_map",
    "pool_faults",
]
