"""Fork-based worker pools with task affinity.

Two execution primitives back the multi-core layer:

:class:`WorkerPool`
    Long-lived forked workers with *state ownership*: worker ``i`` of
    ``n`` owns a fixed partition of a sketch's independent state (hash
    rows, time shards, dyadic levels) for the life of the pool.  Each
    worker inherits the full sketch via fork (copy-on-write, nothing is
    pickled on the way in), applies every ``feed`` to its owned
    partition, and ships the partition state back only on ``collect`` —
    the merge-at-finalize/checkpoint model of the paper's independent-row
    observation.  A stock ``ProcessPoolExecutor`` cannot express this:
    its tasks land on arbitrary idle workers, while row ownership needs
    every batch's row-``r`` slice to reach the *same* process that holds
    row ``r``'s trackers.

:func:`parallel_map`
    One-shot fan-out for read-only work (frozen table construction,
    ``point_many`` slabs): ephemeral forked children evaluate a closure
    over an index-strided task partition and return results over a pipe.
    Falls back to an in-process loop when ``workers <= 1``, the platform
    lacks fork, or the task list is tiny — the deterministic fallback
    path, bit-identical by construction since the same function runs on
    the same inputs in the same order.

Neither primitive ever pickles closures or sketches *into* a worker
(fork inheritance carries them); only results cross the pipe.  A worker
that dies or raises surfaces as :class:`~repro.parallel.errors.IngestError`.
"""

from __future__ import annotations

import multiprocessing
import traceback
from multiprocessing.connection import Connection
from typing import Any, Callable, Protocol, Sequence

from repro.parallel.errors import IngestError

_JOIN_TIMEOUT_S = 10.0


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms  # sketchlint: disable=SL004 — capability probe, any failure means "no fork"
        return False


class WorkerHandler(Protocol):
    """What a sketch hands each forked worker (see ``_worker_handler``)."""

    def feed(self, payload: Any) -> None:
        """Apply one batch payload to the worker's owned partition."""

    def collect(self) -> Any:
        """Export the owned partition's state (pickled back to master)."""


def _worker_main(
    conn: Connection,
    handler_factory: Callable[[int, int], WorkerHandler],
    index: int,
    nworkers: int,
) -> None:
    """Command loop of one forked worker."""
    handler = handler_factory(index, nworkers)
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):  # master went away
            break
        if command == "exit":
            break
        try:
            if command == "feed":
                result = handler.feed(payload)
            elif command == "collect":
                result = handler.collect()
            else:
                raise ValueError(f"unknown worker command {command!r}")
        except BaseException:  # sketchlint: disable=SL004 — forwarded to master as an ("err", traceback) reply
            try:
                conn.send(("err", traceback.format_exc()))
            except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
                break
            continue
        try:
            conn.send(("ok", result))
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            break
    conn.close()


class WorkerPool:
    """``nworkers`` forked processes, each owning a state partition.

    ``handler_factory(index, nworkers)`` runs *inside* each forked child
    and returns the worker's handler; because the child is a fork of the
    master, the factory's closed-over sketch is the master's state at
    pool-creation time, shared copy-on-write.
    """

    def __init__(
        self,
        nworkers: int,
        handler_factory: Callable[[int, int], WorkerHandler],
    ) -> None:
        if nworkers < 2:
            raise ValueError(f"a worker pool needs >= 2 workers, got {nworkers}")
        if not fork_available():
            raise IngestError(
                "parallel execution needs the fork start method; "
                "use workers=1 on this platform"
            )
        ctx = multiprocessing.get_context("fork")
        self.nworkers = nworkers
        self._conns: list[Connection] = []
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._closed = False
        for index in range(nworkers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child, handler_factory, index, nworkers),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pids(self) -> list[int]:
        """Child process ids (test hooks and diagnostics)."""
        return [proc.pid or 0 for proc in self._procs]

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #

    def _fail(self, index: int, cause: BaseException | str) -> None:
        proc = self._procs[index]
        alive = proc.is_alive()
        code = proc.exitcode
        self.close(terminate=True)
        detail = cause if isinstance(cause, str) else type(cause).__name__
        raise IngestError(
            f"parallel worker {index} (pid {proc.pid}) "
            + (
                f"raised:\n{detail}"
                if isinstance(cause, str)
                else f"became unreachable ({detail}; alive={alive}, "
                f"exitcode={code})"
            )
        ) from (None if isinstance(cause, str) else cause)

    def _roundtrip(self, command: str, payloads: Sequence[Any]) -> list[Any]:
        """Send one command to every worker, gather every reply in order.

        All sends go out before any reply is awaited, so workers run
        concurrently; replies are drained in worker order (cheap — the
        slowest worker bounds the wall clock either way).
        """
        if self._closed:
            raise IngestError("worker pool is closed")
        for index, payload in enumerate(payloads):
            try:
                self._conns[index].send((command, payload))
            except (BrokenPipeError, OSError) as exc:
                self._fail(index, exc)
        results: list[Any] = []
        for index in range(self.nworkers):
            try:
                status, value = self._conns[index].recv()
            except (EOFError, OSError) as exc:
                self._fail(index, exc)
            if status != "ok":
                self._fail(index, str(value))
            results.append(value)
        return results

    def feed(self, payloads: Sequence[Any]) -> None:
        """Apply one per-worker payload list; blocks until all acked."""
        self._roundtrip("feed", payloads)

    def collect(self) -> list[Any]:
        """Export every worker's owned partition state, in worker order."""
        return self._roundtrip("collect", [None] * self.nworkers)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, terminate: bool = False) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not terminate:
            for conn in self._conns:
                try:
                    conn.send(("exit", None))
                except Exception:  # sketchlint: disable=SL004 — worker already dead; join below reaps it
                    pass
        for proc in self._procs:
            if terminate:
                proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=_JOIN_TIMEOUT_S)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # sketchlint: disable=SL004 — best-effort fd cleanup on shutdown
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(terminate=True)
        except Exception:  # sketchlint: disable=SL004 — finalizers must never raise
            pass


# --------------------------------------------------------------------- #
# One-shot read-only fan-out
# --------------------------------------------------------------------- #


def _map_child(
    conn: Connection,
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    index: int,
    nworkers: int,
) -> None:
    try:
        out = [fn(tasks[pos]) for pos in range(index, len(tasks), nworkers)]
    except BaseException:  # sketchlint: disable=SL004 — forwarded to master as an ("err", traceback) reply
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            pass
    else:
        try:
            conn.send(("ok", out))
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            pass
    finally:
        conn.close()


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    *,
    min_tasks: int = 2,
) -> list[Any]:
    """``[fn(t) for t in tasks]`` over forked children, order preserved.

    ``fn`` and ``tasks`` reach the children by fork inheritance (never
    pickled), so closures over big read-only state — frozen tables, live
    tracker dicts — cost nothing to ship; only each ``fn(t)`` result
    crosses a pipe.  Runs in-process (bit-identically) when ``workers``
    is 1, the platform lacks fork, or there are fewer than ``min_tasks``
    tasks.  ``fn`` must not mutate shared state: children are discarded,
    so only returned values survive.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) < max(2, min_tasks) or not fork_available():
        return [fn(task) for task in tasks]
    workers = min(workers, len(tasks))
    ctx = multiprocessing.get_context("fork")
    conns: list[Connection] = []
    procs: list[multiprocessing.process.BaseProcess] = []
    for index in range(workers):
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_map_child,
            args=(child, fn, tasks, index, workers),
            daemon=True,
        )
        proc.start()
        child.close()
        conns.append(parent)
        procs.append(proc)
    results: list[Any] = [None] * len(tasks)
    try:
        for index, conn in enumerate(conns):
            try:
                status, value = conn.recv()
            except (EOFError, OSError) as exc:
                raise IngestError(
                    f"parallel map worker {index} (pid {procs[index].pid}) "
                    f"died before returning results"
                ) from exc
            if status != "ok":
                raise IngestError(
                    f"parallel map worker {index} raised:\n{value}"
                )
            for pos, item in zip(
                range(index, len(tasks), workers), value
            ):
                results[pos] = item
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:  # sketchlint: disable=SL004 — best-effort fd cleanup on shutdown
                pass
        for proc in procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
    return results
