"""Fork-based worker pools with task affinity and self-healing.

Two execution primitives back the multi-core layer:

:class:`WorkerPool`
    Long-lived forked workers with *state ownership*: worker ``i`` of
    ``n`` owns a fixed partition of a sketch's independent state (hash
    rows, time shards, dyadic levels) for the life of the pool.  Each
    worker inherits the full sketch via fork (copy-on-write, nothing is
    pickled on the way in), applies every ``feed`` to its owned
    partition, and ships the partition state back only on ``collect`` —
    the merge-at-finalize/checkpoint model of the paper's independent-row
    observation.  A stock ``ProcessPoolExecutor`` cannot express this:
    its tasks land on arbitrary idle workers, while row ownership needs
    every batch's row-``r`` slice to reach the *same* process that holds
    row ``r``'s trackers.

:func:`parallel_map`
    One-shot fan-out for read-only work (frozen table construction,
    ``point_many`` slabs): ephemeral forked children evaluate a closure
    over an index-strided task partition and return results over a pipe.
    Falls back to an in-process loop when ``workers <= 1``, the platform
    lacks fork, or the task list is tiny.

Self-healing (the daemon-survivability contract)
------------------------------------------------
A long-lived service cannot afford PR 5's original semantics, where any
single worker death poisoned the whole pool and failed the batch.
:class:`WorkerPool` now detects a dead or hung worker (per-reply
deadlines + EOF), **respawns** it with capped exponential backoff, and
retries the failed batch *bit-identically*: the pool journals every
``feed`` payload since the last ``collect``, and a respawned worker — a
fresh fork of the master, whose partition state is exactly the
last-merged state — replays its slice of the journal before the retried
command.  This is bit-identical because payloads embed all randomness
(the sampled-AMS plan pre-draws its uniforms master-side *before*
dispatch) and the master's partition structures are never mutated
between merges.  When respawning keeps failing, the pool falls back to
running that worker's handler *inline* in the master process (the
partitions are disjoint, so mixing inline and forked workers is safe) —
the serial path, counted in :attr:`WorkerPool.serial_fallbacks`.  Only a
worker that *raises* twice (a deterministic handler bug, not a fault)
still poisons the pool with
:class:`~repro.parallel.errors.IngestError`.

Shared-memory transport (the zero-copy batch path)
--------------------------------------------------
When POSIX shared memory is available (see :mod:`repro.shm`), batches
no longer cross the worker pipes at all.  ``feed`` publishes each
worker's payload into a master-owned segment and sends only the segment
*name*; the worker attaches and reconstructs the payload as read-only
zero-copy views over the mapped buffer.  ``collect`` inverts the flow:
the worker writes its partition state into a segment it creates and
replies with the name; the master attaches, *adopts* the segment
(taking over unlink responsibility), and merges from writable views —
so the paper's merge-at-boundary model runs over one shared mapping
instead of a pickled copy per boundary.  Lifecycle is strict: feed
segments are unlinked by the master as soon as the batch is acked,
adopted collect segments are unlinked on adoption, and the self-healing
path sweeps ``/dev/shm`` for any segment created by a worker pid it
just discarded — a kill -9'd worker can never leak a segment.  Healing
replays always travel in-band (plain ``feed``), which keeps the replay
script independent of segment lifetime and bit-identical by the same
argument as before.  Everything degrades to the in-band pipe protocol
when shared memory is unavailable or disabled (``use_shm=False`` /
``REPRO_SHM=0``).

Fault injection reaches pools through :func:`pool_faults` /
:func:`install_pool_faults` — a module-level plan (duck-typed to avoid
importing :mod:`repro.runtime.faults` here) scripting worker kills,
hung replies, respawn failures and reply-deadline overrides.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import time
import traceback
from multiprocessing.connection import Connection
from typing import Any, Callable, Iterator, Protocol, Sequence

from repro import shm as _shm
from repro.parallel.errors import IngestError, WorkerUnavailable

_JOIN_TIMEOUT_S = 10.0

#: Grace window between SIGTERM and SIGKILL during forced shutdown.
#: Short on purpose: ``close(terminate=True)`` is already the impatient
#: path, so a worker ignoring SIGTERM gets seconds, not the full join
#: budget, before escalation.
_TERMINATE_GRACE_S = 2.0

#: Default per-reply deadline.  Generous on purpose: a false timeout is
#: harmless (the worker is respawned and the batch replayed to the same
#: bits, just slower), a hung daemon is not.
_DEFAULT_REPLY_DEADLINE_S = 600.0

#: Module-level scripted fault plan (see :func:`pool_faults`).
_pool_faults: Any | None = None


def install_pool_faults(plan: Any | None) -> None:
    """Install (or with ``None`` clear) the scripted pool fault plan.

    The plan is duck-typed — anything with ``pool_feed_actions()``,
    ``pool_respawn_should_fail()`` and a ``pool_reply_deadline_s``
    attribute works; in practice it is a
    :class:`repro.runtime.faults.FaultPlan`.  Module-level because pools
    are created deep inside sketches where tests cannot reach the
    constructor.
    """
    global _pool_faults
    _pool_faults = plan


@contextlib.contextmanager
def pool_faults(plan: Any) -> Iterator[None]:
    """Scoped :func:`install_pool_faults` (always uninstalls on exit)."""
    install_pool_faults(plan)
    try:
        yield
    finally:
        install_pool_faults(None)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms  # sketchlint: disable=SL004,SL016 — capability probe, any failure means "no fork"
        return False


class WorkerHandler(Protocol):
    """What a sketch hands each forked worker (see ``_worker_handler``)."""

    def feed(self, payload: Any) -> None:
        """Apply one batch payload to the worker's owned partition."""

    def collect(self) -> Any:
        """Export the owned partition's state (pickled back to master)."""


class _WorkerGone(Exception):
    """Internal: a worker died or missed its reply deadline (healable)."""


class _WorkerRaised(Exception):
    """Internal: a worker's handler raised (carries the traceback)."""


def _retry_deferred_closes(pending: list[_shm.ShmSegment]) -> None:
    """Close any attached segments whose views have since been dropped.

    A handler may retain zero-copy views of a batch after ``feed``
    returns; the mapping cannot close while they live, so it is parked
    here and retried between commands.  Segments that stay pinned are
    harmless: the master already unlinked the name, and the kernel frees
    the pages when this process exits.
    """
    pending[:] = [segment for segment in pending if not segment.close()]


def _worker_main(
    conn: Connection,
    handler_factory: Callable[[int, int], WorkerHandler],
    index: int,
    nworkers: int,
) -> None:
    """Command loop of one forked worker."""
    handler = handler_factory(index, nworkers)
    pending: list[_shm.ShmSegment] = []
    while True:
        _retry_deferred_closes(pending)
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):  # master went away
            break
        if command == "exit":
            break
        if command == "hang":  # scripted fault: sleep without replying
            time.sleep(float(payload))
            continue
        try:
            if command == "feed":
                reply = ("ok", handler.feed(payload))
            elif command == "feed_shm":
                batch, segment = _shm.read_attached(payload)
                try:
                    reply = ("ok", handler.feed(batch))
                finally:
                    del batch
                    if not segment.close():
                        pending.append(segment)
            elif command == "collect":
                reply = ("ok", handler.collect())
            elif command == "collect_shm":
                # State travels back through a segment this worker
                # creates; the master adopts (and unlinks) it on read.
                state_segment = _shm.write_object(handler.collect())
                state_segment.close()
                reply = ("shm", state_segment.name)
            else:
                raise ValueError(f"unknown worker command {command!r}")
        except BaseException:  # sketchlint: disable=SL004 — forwarded to master as an ("err", traceback) reply
            try:
                conn.send(("err", traceback.format_exc()))
            except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
                break
            continue
        try:
            conn.send(reply)
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            break
    _retry_deferred_closes(pending)
    conn.close()


class WorkerPool:
    """``nworkers`` forked processes, each owning a state partition.

    ``handler_factory(index, nworkers)`` runs *inside* each forked child
    and returns the worker's handler; because the child is a fork of the
    master, the factory's closed-over sketch is the master's state at
    pool-creation time, shared copy-on-write.  The factory is retained
    master-side for healing: a respawned worker is a fresh fork of the
    *current* master (= state as of the last merge), and an inline
    fallback runs the factory in the master process itself.

    Parameters
    ----------
    nworkers:
        Pool width (>= 2; width 1 is the serial path, no pool needed).
    handler_factory:
        Builds worker ``index``'s handler; must be safe to re-run (both
        in fresh forks and inline).
    reply_deadline_s:
        Per-reply deadline in seconds; ``None`` uses the module default.
        A missed deadline is treated as a dead worker (kill + respawn +
        bit-identical replay), never as a lost batch.
    max_respawns:
        Fresh-fork attempts per incident before falling back to running
        the worker inline (serially, in the master process).
    backoff_base, backoff_factor, backoff_cap:
        Exponential backoff between consecutive respawn attempts,
        capped per sleep.
    sleep:
        Injectable sleep for deterministic tests.
    use_shm:
        Route batches and collected state through shared-memory
        segments (zero-copy) instead of the worker pipes.  ``None``
        auto-detects: on when the platform has POSIX shared memory and
        ``REPRO_SHM`` is not ``"0"``.  Results are bit-identical either
        way; only the transport differs.
    """

    def __init__(
        self,
        nworkers: int,
        handler_factory: Callable[[int, int], WorkerHandler],
        *,
        reply_deadline_s: float | None = None,
        max_respawns: int = 2,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_cap: float = 1.0,
        sleep: Callable[[float], None] | None = None,
        use_shm: bool | None = None,
    ) -> None:
        if nworkers < 2:
            raise ValueError(f"a worker pool needs >= 2 workers, got {nworkers}")
        if not fork_available():
            raise IngestError(
                "parallel execution needs the fork start method; "
                "use workers=1 on this platform"
            )
        self._ctx = multiprocessing.get_context("fork")
        self.nworkers = nworkers
        self._handler_factory = handler_factory
        self._reply_deadline_s = reply_deadline_s
        self._max_respawns = max_respawns
        self._backoff_base = backoff_base
        self._backoff_factor = backoff_factor
        self._backoff_cap = backoff_cap
        self._sleep = time.sleep if sleep is None else sleep
        self._conns: list[Connection | None] = [None] * nworkers
        self._procs: list[multiprocessing.process.BaseProcess | None] = [
            None
        ] * nworkers
        self._inline: dict[int, WorkerHandler] = {}
        #: ``feed`` payload lists since the last ``collect`` — the replay
        #: script that makes a respawned worker bit-identical.
        self._journal: list[Sequence[Any]] = []
        self._closed = False
        if use_shm is None:
            use_shm = os.environ.get("REPRO_SHM", "1") != "0" and (
                _shm.shm_available()
            )
        #: Whether batches/state travel through shared-memory segments.
        self.use_shm = bool(use_shm)
        #: Adopted collect segments whose mappings are still pinned by
        #: merged state views; closes are retried at pool boundaries.
        self._deferred: list[_shm.ShmSegment] = []
        #: Pids of workers discarded by healing — their leftover
        #: segments are swept again before any inline fallback.
        self._dead_pids: list[int] = []
        #: Healing counters (surfaced via runtime health / tests).
        self.respawns = 0
        self.timeouts = 0
        self.serial_fallbacks = 0
        self.stuck_workers = 0
        self.reaped_segments = 0
        for index in range(nworkers):
            self._spawn(index)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pids(self) -> list[int]:
        """Child process ids (0 for an inline-fallback slot)."""
        return [proc.pid or 0 if proc is not None else 0 for proc in self._procs]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def inline_workers(self) -> list[int]:
        """Indices currently served by the inline serial fallback."""
        return sorted(self._inline)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, index: int) -> None:
        """Fork a fresh worker for slot ``index``."""
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(  # sketchlint: disable=SL013 — the only free state the worker touches is repro.shm's owned-segment registry, which is fork-reset (repro.shm._reset_after_fork): the child registers only segments it creates itself
            target=_worker_main,
            args=(child, self._handler_factory, index, self.nworkers),
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[index] = parent
        self._procs[index] = proc

    def _discard_worker(self, index: int) -> None:
        """Kill and reap slot ``index``'s process, close its pipe.

        Part of the self-healing contract: any shared-memory segment the
        dead worker created (collect state it never handed over) is
        swept from ``/dev/shm`` here, so worker death never leaks.
        """
        proc = self._procs[index]
        if proc is not None:
            pid = proc.pid
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                self.stuck_workers += 1
            if pid:
                self._dead_pids.append(pid)
                self.reaped_segments += len(_shm.reap_pid_segments(pid))
        conn = self._conns[index]
        if conn is not None:
            try:
                conn.close()
            except Exception:  # sketchlint: disable=SL004,SL016 — best-effort fd cleanup
                pass
        self._procs[index] = None
        self._conns[index] = None

    def _deadline(self) -> float | None:
        """Effective per-reply deadline (fault plan can override)."""
        plan = _pool_faults
        override = getattr(plan, "pool_reply_deadline_s", None)
        if override is not None:
            return float(override)
        if self._reply_deadline_s is not None:
            return float(self._reply_deadline_s)
        return _DEFAULT_REPLY_DEADLINE_S

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #

    def _fail(self, index: int, cause: BaseException | str) -> None:
        proc = self._procs[index]
        alive = proc.is_alive() if proc is not None else False
        code = proc.exitcode if proc is not None else None
        pid = proc.pid if proc is not None else 0
        self.close(terminate=True)
        detail = cause if isinstance(cause, str) else type(cause).__name__
        raise IngestError(
            f"parallel worker {index} (pid {pid}) "
            + (
                f"raised:\n{detail}"
                if isinstance(cause, str)
                else f"became unreachable ({detail}; alive={alive}, "
                f"exitcode={code})"
            )
        ) from (None if isinstance(cause, str) else cause)

    def _recv(self, index: int) -> Any:
        """Await one reply from slot ``index`` under the deadline.

        Raises :class:`_WorkerGone` on death/timeout (healable) and
        :class:`_WorkerRaised` on a forwarded handler error.
        """
        conn = self._conns[index]
        if conn is None:
            raise _WorkerGone("no live process for slot")
        deadline = self._deadline()
        try:
            if deadline is not None and not conn.poll(deadline):
                self.timeouts += 1
                raise _WorkerGone(
                    f"no reply within {deadline}s (hung worker)"
                )
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerGone(f"connection lost: {type(exc).__name__}") from exc
        if status == "shm":
            return self._adopt_state(value)
        if status != "ok":
            raise _WorkerRaised(str(value))
        return value

    def _adopt_state(self, name: str) -> Any:
        """Read a worker-written state segment, taking over its lifecycle.

        The name is unlinked immediately (so nothing can leak even if
        the merge below fails); merged views are writable because after
        adoption the master is the segment's only future attacher.  The
        mapping itself closes once the merged state drops its views —
        parked on ``_deferred`` and retried at pool boundaries.
        """
        try:
            state, segment = _shm.read_attached(name, readonly=False)
        except _shm.ShmError as exc:
            raise _WorkerGone(f"state segment vanished: {exc}") from exc
        segment.adopt()
        segment.unlink()
        if not segment.close():
            self._deferred.append(segment)
        return state

    def _run_inline(self, index: int, command: str, payload: Any) -> Any:
        """Execute one command on slot ``index``'s inline handler."""
        handler = self._inline[index]
        if command == "feed":
            return handler.feed(payload)
        return handler.collect()

    def _replay_and_run(self, index: int, command: str, payload: Any) -> Any:
        """Bring a freshly-forked slot up to date, then run the command.

        The fork started from the master's last-merged partition state;
        replaying the journaled ``feed`` slices (in order) reproduces the
        dead worker's partition bit-for-bit, because payloads carry all
        randomness and feeds are deterministic given payload + state.
        """
        conn = self._conns[index]
        if conn is None:
            raise _WorkerGone("respawn produced no connection")
        for past in self._journal:
            conn.send(("feed", past[index]))
            self._recv(index)
        conn.send((command, payload))
        return self._recv(index)

    def _heal(
        self, index: int, command: str, payload: Any, cause: Exception
    ) -> Any:
        """Replace a dead/hung worker and retry its command bit-identically.

        Respawn attempts back off exponentially (capped); once the
        budget is spent the slot degrades to the inline serial fallback.
        A handler that *raises* during the retry is a deterministic bug:
        it poisons the pool (:class:`IngestError`), never loops.
        """
        plan = _pool_faults
        delay = self._backoff_base
        self._discard_worker(index)
        for attempt in range(self._max_respawns):
            if attempt > 0:
                self._sleep(min(delay, self._backoff_cap))
                delay *= self._backoff_factor
            self.respawns += 1
            if plan is not None and plan.pool_respawn_should_fail():
                continue  # scripted respawn failure (chaos tests)
            try:
                self._spawn(index)
                return self._replay_and_run(index, command, payload)
            except _WorkerGone:
                self._discard_worker(index)
            except _WorkerRaised as exc:
                self._fail(index, str(exc))
        # Respawn budget exhausted: degrade this slot to the serial path.
        # Before going inline, release every segment still owned by the
        # workers that died in this incident — the inline handler replays
        # from the in-memory journal and will never touch them, and an
        # unlinked-on-discard sweep can race an exiting worker's own
        # writes, so this final sweep is what guarantees no orphans.
        for pid in self._dead_pids:
            self.reaped_segments += len(_shm.reap_pid_segments(pid))
        self._dead_pids.clear()
        self.serial_fallbacks += 1
        try:
            handler = self._handler_factory(index, self.nworkers)
            for past in self._journal:
                handler.feed(past[index])
            self._inline[index] = handler
            return self._run_inline(index, command, payload)
        except Exception as exc:  # sketchlint: disable=SL004 — _fail always raises IngestError
            self._fail(index, exc)

    def _apply_scripted_faults(self) -> None:
        """Kill or hang workers as scripted for this ``feed`` dispatch."""
        plan = _pool_faults
        if plan is None:
            return
        for index, action, arg in plan.pool_feed_actions():
            proc = self._procs[index]
            conn = self._conns[index]
            if index in self._inline or proc is None or conn is None:
                continue
            if action == "kill":
                if proc.pid:
                    os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=_JOIN_TIMEOUT_S)
            elif action == "hang":
                try:
                    conn.send(("hang", arg))
                except (BrokenPipeError, OSError):  # sketchlint: disable=SL016 — fault injection on a corpse; the roundtrip heals it
                    pass

    def _roundtrip(
        self,
        command: str,
        payloads: Sequence[Any],
        wire: Sequence[tuple[str, Any]] | None = None,
    ) -> list[Any]:
        """Send one command to every worker, gather every reply in order.

        All sends go out before any reply is awaited, so workers run
        concurrently; replies are drained in worker order (cheap — the
        slowest worker bounds the wall clock either way).  A worker that
        dies, hangs past the deadline, or errors is healed in place (see
        :meth:`_heal`); the batch result is bit-identical either way.

        ``wire``, when given, is the per-slot shared-memory form of the
        command actually sent to forked workers; healing and inline
        slots always use the in-band ``(command, payloads[index])``
        form, which is bit-identical by construction.
        """
        if self._closed:
            raise IngestError("worker pool is closed")
        results: list[Any] = [None] * self.nworkers
        done = [False] * self.nworkers
        for index in range(self.nworkers):
            if index in self._inline:
                continue  # ran after forked sends, in the await loop
            conn = self._conns[index]
            try:
                if conn is None:
                    raise _WorkerGone("no live process for slot")
                conn.send(wire[index] if wire is not None else (command, payloads[index]))
            except (_WorkerGone, BrokenPipeError, OSError) as exc:
                results[index] = self._heal(
                    index, command, payloads[index],
                    exc if isinstance(exc, Exception) else _WorkerGone(str(exc)),
                )
                done[index] = True
        for index in range(self.nworkers):
            if done[index]:
                continue
            if index in self._inline:
                results[index] = self._run_inline(
                    index, command, payloads[index]
                )
                continue
            try:
                results[index] = self._recv(index)
            except _WorkerGone as exc:
                results[index] = self._heal(
                    index, command, payloads[index], exc
                )
            except _WorkerRaised as exc:
                # One bit-identical retry on a fresh worker; a second
                # raise inside _heal poisons the pool.
                results[index] = self._heal(
                    index, command, payloads[index], exc
                )
        return results

    def _publish_payloads(
        self, payloads: Sequence[Any]
    ) -> list[_shm.ShmSegment] | None:
        """Write each slot's payload into a master-owned segment.

        Slots sharing one payload object (broadcast batches) share one
        segment.  Returns ``None`` when shared-memory transport is off,
        or on any publish failure — the caller then falls back to the
        in-band pipe protocol for this batch.
        """
        if not self.use_shm:
            return None
        by_identity: dict[int, _shm.ShmSegment] = {}
        segments: list[_shm.ShmSegment] = []
        try:
            for payload in payloads:
                segment = by_identity.get(id(payload))
                if segment is None:
                    segment = _shm.write_object(payload)
                    by_identity[id(payload)] = segment
                segments.append(segment)
        except Exception:  # sketchlint: disable=SL004,SL016 — publish failure downgrades this batch to the in-band pipe path; nothing is lost and the feed still raises on real ingest errors
            for segment in by_identity.values():
                segment.release()
            return None
        return segments

    @staticmethod
    def _release_segments(segments: Sequence[_shm.ShmSegment]) -> None:
        """Unlink a batch's segments (deduped; attached workers unaffected)."""
        seen: set[str] = set()
        for segment in segments:
            if segment.name not in seen:
                seen.add(segment.name)
                segment.release()

    def feed(self, payloads: Sequence[Any]) -> None:
        """Apply one per-worker payload list; blocks until all acked.

        With shared-memory transport, each slot's payload is published
        into a segment and only the name crosses the pipe; the segments
        are released as soon as the batch is acked (workers attach
        during the ack roundtrip, and POSIX keeps their mappings valid
        past the unlink).  The payload list is journaled (until the next
        :meth:`collect`) so a later healing respawn can replay it
        in-band, independent of segment lifetime.
        """
        self._apply_scripted_faults()
        payloads = list(payloads)
        segments = self._publish_payloads(payloads)
        wire = None
        if segments is not None:
            wire = [("feed_shm", segment.name) for segment in segments]
        try:
            self._roundtrip("feed", payloads, wire=wire)
        finally:
            if segments is not None:
                self._release_segments(segments)
        self._journal.append(payloads)

    def collect(self) -> list[Any]:
        """Export every worker's owned partition state, in worker order.

        With shared-memory transport, each worker ships its state as a
        segment name; :meth:`_adopt_state` maps it zero-copy and takes
        over the unlink.  Clears the healing journal: the caller merges
        these states into the master, so a future respawn's fork already
        contains them.
        """
        wire = None
        if self.use_shm:
            wire = [("collect_shm", None)] * self.nworkers
        results = self._roundtrip(
            "collect", [None] * self.nworkers, wire=wire
        )
        self._journal.clear()
        self._deferred[:] = [
            segment for segment in self._deferred if not segment.close()
        ]
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _reap(
        self, proc: multiprocessing.process.BaseProcess, terminate: bool
    ) -> None:
        """Join one worker, escalating ``terminate()`` -> ``kill()``.

        The second ``join`` timing out as well means an unkillable
        (``D``-state) worker: it is counted and abandoned — workers are
        daemonic, so it can never hang interpreter shutdown.
        """
        if terminate and proc.is_alive():
            proc.terminate()
        proc.join(timeout=_TERMINATE_GRACE_S if terminate else _JOIN_TIMEOUT_S)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                self.stuck_workers += 1

    def close(self, terminate: bool = False) -> None:
        """Shut every worker down (idempotent).

        Extends shutdown to the shm lifecycle: dead-worker segments are
        swept, and adopted state mappings get a final close attempt
        (their names are already unlinked, so even a still-pinned
        mapping leaves nothing in ``/dev/shm``).
        """
        if self._closed:
            return
        self._closed = True
        worker_pids = [
            proc.pid for proc in self._procs if proc is not None and proc.pid
        ]
        if not terminate:
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send(("exit", None))
                except Exception:  # sketchlint: disable=SL004,SL016 — worker already dead; reap below handles it
                    pass
        for proc in self._procs:
            if proc is not None:
                self._reap(proc, terminate)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except Exception:  # sketchlint: disable=SL004,SL016 — best-effort fd cleanup on shutdown
                pass
        self._inline.clear()
        self._journal.clear()
        for pid in worker_pids + self._dead_pids:
            self.reaped_segments += len(_shm.reap_pid_segments(pid))
        self._dead_pids.clear()
        self._deferred[:] = [
            segment for segment in self._deferred if not segment.close()
        ]

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(terminate=True)
        except Exception:  # sketchlint: disable=SL004 — finalizers must never raise
            pass


# --------------------------------------------------------------------- #
# One-shot read-only fan-out
# --------------------------------------------------------------------- #


def _map_child(
    conn: Connection,
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    index: int,
    nworkers: int,
) -> None:
    try:
        out = [fn(tasks[pos]) for pos in range(index, len(tasks), nworkers)]
    except BaseException:  # sketchlint: disable=SL004 — forwarded to master as an ("err", traceback) reply
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            pass
    else:
        try:
            conn.send(("ok", out))
        except Exception:  # sketchlint: disable=SL004 — master gone; nothing left to report to
            pass
    finally:
        conn.close()


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    *,
    min_tasks: int = 2,
) -> list[Any]:
    """``[fn(t) for t in tasks]`` over forked children, order preserved.

    ``fn`` and ``tasks`` reach the children by fork inheritance (never
    pickled), so closures over big read-only state — frozen tables, live
    tracker dicts — cost nothing to ship; only each ``fn(t)`` result
    crosses a pipe.  Runs in-process (bit-identically) when ``workers``
    is 1, the platform lacks fork, or there are fewer than ``min_tasks``
    tasks.  ``fn`` must not mutate shared state: children are discarded,
    so only returned values survive.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) < max(2, min_tasks) or not fork_available():
        return [fn(task) for task in tasks]
    workers = min(workers, len(tasks))
    ctx = multiprocessing.get_context("fork")
    conns: list[Connection] = []
    procs: list[multiprocessing.process.BaseProcess] = []
    for index in range(workers):
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_map_child,
            args=(child, fn, tasks, index, workers),
            daemon=True,
        )
        proc.start()
        child.close()
        conns.append(parent)
        procs.append(proc)
    results: list[Any] = [None] * len(tasks)
    try:
        for index, conn in enumerate(conns):
            try:
                status, value = conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerUnavailable(
                    f"parallel map worker {index} (pid {procs[index].pid}) "
                    f"died before returning results"
                ) from exc
            if status != "ok":
                raise IngestError(
                    f"parallel map worker {index} raised:\n{value}"
                )
            for pos, item in zip(
                range(index, len(tasks), workers), value
            ):
                results[pos] = item
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:  # sketchlint: disable=SL004,SL016 — best-effort fd cleanup on shutdown
                pass
        for proc in procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
    return results
