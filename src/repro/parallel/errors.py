"""Errors raised by the parallel execution layer."""

from __future__ import annotations


class IngestError(RuntimeError):
    """A parallel worker failed (died, was killed, or raised) mid-ingest.

    Raised by the worker pool when a child process becomes unreachable or
    reports an exception.  The failing batch was *not* applied from the
    caller's point of view: the master sketch keeps the state of the last
    successful merge, and a durable front-end (the WAL of
    :class:`repro.runtime.IngestRuntime`) still holds every record, so
    recovery replays to the exact pre-failure state plus the durable
    tail.  A sketch whose workers died with unmerged rows refuses further
    queries with this error rather than serving stale answers.

    Since the self-healing pool landed, plain worker death no longer
    raises this: the pool respawns the worker and replays the journaled
    batches bit-identically (see :class:`repro.parallel.WorkerPool`).
    What still poisons a pool is a handler that *raises* twice in a row
    (a deterministic bug, not a fault) or a slot whose inline serial
    fallback also fails.
    """


class WorkerUnavailable(IngestError):
    """A worker could not be reached and the operation had no replay path.

    Raised by one-shot fan-outs (:func:`repro.parallel.parallel_map`)
    whose ephemeral children died before returning results: there is no
    journal to replay, so the caller must re-run the whole map.
    Subclasses :class:`IngestError` so existing poison-handling call
    sites keep working.
    """
