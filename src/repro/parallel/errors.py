"""Errors raised by the parallel execution layer."""

from __future__ import annotations


class IngestError(RuntimeError):
    """A parallel worker failed (died, was killed, or raised) mid-ingest.

    Raised by the worker pool when a child process becomes unreachable or
    reports an exception.  The failing batch was *not* applied from the
    caller's point of view: the master sketch keeps the state of the last
    successful merge, and a durable front-end (the WAL of
    :class:`repro.runtime.IngestRuntime`) still holds every record, so
    recovery replays to the exact pre-failure state plus the durable
    tail.  A sketch whose workers died with unmerged rows refuses further
    queries with this error rather than serving stale answers.
    """
