"""The ``PWC_AMS`` baseline (Section 2 applied to the AMS sketch).

Each signed AMS counter is tracked with the record-on-deviation
piecewise-constant recorder.  Works for point queries (error comparable to
the persistent Count-Min baseline), but for join and self-join queries the
deterministic ``Omega(Delta)`` per-counter bias cannot be corrected and is
amplified across the ``w`` counters of a row — the deficiency the
sampling-based persistent AMS sketch exists to fix (Section 4.2).
"""

from __future__ import annotations

from statistics import median

import numpy as np

from repro.core import columnar
from repro.core.base import PersistentSketch
from repro.hashing import BucketHashFamily, HashConfig, SignHashFamily
from repro.parallel.pool import WorkerPool
from repro.persistence.tracker import CounterTracker, PWCTracker


class PWCAMS(PersistentSketch):
    """Piecewise-constant persistent AMS sketch (baseline)."""

    name = "PWC_AMS"

    def __init__(
        self,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        workers: int = 1,
    ):
        super().__init__(workers=workers)
        self.width = width
        self.depth = depth
        self.delta = float(delta)
        self.seed = seed
        config = HashConfig(width=width, depth=depth, seed=seed)
        self.buckets = BucketHashFamily(config)
        self.signs = SignHashFamily(config)
        self._counters: list[list[int]] = [
            [0] * width for _ in range(depth)
        ]
        self._trackers: list[dict[int, PWCTracker]] = [
            {} for _ in range(depth)
        ]
        self.total = 0

    def _ingest(self, item: int, count: int, time: int) -> None:
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        for row in range(self.depth):
            col = cols[row]
            counters = self._counters[row]
            value = counters[col] + sgns[row] * count
            counters[col] = value
            trackers = self._trackers[row]
            tracker = trackers.get(col)
            if tracker is None:
                tracker = PWCTracker(delta=self.delta, initial_value=0.0)
                trackers[col] = tracker
            tracker.feed(time, value)
        self.total += count

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: signed counts per row, per-(row, col) runs."""
        columns = self.buckets.buckets_many(items)
        signs = self.signs.signs_many(items)
        for row in range(self.depth):
            columnar.feed_tracked_row(
                self._counters[row],
                self._trackers[row],
                columns[row],
                times,
                signs[row] * counts,
                lambda: PWCTracker(delta=self.delta, initial_value=0.0),
            )
        self.total += int(counts.sum())

    # ------------------------------------------------------------------ #
    # Row-parallel plan (rows independent given bucket/sign columns)
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        return True

    def _make_tracker(self) -> CounterTracker:
        return PWCTracker(delta=self.delta, initial_value=0.0)

    def _worker_handler(
        self, index: int, nworkers: int
    ) -> columnar.TrackedRowWorker:
        return columnar.TrackedRowWorker(
            self._counters, self._trackers, self._make_tracker, index, nworkers
        )

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        columns = self.buckets.buckets_many(items)
        signs = self.signs.signs_many(items)
        columnar.feed_rows_parallel(
            pool,
            times,
            [
                (columns[row], signs[row] * counts)
                for row in range(self.depth)
            ],
        )
        self.total += int(counts.sum())

    def _install_worker_states(self, states: list) -> None:
        columnar.install_row_states(self._counters, self._trackers, states)

    def counter_at(self, row: int, col: int, t: float) -> float:
        """Approximate value of counter ``C[row][col]`` at time ``t``."""
        self._ensure_synced()
        tracker = self._trackers[row].get(col)
        if tracker is None:
            return 0.0
        return tracker.value_at(t)

    def _window_counter(self, row: int, col: int, s: float, t: float) -> float:
        high = self.counter_at(row, col, t)
        low = self.counter_at(row, col, s) if s > 0 else 0.0
        return high - low

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` (median of signed window counters)."""
        s, t = self._resolve_window(s, t)
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        return median(
            sgns[row] * self._window_counter(row, cols[row], s, t)
            for row in range(self.depth)
        )

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Biased self-join estimate (no guarantee; see module docstring)."""
        s, t = self._resolve_window(s, t)
        row_estimates = []
        for row in range(self.depth):
            total = 0.0
            trackers = self._trackers[row]
            # Sorted column order: keeps the float accumulation order
            # deterministic and identical to the frozen query path.
            for col in sorted(trackers):
                tracker = trackers[col]
                diff = tracker.value_at(t) - (
                    tracker.value_at(s) if s > 0 else 0.0
                )
                total += diff * diff
            row_estimates.append(total)
        return median(row_estimates)

    def join_size(
        self, other: "PWCAMS", s: float = 0, t: float | None = None
    ) -> float:
        """Biased join-size estimate with another stream's sketch."""
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise ValueError(
                "join-size estimation requires sketches with identical "
                "width, depth and hash seed"
            )
        other._ensure_synced()
        s, t = self._resolve_window(s, t)
        row_estimates = []
        for row in range(self.depth):
            cols = set(self._trackers[row]) & set(other._trackers[row])
            total = 0.0
            for col in cols:
                total += self._window_counter(
                    row, col, s, t
                ) * other._window_counter(row, col, s, t)
            row_estimates.append(total)
        return median(row_estimates)

    def persistence_words(self) -> int:
        self._ensure_synced()
        return sum(
            tracker.words()
            for trackers in self._trackers
            for tracker in trackers.values()
        )

    def ephemeral_words(self) -> int:
        """Size of the underlying counter array."""
        return self.width * self.depth
