"""Estimates that carry their a-priori error bounds.

The theorems give every query a computable error bound; exposing it next
to the estimate lets downstream code make principled decisions ("is this
difference significant?") instead of treating sketch output as exact.
In the cash-register model with dense ticks the window mass
``||f_{s,t}||_1`` is simply the window length, so the Count-Min bound is
available for free; callers with sparser streams pass the mass
explicitly (e.g. from
:meth:`~repro.core.heavy_hitters.PersistentHeavyHitters.window_mass`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin


@dataclass(frozen=True, slots=True)
class Estimate:
    """A point estimate with its high-probability error bound."""

    value: float
    error_bound: float
    window: tuple[float, float]

    @property
    def interval(self) -> tuple[float, float]:
        """The (value - bound, value + bound) interval."""
        return self.value - self.error_bound, self.value + self.error_bound

    def compatible_with(self, other: "Estimate") -> bool:
        """True when the two estimates' intervals overlap — i.e. the
        observed difference is within the combined error budgets."""
        lo_a, hi_a = self.interval
        lo_b, hi_b = other.interval
        return lo_a <= hi_b and lo_b <= hi_a


def countmin_point(
    sketch: PersistentCountMin,
    item: int,
    s: float = 0,
    t: float | None = None,
    window_mass: float | None = None,
) -> Estimate:
    """Point estimate with the Theorem 3.1 bound
    ``eps * ||f_{s,t}||_1 + 2 * Delta``.

    ``window_mass`` defaults to the window length (exact for dense
    cash-register ticks, an upper bound whenever ticks may be skipped
    but never carry more than one arrival).
    """
    if t is None:
        t = sketch.now
    value = sketch.point(item, s, t)
    mass = (t - s) if window_mass is None else window_mass
    eps = math.e / sketch.width
    bound = eps * mass + 2 * sketch.delta
    return Estimate(value=value, error_bound=bound, window=(s, t))


def ams_point(
    sketch: PersistentAMS,
    item: int,
    s: float = 0,
    t: float | None = None,
    window_l2: float | None = None,
) -> Estimate:
    """Point estimate with the Theorem 4.1 bound
    ``eps * ||f_{s,t}||_2 + 2 * Delta``.

    ``window_l2`` defaults to ``sqrt(window length)`` — the L2 norm's
    minimum over cash-register streams of that mass, so the default is
    a *lower* bound on the true norm; pass a measured value (e.g. the
    square root of a self-join estimate) for a faithful bound.
    """
    if t is None:
        t = sketch.now
    value = sketch.point(item, s, t)
    l2 = math.sqrt(max(t - s, 0)) if window_l2 is None else window_l2
    eps = 2.0 / math.sqrt(sketch.width)
    bound = eps * l2 + 2 * sketch.delta
    return Estimate(value=value, error_bound=bound, window=(s, t))
