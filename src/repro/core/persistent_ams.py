"""The sampling-based persistent AMS sketch ("Sample", Section 4).

Each AMS counter ``C[j][k]`` is decomposed into two monotonically
increasing components: ``C[j][k][1]`` accumulates updates with positive
effective sign (``sign_j(i) * count > 0``) and ``C[j][k][0]`` the negative
ones, so ``C = C[1] - C[0]``.  Each component keeps one or more
Bernoulli(1/Delta)-sampled history lists
(:class:`~repro.persistence.history_list.SampledHistoryList`), whose
compensated predecessor reads are *unbiased* estimators of the component
value at any time — the property that lets join-size errors stay bounded
where the deterministic baselines' bias is amplified (Section 4.2).

Self-join estimation needs the two factors of each squared counter to come
from independent reconstructions, so by default every component keeps
``independent_copies = 2`` history lists (doubling space, as the paper
notes at the end of Section 4.1).  Join sizes between two different
streams use copy 0 of each sketch; the streams themselves provide the
independence.
"""

from __future__ import annotations

from random import Random
from statistics import median

import numpy as np

from repro.analysis import contracts
from repro.core import columnar
from repro.core.base import PersistentSketch
from repro.hashing import BucketHashFamily, HashConfig, SignHashFamily
from repro.parallel.pool import WorkerPool
from repro.persistence.history_list import SampledHistoryList
from repro.persistence.sampling import bulk_uniforms
from repro.persistence.timeline import TimelineIndex


def _feed_sampled_row(
    components: list[list[int]],
    histories_row: list[list[dict[int, SampledHistoryList]]],
    row_cols: np.ndarray,
    b_flags: np.ndarray,
    a_times: np.ndarray,
    a_mags: np.ndarray,
    uniforms_row: np.ndarray,
    probability: float,
    copies: int,
    rng: Random,
) -> None:
    """Apply one hash row's active updates from pre-drawn uniforms.

    ``uniforms_row`` holds this row's slice of the sketch-RNG draw
    sequence, in update order, shape ``(m, copies)`` — acceptance is a
    pure function of it, so the caller may run rows in any process.  The
    row body is shared verbatim by the serial plan and the row-parallel
    workers; bit-equality between the two is equality of inputs.
    """
    keys = row_cols * 2 + b_flags
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    slices = columnar.group_slices(sorted_keys)
    bases = np.array(
        [
            components[int(sorted_keys[lo]) // 2][int(sorted_keys[lo]) % 2]
            for lo, _hi in slices
        ],
        dtype=np.int64,
    )
    values_list = columnar.run_values(bases, a_mags[order], slices).tolist()
    times_list = a_times[order].tolist()
    accepted = uniforms_row[order] < probability
    for lo, hi in slices:
        key = int(sorted_keys[lo])
        col, b = key // 2, key % 2
        for copy in range(copies):
            lists = histories_row[b][copy]
            history = lists.get(col)
            if history is None:
                history = SampledHistoryList(
                    probability=probability, rng=rng
                )
                lists[col] = history
            hits = np.flatnonzero(accepted[lo:hi, copy]).tolist()
            if hits:
                history.extend(
                    [times_list[lo + k] for k in hits],
                    [values_list[lo + k] for k in hits],
                )
        components[col][b] = values_list[hi - 1]


class _SampledRowWorker:
    """Forked worker owning hash rows ``index, index + n, ...`` of a
    sampled AMS sketch.  Never draws randomness itself: every uniform is
    pre-drawn by the master's RNG and shipped in the payload, so the
    sample sets are bit-identical to serial regardless of worker count."""

    def __init__(self, sketch: PersistentAMS, index: int, nworkers: int) -> None:
        self._sketch = sketch
        self._rows = list(range(index, sketch.depth, nworkers))

    def feed(
        self,
        payload: tuple[np.ndarray, np.ndarray, dict[int, tuple]],
    ) -> None:
        a_times, a_mags, rows = payload
        sketch = self._sketch
        for row, (row_cols, b_flags, uniforms_row) in rows.items():
            _feed_sampled_row(
                sketch._components[row],
                sketch._histories[row],
                row_cols,
                b_flags,
                a_times,
                a_mags,
                uniforms_row,
                sketch.probability,
                sketch.copies,
                sketch._rng,
            )

    def collect(self) -> list[tuple]:
        sketch = self._sketch
        return [
            (row, sketch._components[row], sketch._histories[row])
            for row in self._rows
        ]


class PersistentAMS(PersistentSketch):
    """Sampling-based persistent AMS sketch.

    Parameters
    ----------
    width, depth:
        Shape of the AMS sketch (``w = O(1/eps^2)``, ``d = O(log 1/delta)``).
    delta:
        Additive persistence error ``Delta``; the sampling probability is
        ``p = 1/Delta``.
    seed:
        Hash seed.  Two sketches can answer join queries only when built
        with identical ``width``, ``depth`` and ``seed``.
    independent_copies:
        History lists per counter component (2 enables self-join per
        Section 4.1; 1 halves space when only point/join queries are
        needed).
    sampling_seed:
        Seed of the Bernoulli sampler (independent of the hash seed so
        the two sketches of a join pair share hashes but not samples).
    """

    name = "Sample"

    def __init__(
        self,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        independent_copies: int = 2,
        sampling_seed: int | None = None,
        workers: int = 1,
    ):
        super().__init__(workers=workers)
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        if independent_copies < 1:
            raise ValueError("independent_copies must be >= 1")
        self.width = width
        self.depth = depth
        self.delta = float(delta)
        self.seed = seed
        self.copies = independent_copies
        self.probability = 1.0 / float(delta)
        config = HashConfig(width=width, depth=depth, seed=seed)
        self.buckets = BucketHashFamily(config)
        self.signs = SignHashFamily(config)
        # Seed audit: the Bernoulli sampler is decoupled from the hash
        # seed by an affine map (7919 is prime) so a join pair built via
        # make_ams_pair shares hashes but never sampling randomness; the
        # +11 offset keeps it disjoint from HistoricalAMS (+13) and the
        # L2 tracker (+101) when all derive from one experiment seed.
        self._rng = Random(seed * 7919 + 11 if sampling_seed is None else sampling_seed)
        # Current component values: per row, per column, [negative, positive].
        self._components: list[list[list[int]]] = [
            [[0, 0] for _ in range(width)] for _ in range(depth)
        ]
        # Lazily created history lists:
        # _histories[row][b][copy] maps column -> SampledHistoryList.
        self._histories: list[list[list[dict[int, SampledHistoryList]]]] = [
            [
                [{} for _ in range(independent_copies)]
                for _b in range(2)
            ]
            for _ in range(depth)
        ]
        self.total = 0
        # Optional fractional-cascading index over the history lists;
        # see build_timeline().
        self._timeline: dict[
            tuple[int, int, int], tuple[list[int], TimelineIndex]
        ] | None = None
        self._timeline_clock = -1

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def _ingest(self, item: int, count: int, time: int) -> None:
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        magnitude = abs(count)
        if magnitude == 0:
            return
        for row in range(self.depth):
            col = cols[row]
            effective = sgns[row] * count
            b = 1 if effective > 0 else 0
            component = self._components[row][col]
            value = component[b] + magnitude
            component[b] = value
            for copy in range(self.copies):
                lists = self._histories[row][b][copy]
                history = lists.get(col)
                if history is None:
                    history = SampledHistoryList(
                        probability=self.probability, rng=self._rng
                    )
                    lists[col] = history
                history.offer(time, value)
        self.total += count

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan, bit-identical to sequential sampling.

        The scalar path draws exactly one uniform per offer, in
        (update, row, copy) order; :func:`bulk_uniforms` pre-draws that
        exact sequence from the sketch RNG (and leaves the RNG in the
        same end state), so the accepted sample sets — and every later
        draw — match the scalar path bit-for-bit.  Component values come
        from per-(row, col, component) cumulative-magnitude runs.
        """
        magnitudes = np.abs(counts)
        active = np.flatnonzero(magnitudes > 0)
        m = int(active.shape[0])
        if m:
            a_items = items[active]
            a_times = times[active]
            a_mags = magnitudes[active]
            a_counts = counts[active]
            columns = self.buckets.buckets_many(a_items)
            signs = self.signs.signs_many(a_items)
            probability = self.probability
            uniforms = bulk_uniforms(
                self._rng, m * self.depth * self.copies
            ).reshape(m, self.depth, self.copies)
            for row in range(self.depth):
                # Group by (column, component): component streams are
                # independent monotone counters.
                b_flags = (signs[row] * a_counts > 0).astype(np.int64)
                _feed_sampled_row(
                    self._components[row],
                    self._histories[row],
                    columns[row],
                    b_flags,
                    a_times,
                    a_mags,
                    uniforms[:, row, :],
                    probability,
                    self.copies,
                    self._rng,
                )
        self.total += int(counts.sum())

    # ------------------------------------------------------------------ #
    # Row-parallel plan: master pre-draws the full uniform block (its RNG
    # advances exactly as in the serial plan) and ships each worker the
    # per-row slices, so acceptance never depends on worker scheduling.
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        return True

    def _worker_handler(self, index: int, nworkers: int) -> _SampledRowWorker:
        return _SampledRowWorker(self, index, nworkers)

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        magnitudes = np.abs(counts)
        active = np.flatnonzero(magnitudes > 0)
        m = int(active.shape[0])
        if m:
            a_items = items[active]
            a_times = times[active]
            a_mags = magnitudes[active]
            a_counts = counts[active]
            columns = self.buckets.buckets_many(a_items)
            signs = self.signs.signs_many(a_items)
            uniforms = bulk_uniforms(
                self._rng, m * self.depth * self.copies
            ).reshape(m, self.depth, self.copies)
            payloads = []
            for index in range(pool.nworkers):
                rows = {}
                for row in range(index, self.depth, pool.nworkers):
                    b_flags = (signs[row] * a_counts > 0).astype(np.int64)
                    rows[row] = (columns[row], b_flags, uniforms[:, row, :])
                payloads.append((a_times, a_mags, rows))
            pool.feed(payloads)
        self.total += int(counts.sum())

    def _install_worker_states(self, states: list) -> None:
        for state in states:
            for row, components, histories_row in state:
                self._components[row] = components
                for by_sign in histories_row:
                    for lists in by_sign:
                        for history in lists.values():
                            # Collected lists carry a pickled *copy* of
                            # the sketch RNG; rewire them to the master's
                            # single RNG so any later scalar offer draws
                            # from the exact serial sequence.
                            history._rng = self._rng
                self._histories[row] = histories_row

    # ------------------------------------------------------------------ #
    # Counter reconstruction
    # ------------------------------------------------------------------ #

    def _component_at(self, row: int, b: int, copy: int, col: int, t: float) -> float:
        history = self._histories[row][b][copy].get(col)
        if history is None:
            return 0.0
        return history.estimate_at(t)

    def counter_estimate(self, row: int, col: int, t: float, copy: int = 0) -> float:
        """Unbiased estimate of counter ``C[row][col]`` at time ``t``."""
        self._ensure_synced()
        if t <= 0:
            return 0.0
        return self._component_at(row, 1, copy, col, t) - self._component_at(
            row, 0, copy, col, t
        )

    def _window_counter(self, row: int, col: int, s: float, t: float, copy: int) -> float:
        high = self.counter_estimate(row, col, t, copy)
        low = self.counter_estimate(row, col, s, copy) if s > 0 else 0.0
        return high - low

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` (Theorem 4.1 error bound)."""
        s, t = self._resolve_window(s, t)
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        return median(
            sgns[row] * self._window_counter(row, cols[row], s, t, copy=0)
            for row in range(self.depth)
        )

    def build_timeline(self) -> None:
        """Build a fractional-cascading index over the history lists.

        A join or self-join query must locate the predecessor of each
        window endpoint in every history list of a row (``O(w)`` lists);
        the index replaces the per-list binary searches with one search
        plus O(1) bridge-following per list — the query-time optimization
        of Sections 3.3/4.2 [10].  The index is static: it serves queries
        as of the stream position at build time and is rebuilt lazily by
        calling this method again after further ingest (holistic queries
        issued after new updates silently fall back to binary searches).
        """
        self._ensure_synced()
        timeline = {}
        for row in range(self.depth):
            for b in range(2):
                for copy in range(self.copies):
                    lists = self._histories[row][b][copy]
                    if contracts.ENABLED:
                        for history in lists.values():
                            contracts.check_history_list(
                                history, what=f"history[{row}][{b}][{copy}]"
                            )
                    cols = sorted(lists)
                    timeline[(row, b, copy)] = (
                        cols,
                        TimelineIndex(
                            [lists[col].sample_times() for col in cols]
                        ),
                    )
        self._timeline = timeline
        self._timeline_clock = self.now

    def _timeline_fresh(self) -> bool:
        return (
            self._timeline is not None and self._timeline_clock == self.now
        )

    def _bulk_window_counters(
        self, row: int, s: float, t: float, copy: int
    ) -> dict[int, float]:
        """Window counter estimates for every touched column of a row,
        via the fractional-cascading index."""
        if self._timeline is None:
            raise RuntimeError(
                "fractional-cascading index queried before build_timeline()"
            )
        out: dict[int, float] = {}
        for b, sign in ((1, 1.0), (0, -1.0)):
            cols, index = self._timeline[(row, b, copy)]
            if not cols:
                continue
            lists = self._histories[row][b][copy]
            pred_t = index.predecessors(t)
            pred_s = index.predecessors(s) if s > 0 else None
            for i, col in enumerate(cols):
                history = lists[col]
                value = history.estimate_at_index(pred_t[i])
                if pred_s is not None:
                    value -= history.estimate_at_index(pred_s[i])
                out[col] = out.get(col, 0.0) + sign * value
        return out

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Estimate ``||f_{s,t}||_2^2`` (Theorem 4.2 with f = g).

        Requires ``independent_copies >= 2``: the two factors of each
        squared counter come from independent history lists, keeping the
        estimator's cross terms unbiased (Section 4.1).
        """
        if self.copies < 2:
            raise ValueError(
                "self-join estimation needs independent_copies >= 2"
            )
        s, t = self._resolve_window(s, t)
        row_estimates = []
        use_timeline = self._timeline_fresh()
        for row in range(self.depth):
            total = 0.0
            if use_timeline:
                a_by_col = self._bulk_window_counters(row, s, t, copy=0)
                b_by_col = self._bulk_window_counters(row, s, t, copy=1)
                for col, a in a_by_col.items():
                    total += a * b_by_col.get(col, 0.0)
            else:
                # Sorted column order: keeps the float accumulation order
                # deterministic and identical to the frozen query path.
                for col in sorted(self._touched_columns(row)):
                    a = self._window_counter(row, col, s, t, copy=0)
                    b = self._window_counter(row, col, s, t, copy=1)
                    total += a * b
            row_estimates.append(total)
        return median(row_estimates)

    def join_size(
        self, other: "PersistentAMS", s: float = 0, t: float | None = None
    ) -> float:
        """Estimate ``<f_{s,t}, g_{s,t}>`` with another stream's sketch.

        Both sketches must share ``width``, ``depth`` and hash ``seed``
        (Theorem 4.2); their ``delta`` values may differ.
        """
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise ValueError(
                "join-size estimation requires sketches with identical "
                "width, depth and hash seed"
            )
        other._ensure_synced()
        s, t = self._resolve_window(s, t)
        row_estimates = []
        use_timeline = self._timeline_fresh() and other._timeline_fresh()
        for row in range(self.depth):
            total = 0.0
            if use_timeline:
                f_by_col = self._bulk_window_counters(row, s, t, copy=0)
                g_by_col = other._bulk_window_counters(row, s, t, copy=0)
                small, large = (
                    (f_by_col, g_by_col)
                    if len(f_by_col) <= len(g_by_col)
                    else (g_by_col, f_by_col)
                )
                for col, value in small.items():
                    total += value * large.get(col, 0.0)
            else:
                cols = sorted(
                    self._touched_columns(row) & other._touched_columns(row)
                )
                for col in cols:
                    a = self._window_counter(row, col, s, t, copy=0)
                    b = other._window_counter(row, col, s, t, copy=0)
                    total += a * b
            row_estimates.append(total)
        return median(row_estimates)

    def _touched_columns(self, row: int) -> set[int]:
        touched: set[int] = set()
        for b in range(2):
            touched.update(self._histories[row][b][0].keys())
        return touched

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def persistence_words(self) -> int:
        self._ensure_synced()
        return sum(
            history.words()
            for row_hist in self._histories
            for by_sign in row_hist
            for lists in by_sign
            for history in lists.values()
        )

    def ephemeral_words(self) -> int:
        """Size of the underlying component arrays."""
        return 2 * self.width * self.depth
