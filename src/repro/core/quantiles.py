"""Historical window quantiles and range queries on top of the dyadic
persistent Count-Min hierarchy.

The paper notes (Section 1.2) that point queries are the building block
of range queries [11]; and the dyadic range-sum trick that serves heavy
hitters equally serves *rank* queries: the rank of ``x`` in the window
``(s, t]`` is the range sum ``[0, x]``, computable from O(log n) dyadic
point queries.  Binary-searching ranks yields approximate quantiles over
any past window — the query Tao et al. [30] support for historical data
only with a pointer-based, non-streaming summary.

Error: each rank estimate carries ``O(log n)`` point-query errors of
``eps ||f_{s,t}||_1 + Delta`` each, so a quantile returned for rank
``phi * W`` holds a true rank within ``phi * W +- O(log n (eps W + Delta))``
where ``W = ||f_{s,t}||_1``.
"""

from __future__ import annotations

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.streams.model import Stream


class PersistentQuantiles:
    """Window rank / quantile / range queries over a dyadic hierarchy.

    Wraps (or owns) a :class:`PersistentHeavyHitters` structure — the
    two query families share the identical index, so a deployment that
    wants both pays for one.

    Parameters
    ----------
    universe, width, depth, delta, seed:
        Forwarded to :class:`PersistentHeavyHitters` when no existing
        ``hierarchy`` is supplied.
    hierarchy:
        Reuse an already-ingested dyadic structure.
    """

    def __init__(
        self,
        universe: int | None = None,
        width: int = 1024,
        depth: int = 4,
        delta: float = 16,
        seed: int = 0,
        hierarchy: PersistentHeavyHitters | None = None,
    ):
        if hierarchy is not None:
            self._hierarchy = hierarchy
        else:
            if universe is None:
                raise ValueError("provide either a universe or a hierarchy")
            self._hierarchy = PersistentHeavyHitters(
                universe=universe,
                width=width,
                depth=depth,
                delta=delta,
                seed=seed,
            )

    @property
    def universe(self) -> int:
        """The value universe ``[0, n)``."""
        return self._hierarchy.universe

    def update(self, item: int, count: int = 1, time: int | None = None) -> None:  # sketchlint: disable=SL008 — delegates to the hierarchy's guarded clock
        """Ingest one update (values are the items being ranked)."""
        self._hierarchy.update(item, count, time)

    def ingest(self, stream: Stream) -> None:
        """Ingest a whole stream."""
        self._hierarchy.ingest(stream)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def rank(self, value: int, s: float = 0, t: float | None = None) -> float:
        """Estimated number of window elements ``<= value``."""
        if not 0 <= value < self.universe:
            raise ValueError(
                f"value {value} outside universe [0, {self.universe})"
            )
        return max(self._hierarchy.range_sum(0, value, s, t), 0.0)

    def range_count(
        self, lo: int, hi: int, s: float = 0, t: float | None = None
    ) -> float:
        """Estimated number of window elements in ``[lo, hi]``."""
        return max(self._hierarchy.range_sum(lo, hi, s, t), 0.0)

    def quantile(
        self, phi: float, s: float = 0, t: float | None = None
    ) -> int:
        """Approximate ``phi``-quantile of the window's values.

        Returns the smallest value whose estimated rank reaches
        ``phi * W`` (``W`` = estimated window mass), found by binary
        search over the universe — O(log n) rank queries, each O(log n)
        point queries.
        """
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must lie in [0, 1], got {phi}")
        s, t = self._hierarchy._resolve_window(s, t)
        target = phi * self._hierarchy.window_mass(s, t)
        lo, hi = 0, self.universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank(mid, s, t) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def median(self, s: float = 0, t: float | None = None) -> int:
        """Approximate window median."""
        return self.quantile(0.5, s, t)

    def quantiles(
        self, phis: list[float], s: float = 0, t: float | None = None
    ) -> list[int]:
        """Batch quantiles (sorted ``phis`` recommended)."""
        return [self.quantile(phi, s, t) for phi in phis]

    def persistence_words(self) -> int:
        """Space of the underlying hierarchy."""
        return self._hierarchy.persistence_words()
