"""Historical window Haar wavelet synopses.

Section 1.2 lists wavelets [16] among the queries built on point
queries.  The Haar coefficient of the window frequency vector at node
``(level, j)`` is

    c_{level,j} = (sum(left half) - sum(right half)) / sqrt(2^level)

— two dyadic range sums, which the persistent dyadic hierarchy answers
for *any past window*.  The classic wavelet synopsis keeps the ``B``
largest-magnitude coefficients; this module finds them with a best-first
search over the coefficient tree, pruning subtrees whose total window
mass already bounds every descendant coefficient below the current
``B``-th best (for any node with block sum ``S`` and size >= 2, every
coefficient in its subtree has magnitude at most ``S / sqrt(2)``).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.streams.model import Stream


@dataclass(frozen=True, slots=True)
class HaarCoefficient:
    """One Haar wavelet coefficient of a window frequency vector.

    ``level``/``position`` index the node: it covers values
    ``[position * 2^level, (position + 1) * 2^level)``, positive on the
    left half and negative on the right, scaled by ``2^{-level/2}``.
    """

    level: int
    position: int
    value: float

    @property
    def support(self) -> tuple[int, int]:
        """The covered value range ``[lo, hi]`` (inclusive)."""
        width = 1 << self.level
        lo = self.position * width
        return lo, lo + width - 1


class PersistentWavelets:
    """Top-B Haar synopses of any historical window.

    Parameters mirror :class:`~repro.core.quantiles.PersistentQuantiles`:
    either build a fresh dyadic hierarchy or share an existing one.
    """

    def __init__(
        self,
        universe: int | None = None,
        width: int = 1024,
        depth: int = 4,
        delta: float = 16,
        seed: int = 0,
        hierarchy: PersistentHeavyHitters | None = None,
    ):
        if hierarchy is not None:
            self._hierarchy = hierarchy
        else:
            if universe is None:
                raise ValueError("provide either a universe or a hierarchy")
            self._hierarchy = PersistentHeavyHitters(
                universe=universe, width=width, depth=depth, delta=delta,
                seed=seed,
            )
        # Haar needs a power-of-two domain; the hierarchy's level count
        # already rounds the universe up.
        self._log_n = self._hierarchy.levels
        self._n = 1 << self._log_n

    @property
    def universe(self) -> int:
        """The (power-of-two padded) Haar domain size."""
        return self._n

    def update(self, item: int, count: int = 1, time: int | None = None) -> None:  # sketchlint: disable=SL008 — delegates to the hierarchy's guarded clock
        """Ingest one update."""
        self._hierarchy.update(item, count, time)

    def ingest(self, stream: Stream) -> None:
        """Ingest a whole stream."""
        self._hierarchy.ingest(stream)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _block_sum(self, level: int, position: int, s: float, t: float) -> float:
        lo = position * (1 << level)
        hi = min(lo + (1 << level) - 1, self._hierarchy.universe - 1)
        if lo >= self._hierarchy.universe:
            return 0.0
        return self._hierarchy.range_sum(lo, hi, s, t)

    def coefficient(
        self, level: int, position: int, s: float = 0, t: float | None = None
    ) -> float:
        """Estimate one Haar coefficient of the window frequency vector."""
        if not 1 <= level <= self._log_n:
            raise ValueError(f"level must lie in [1, {self._log_n}]")
        if not 0 <= position < (self._n >> level):
            raise ValueError(
                f"position {position} out of range for level {level}"
            )
        s, t = self._hierarchy._resolve_window(s, t)
        left = self._block_sum(level - 1, 2 * position, s, t)
        right = self._block_sum(level - 1, 2 * position + 1, s, t)
        return (left - right) / math.sqrt(1 << level)

    def scaling_coefficient(self, s: float = 0, t: float | None = None) -> float:
        """The overall-average coefficient ``sum / sqrt(n)``."""
        s, t = self._hierarchy._resolve_window(s, t)
        return self._block_sum(self._log_n, 0, s, t) / math.sqrt(self._n)

    def top_coefficients(
        self, b: int, s: float = 0, t: float | None = None
    ) -> list[HaarCoefficient]:
        """The ~``b`` largest-magnitude Haar coefficients of the window.

        Best-first search: expand the node with the largest coefficient
        bound until the bound falls below the current ``b``-th best
        magnitude.  Exact up to estimation error in the range sums.
        """
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        s, t = self._hierarchy._resolve_window(s, t)

        best: list[tuple[float, HaarCoefficient]] = []  # min-heap by |c|

        def consider(coefficient: HaarCoefficient) -> None:
            entry = (abs(coefficient.value), coefficient)
            if len(best) < b:
                heapq.heappush(best, entry)
            elif entry[0] > best[0][0]:
                heapq.heapreplace(best, entry)

        def kth_best() -> float:
            return best[0][0] if len(best) == b else 0.0

        # Frontier entries: (-bound, level, position, block_sum).
        root_sum = self._block_sum(self._log_n, 0, s, t)
        frontier = [(-root_sum / math.sqrt(2.0), self._log_n, 0, root_sum)]
        while frontier:
            neg_bound, level, position, block_sum = heapq.heappop(frontier)
            if -neg_bound <= kth_best():
                break  # nothing left can enter the top-b
            left = self._block_sum(level - 1, 2 * position, s, t)
            right = block_sum - left
            consider(
                HaarCoefficient(
                    level=level,
                    position=position,
                    value=(left - right) / math.sqrt(1 << level),
                )
            )
            if level > 1:
                for child_pos, child_sum in (
                    (2 * position, left),
                    (2 * position + 1, right),
                ):
                    if child_sum > 0:
                        heapq.heappush(
                            frontier,
                            (
                                -child_sum / math.sqrt(2.0),
                                level - 1,
                                child_pos,
                                child_sum,
                            ),
                        )
        return sorted(
            (coefficient for _mag, coefficient in best),
            key=lambda c: abs(c.value),
            reverse=True,
        )

    def reconstruct(
        self,
        items: list[int],
        b: int = 16,
        s: float = 0,
        t: float | None = None,
    ) -> dict[int, float]:
        """Approximate window frequencies of ``items`` from a B-term synopsis.

        Sums the contributions of the scaling coefficient and the top-B
        wavelet coefficients at each item — the classic synopsis read.
        """
        s, t = self._hierarchy._resolve_window(s, t)
        coefficients = self.top_coefficients(b, s, t)
        scaling = self.scaling_coefficient(s, t)
        out: dict[int, float] = {}
        for item in items:
            value = scaling / math.sqrt(self._n)
            for coefficient in coefficients:
                lo, hi = coefficient.support
                if lo <= item <= hi:
                    half = (lo + hi + 1) // 2
                    sign = 1.0 if item < half else -1.0
                    value += (
                        sign
                        * coefficient.value
                        / math.sqrt(1 << coefficient.level)
                    )
            out[item] = value
        return out

    def persistence_words(self) -> int:
        """Space of the underlying hierarchy."""
        return self._hierarchy.persistence_words()
