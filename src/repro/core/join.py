"""Join-size estimation helpers across two streams (Section 4.1).

Two persistent AMS sketches can estimate the join size of their streams
over any historical window only if they share hash functions; these
helpers construct correctly paired sketches and expose the window-join
estimate together with the Theorem 4.2 error bound for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.persistent_ams import PersistentAMS


def make_ams_pair(
    width: int,
    depth: int,
    delta_f: float,
    delta_g: float | None = None,
    seed: int = 0,
    independent_copies: int = 1,
) -> tuple[PersistentAMS, PersistentAMS]:
    """Two persistent AMS sketches sharing hashes but not samples.

    ``delta_g`` defaults to ``delta_f``; per Theorem 4.2 the two streams
    may use different additive error parameters, but the ephemeral shape
    and hash seed must match.
    """
    sketch_f = PersistentAMS(
        width=width,
        depth=depth,
        delta=delta_f,
        seed=seed,
        independent_copies=independent_copies,
        sampling_seed=seed * 1_000_003 + 1,
    )
    sketch_g = PersistentAMS(
        width=width,
        depth=depth,
        delta=delta_g if delta_g is not None else delta_f,
        seed=seed,
        independent_copies=independent_copies,
        sampling_seed=seed * 1_000_003 + 2,
    )
    return sketch_f, sketch_g


@dataclass(frozen=True, slots=True)
class JoinEstimate:
    """A window join-size estimate with its Theorem 4.2 error bound."""

    value: float
    error_bound: float
    window: tuple[float, float]


def window_join_size(
    sketch_f: PersistentAMS,
    sketch_g: PersistentAMS,
    s: float = 0,
    t: float | None = None,
    l2_f: float | None = None,
    l2_g: float | None = None,
) -> JoinEstimate:
    """Estimate ``<f_{s,t}, g_{s,t}>`` with its a-priori error bound.

    The bound ``E = eps * sqrt((||f||_2^2 + (Delta_f/eps)^2) *
    (||g||_2^2 + (Delta_g/eps)^2))`` needs the true window L2 norms; when
    they are unknown (the usual case) pass ``None`` and the bound is
    reported as ``nan`` while the estimate itself is still computed.
    """
    value = sketch_f.join_size(sketch_g, s, t)
    if t is None:
        t = sketch_f.now
    eps = 1.0 / math.sqrt(sketch_f.width)
    if l2_f is None or l2_g is None:
        bound = float("nan")
    else:
        bound = eps * math.sqrt(
            (l2_f**2 + (sketch_f.delta / eps) ** 2)
            * (l2_g**2 + (sketch_g.delta / eps) ** 2)
        )
    return JoinEstimate(value=value, error_bound=bound, window=(s, t))
