"""The paper's contribution: persistent (multiversion) sketches.

* :class:`PersistentCountMin` — PLA-based persistent Count-Min ("PLA").
* :class:`PersistentAMS` — sampling-based persistent AMS ("Sample").
* :class:`PWCCountMin`, :class:`PWCAMS` — the Section 2 baselines.
* :class:`HistoricalCountMin`, :class:`HistoricalAMS` — the epoch-adaptive
  specializations for historical (s = 0) queries of Section 5.
* :class:`PersistentHeavyHitters` — dyadic heavy-hitter structure.
* :func:`make_ams_pair`, :func:`window_join_size` — join estimation
  across two streams.
"""

from __future__ import annotations

from repro.core.base import PersistentSketch
from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.historical_ams import HistoricalAMS
from repro.core.historical_countmin import HistoricalCountMin
from repro.core.historical_heavy_hitters import HistoricalHeavyHitters
from repro.core.join import JoinEstimate, make_ams_pair, window_join_size
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.core.quantiles import PersistentQuantiles
from repro.core.sliding import SlidingWindowView
from repro.core.wavelets import HaarCoefficient, PersistentWavelets

__all__ = [
    "PersistentSketch",
    "PersistentCountMin",
    "PWCCountMin",
    "PersistentAMS",
    "PWCAMS",
    "HistoricalCountMin",
    "HistoricalAMS",
    "PersistentHeavyHitters",
    "HistoricalHeavyHitters",
    "PersistentQuantiles",
    "PersistentWavelets",
    "HaarCoefficient",
    "SlidingWindowView",
    "JoinEstimate",
    "make_ams_pair",
    "window_join_size",
]
