"""Shared machinery for the persistent sketches.

All persistent sketches ingest a stream of ``(item, count, time)`` updates
with strictly increasing integer timestamps (the discrete time model of
Section 1.2: update ``e_t`` arrives at time ``t``; ticks may be skipped).
When the caller does not supply timestamps, updates are assigned
consecutive ticks starting at 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis import contracts
from repro.core.buffer import DEFAULT_WINDOW, UpdateBuffer
from repro.parallel import IngestError, WorkerPool, fork_available
from repro.streams.model import Stream

if TYPE_CHECKING:  # repro.engine depends on repro.core; import lazily.
    from repro.engine.frozen import (
        FrozenAMS,
        FrozenCountMin,
        FrozenHeavyHitters,
        FrozenPWCAMS,
    )
    from repro.parallel.pool import WorkerHandler


class PersistentSketch(ABC):
    """Base class: clock management, bulk ingest, worker-pool lifecycle.

    With ``workers > 1`` a sketch that supports partition-parallel
    ingestion (:meth:`_parallel_supported`) routes every validated batch
    to a pool of forked workers, each *owning* a fixed partition of the
    sketch's independent state (hash rows, time shards, dyadic levels)
    for the life of the pool.  Worker state is merged back lazily: any
    query, freeze, serialization or scalar update first drains the pool
    (:meth:`_ensure_synced` / :meth:`detach_workers`), so callers never
    observe a half-merged sketch and parallel output stays bit-identical
    to serial.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._clock = 0
        self._workers = int(workers)
        self._pool: WorkerPool | None = None
        self._pool_stale = False
        self._pool_broken = False
        self._buffer: UpdateBuffer | None = None
        self._buffer_flushing = False

    @property
    def workers(self) -> int:
        """Worker-pool width used for parallel batch plans (1 = serial)."""
        return self._workers

    def set_workers(self, workers: int) -> None:
        """Change the pool width; takes effect on the next batch.

        Drains and retires any live pool first, so resizing never loses
        updates and is safe at any point between batches.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.detach_workers()
        self._workers = int(workers)

    @property
    def now(self) -> int:
        """Timestamp of the most recent update (0 before any update)."""
        return self._clock

    # ------------------------------------------------------------------ #
    # Update-buffer tier (two-stage ingest; see repro.core.buffer)
    # ------------------------------------------------------------------ #

    def configure_buffer(
        self, window: int | None = DEFAULT_WINDOW, mode: str = "exact"
    ) -> None:
        """Enable (or, with ``window=None``, disable) the update buffer.

        With a buffer configured, validated updates are absorbed at
        array-append cost and fed to the batch plan one ``window`` at a
        time; ``mode="coalesce"`` additionally merges same-item touches
        per window (lossy — see :mod:`repro.core.buffer` for the widened
        error bound).  Any staged updates are flushed before the
        configuration changes, so switching is always safe mid-stream.
        """
        self.flush_buffer()
        if window is None:
            self._buffer = None
        else:
            self._buffer = UpdateBuffer(window=window, mode=mode)

    @property
    def buffered(self) -> bool:
        """Whether the update-buffer tier is enabled."""
        return self._buffer is not None

    def flush_buffer(self) -> None:
        """Feed staged buffered updates through the normal batch plan.

        Every query, freeze, serialization or worker drain funnels
        through here (via :meth:`_ensure_synced`), so callers never
        observe a sketch that lags its absorbed stream.  The sketch
        clock is *not* rewound by the replayed tail: absorbed updates
        already advanced it at absorption time.
        """
        buffer = self._buffer
        if buffer is None or self._buffer_flushing or len(buffer) == 0:
            return
        self._buffer_flushing = True
        clock = self._clock
        try:
            buffer.flush(self._apply_batch)
        finally:
            self._buffer_flushing = False
            self._clock = clock

    def buffer_stats(self) -> dict | None:
        """Buffer accounting (``None`` when unbuffered); see
        :meth:`repro.core.buffer.UpdateBuffer.stats`."""
        buffer = self._buffer
        return None if buffer is None else buffer.stats()

    def update(self, item: int, count: int = 1, time: int | None = None) -> None:
        """Ingest one update.

        Parameters
        ----------
        item:
            Element identifier (any non-negative integer).
        count:
            Frequency change; ``+1`` in the cash-register model, ``+/-1``
            in the turnstile model.
        time:
            Integer timestamp, strictly greater than all previous ones.
            Auto-incremented when omitted.
        """
        if time is None:
            time = self._clock + 1
        elif time <= self._clock:
            raise ValueError(
                f"timestamps must be strictly increasing: {time} <= "
                f"{self._clock}"
            )
        if self._buffer is not None:
            # Buffered absorption touches no sketch state, so the pool
            # can stay attached; the eventual flush goes through the
            # same batch dispatch a direct batch would.
            self._buffer.absorb_scalar(time, item, count, self._apply_batch)
            self._clock = time
            return
        # Scalar updates mutate master-side state the forked workers can
        # never see; merge and retire any pool first so the next parallel
        # batch re-forks from the post-update state.
        self.detach_workers()
        # Apply before advancing the clock: a rejected update (bad item,
        # turnstile violation, ...) must not leave the clock pointing at
        # a time no structure ever recorded, or every later default-
        # window query would ask the sub-sketches about their future.
        self._ingest(item, count, time)
        self._clock = time

    def ingest(self, stream: Stream, batch_size: int = 8192) -> None:
        """Ingest a whole :class:`~repro.streams.model.Stream`.

        A thin wrapper over the chunked batch planner: the stream is cut
        into ``batch_size`` chunks and each chunk goes through
        :meth:`ingest_batch`.  Bit-identical to a loop of scalar
        :meth:`update` calls for every chunk size.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        n = len(stream)
        times = np.asarray(stream.times, dtype=np.int64)
        items = np.asarray(stream.items, dtype=np.int64)
        counts = np.asarray(stream.counts, dtype=np.int64)
        for lo in range(0, n, batch_size):
            hi = min(lo + batch_size, n)
            self.ingest_batch(times[lo:hi], items[lo:hi], counts[lo:hi])

    def ingest_batch(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray | None = None,
    ) -> None:
        """Ingest a column of updates at once.

        Validates the whole batch up front — equal lengths, first time
        beyond the clock (:class:`ValueError`, as scalar :meth:`update`
        raises), strictly increasing times inside the batch
        (:class:`~repro.analysis.contracts.ContractViolation`) — then
        hands the columns to the sketch's batch plan.  State after the
        call is bit-identical to the scalar :meth:`update` loop; no state
        is touched when validation fails.  ``counts`` defaults to
        all-ones (the cash-register model).
        """
        times = np.asarray(times, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        n = times.shape[0]
        if counts is None:
            counts = np.ones(n, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        if items.shape[0] != n or counts.shape[0] != n:
            raise ValueError(
                "times, items and counts must have equal lengths, got "
                f"{n}/{items.shape[0]}/{counts.shape[0]}"
            )
        if n == 0:
            return
        if int(times[0]) <= self._clock:
            raise ValueError(
                f"stream starts at {int(times[0])} but the sketch "
                f"clock is already at {self._clock}"
            )
        if n > 1:
            gaps = np.diff(times)
            if int(gaps.min()) <= 0:
                bad = int(np.argmax(gaps <= 0))
                raise contracts.ContractViolation(
                    f"batch stream timestamps must be strictly increasing: "
                    f"times[{bad + 1}]={int(times[bad + 1])} <= "
                    f"times[{bad}]={int(times[bad])}"
                )
        if self._buffer is not None:
            self._buffer.absorb(times, items, counts, self._apply_batch)
        else:
            self._apply_batch(times, items, counts)
        self._clock = int(times[-1])

    def _apply_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Dispatch one validated batch to the serial or pooled plan.

        The single hand-off point below the buffer tier: unbuffered
        batches come straight from :meth:`ingest_batch`, buffered ones
        from :meth:`flush_buffer` — both take exactly this path, which
        is what makes exact-mode buffering bit-identical to unbuffered
        ingestion (chunk boundaries are invisible to the batch plan).
        """
        if (
            self._workers > 1
            and self._parallel_supported()
            and fork_available()
        ):
            self._ingest_batch_via_pool(times, items, counts)
        else:
            self._ingest_batch(times, items, counts)

    # ------------------------------------------------------------------ #
    # Worker-pool lifecycle
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        """Whether this sketch type has a partition-parallel batch plan."""
        return False

    def _worker_handler(self, index: int, nworkers: int) -> WorkerHandler:
        """Build worker ``index``'s handler *inside* the forked child.

        ``self`` here is the fork-inherited copy of the master, so the
        handler can take ownership of its partition's live state without
        any serialization cost.
        """
        raise NotImplementedError

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        """Partition one validated batch and feed it to the pool."""
        raise NotImplementedError

    def _install_worker_states(self, states: list[Any]) -> None:
        """Merge every worker's collected partition state into master."""
        raise NotImplementedError

    def _prevalidate_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Content checks a serial plan performs before touching state.

        Runs *before* the parallel dispatch's poison scope, so a batch
        the serial plan would reject cleanly (bad item, expired shard)
        is rejected just as cleanly in parallel — no worker sees it and
        the sketch stays usable.
        """

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(self._workers, self._worker_handler)
        return self._pool

    def _ingest_batch_via_pool(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        if self._pool_broken:
            raise IngestError(
                "parallel workers previously failed with unmerged updates; "
                "rebuild the sketch (e.g. recover from the WAL)"
            )
        self._prevalidate_batch(times, items, counts)
        try:
            pool = self._ensure_pool()
            self._ingest_batch_parallel(times, items, counts, pool)
        except BaseException:
            # The batch may be half-applied across workers and the
            # master's RNG/counter side may have advanced: poison the
            # sketch so queries refuse stale answers.  A durable
            # front-end (the runtime WAL) replays everything on recovery.
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.close(terminate=True)
            self._pool_broken = True
            raise
        self._pool_stale = True

    def _ensure_synced(self) -> None:
        """Flush the buffer tier and merge outstanding worker state.

        The buffer flush comes first: a flush may itself feed the pool,
        and the collect below then drains exactly what it produced.
        After this returns, master state reflects every absorbed update
        (the pool stays alive for the next batch).
        """
        self.flush_buffer()
        if self._pool_broken:
            raise IngestError(
                "parallel workers died with unmerged updates; the sketch "
                "refuses to serve stale answers — recover from the WAL"
            )
        if not self._pool_stale:
            return
        pool = self._pool
        if pool is None or pool.closed:
            self._pool_broken = True
            raise IngestError(
                "worker pool vanished with unmerged updates; recover "
                "from the WAL"
            )
        try:
            self._install_worker_states(pool.collect())
        except BaseException:
            self._pool = None
            self._pool_broken = True
            pool.close(terminate=True)
            raise
        self._pool_stale = False

    def detach_workers(self) -> None:
        """Merge worker state and retire the pool (re-forked on demand).

        Required before any master-side mutation a forked worker cannot
        observe: scalar updates, finalize, freeze, serialization, shard
        expiry.  A no-op for serial sketches.
        """
        try:
            self._ensure_synced()
        finally:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.close()

    def __getstate__(self) -> dict[str, Any]:
        # Pipes and child processes cannot cross pickle; drain first so
        # the pickled state is complete, then drop the pool itself.
        self.detach_workers()
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Apply one clock-validated batch; override with a columnar plan.

        The fallback replays the batch through :meth:`_ingest` one record
        at a time, advancing the clock per record so nested sketches see
        exactly the sequence scalar :meth:`update` calls would produce.
        """
        for t, i, c in zip(times.tolist(), items.tolist(), counts.tolist()):  # sketchlint: disable=SL010 — scalar reference fallback
            self._ingest(i, c, t)
            self._clock = t

    @abstractmethod
    def _ingest(self, item: int, count: int, time: int) -> None:
        """Apply one clock-validated update."""

    @abstractmethod
    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]``; ``t`` defaults to :attr:`now`."""

    @abstractmethod
    def persistence_words(self) -> int:
        """Extra space (machine words) used to make the sketch persistent.

        This is the quantity Section 6.2 plots: the recorded histories,
        excluding the ephemeral counter array.
        """

    def freeze(
        self, workers: int | None = None
    ) -> FrozenCountMin | FrozenPWCAMS | FrozenAMS | FrozenHeavyHitters:
        """Compile this sketch into a frozen columnar query snapshot.

        Delegates to :func:`repro.engine.frozen.freeze` (imported lazily:
        ``repro.engine`` depends on ``repro.core``, not the other way
        around).  The snapshot answers ``point`` / ``point_many`` /
        holistic queries bit-equal to the live path; see
        :mod:`repro.engine.frozen`.  ``workers`` overrides the sketch's
        pool width for table construction and ``point_many`` fan-out.
        """
        from repro.engine.frozen import freeze

        return freeze(self, workers=workers)

    def _resolve_window(self, s: float, t: float | None) -> tuple[float, float]:
        # Every query funnels through here: merge any outstanding worker
        # state first so answers never lag the ingested stream.
        self._ensure_synced()
        if t is None:
            t = self._clock
        elif t > self._clock:
            raise ValueError(
                f"window end {t} lies beyond the last update at "
                f"{self._clock}; queries cannot extrapolate past now"
            )
        if s < 0:
            s = 0  # nothing precedes time 0; clamp instead of extrapolating
        if s > t:
            raise ValueError(f"empty window: s={s} > t={t}")
        return s, t
