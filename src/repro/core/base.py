"""Shared machinery for the persistent sketches.

All persistent sketches ingest a stream of ``(item, count, time)`` updates
with strictly increasing integer timestamps (the discrete time model of
Section 1.2: update ``e_t`` arrives at time ``t``; ticks may be skipped).
When the caller does not supply timestamps, updates are assigned
consecutive ticks starting at 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.streams.model import Stream

if TYPE_CHECKING:  # repro.engine depends on repro.core; import lazily.
    from repro.engine.frozen import (
        FrozenAMS,
        FrozenCountMin,
        FrozenHeavyHitters,
        FrozenPWCAMS,
    )


class PersistentSketch(ABC):
    """Base class: clock management and bulk ingest."""

    def __init__(self) -> None:
        self._clock = 0

    @property
    def now(self) -> int:
        """Timestamp of the most recent update (0 before any update)."""
        return self._clock

    def update(self, item: int, count: int = 1, time: int | None = None) -> None:
        """Ingest one update.

        Parameters
        ----------
        item:
            Element identifier (any non-negative integer).
        count:
            Frequency change; ``+1`` in the cash-register model, ``+/-1``
            in the turnstile model.
        time:
            Integer timestamp, strictly greater than all previous ones.
            Auto-incremented when omitted.
        """
        if time is None:
            time = self._clock + 1
        elif time <= self._clock:
            raise ValueError(
                f"timestamps must be strictly increasing: {time} <= "
                f"{self._clock}"
            )
        # Apply before advancing the clock: a rejected update (bad item,
        # turnstile violation, ...) must not leave the clock pointing at
        # a time no structure ever recorded, or every later default-
        # window query would ask the sub-sketches about their future.
        self._ingest(item, count, time)
        self._clock = time

    def ingest(self, stream: Stream) -> None:
        """Ingest a whole :class:`~repro.streams.model.Stream`."""
        for t, i, c in zip(stream.times, stream.items, stream.counts):
            self.update(int(i), int(c), int(t))

    @abstractmethod
    def _ingest(self, item: int, count: int, time: int) -> None:
        """Apply one clock-validated update."""

    @abstractmethod
    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]``; ``t`` defaults to :attr:`now`."""

    @abstractmethod
    def persistence_words(self) -> int:
        """Extra space (machine words) used to make the sketch persistent.

        This is the quantity Section 6.2 plots: the recorded histories,
        excluding the ephemeral counter array.
        """

    def freeze(self) -> FrozenCountMin | FrozenPWCAMS | FrozenAMS | FrozenHeavyHitters:
        """Compile this sketch into a frozen columnar query snapshot.

        Delegates to :func:`repro.engine.frozen.freeze` (imported lazily:
        ``repro.engine`` depends on ``repro.core``, not the other way
        around).  The snapshot answers ``point`` / ``point_many`` /
        holistic queries bit-equal to the live path; see
        :mod:`repro.engine.frozen`.
        """
        from repro.engine.frozen import freeze

        return freeze(self)

    def _resolve_window(self, s: float, t: float | None) -> tuple[float, float]:
        if t is None:
            t = self._clock
        elif t > self._clock:
            raise ValueError(
                f"window end {t} lies beyond the last update at "
                f"{self._clock}; queries cannot extrapolate past now"
            )
        if s < 0:
            s = 0  # nothing precedes time 0; clamp instead of extrapolating
        if s > t:
            raise ValueError(f"empty window: s={s} > t={t}")
        return s, t
