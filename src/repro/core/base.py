"""Shared machinery for the persistent sketches.

All persistent sketches ingest a stream of ``(item, count, time)`` updates
with strictly increasing integer timestamps (the discrete time model of
Section 1.2: update ``e_t`` arrives at time ``t``; ticks may be skipped).
When the caller does not supply timestamps, updates are assigned
consecutive ticks starting at 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis import contracts
from repro.streams.model import Stream

if TYPE_CHECKING:  # repro.engine depends on repro.core; import lazily.
    from repro.engine.frozen import (
        FrozenAMS,
        FrozenCountMin,
        FrozenHeavyHitters,
        FrozenPWCAMS,
    )


class PersistentSketch(ABC):
    """Base class: clock management and bulk ingest."""

    def __init__(self) -> None:
        self._clock = 0

    @property
    def now(self) -> int:
        """Timestamp of the most recent update (0 before any update)."""
        return self._clock

    def update(self, item: int, count: int = 1, time: int | None = None) -> None:
        """Ingest one update.

        Parameters
        ----------
        item:
            Element identifier (any non-negative integer).
        count:
            Frequency change; ``+1`` in the cash-register model, ``+/-1``
            in the turnstile model.
        time:
            Integer timestamp, strictly greater than all previous ones.
            Auto-incremented when omitted.
        """
        if time is None:
            time = self._clock + 1
        elif time <= self._clock:
            raise ValueError(
                f"timestamps must be strictly increasing: {time} <= "
                f"{self._clock}"
            )
        # Apply before advancing the clock: a rejected update (bad item,
        # turnstile violation, ...) must not leave the clock pointing at
        # a time no structure ever recorded, or every later default-
        # window query would ask the sub-sketches about their future.
        self._ingest(item, count, time)
        self._clock = time

    def ingest(self, stream: Stream, batch_size: int = 8192) -> None:
        """Ingest a whole :class:`~repro.streams.model.Stream`.

        A thin wrapper over the chunked batch planner: the stream is cut
        into ``batch_size`` chunks and each chunk goes through
        :meth:`ingest_batch`.  Bit-identical to a loop of scalar
        :meth:`update` calls for every chunk size.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        n = len(stream)
        times = np.asarray(stream.times, dtype=np.int64)
        items = np.asarray(stream.items, dtype=np.int64)
        counts = np.asarray(stream.counts, dtype=np.int64)
        for lo in range(0, n, batch_size):
            hi = min(lo + batch_size, n)
            self.ingest_batch(times[lo:hi], items[lo:hi], counts[lo:hi])

    def ingest_batch(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray | None = None,
    ) -> None:
        """Ingest a column of updates at once.

        Validates the whole batch up front — equal lengths, first time
        beyond the clock (:class:`ValueError`, as scalar :meth:`update`
        raises), strictly increasing times inside the batch
        (:class:`~repro.analysis.contracts.ContractViolation`) — then
        hands the columns to the sketch's batch plan.  State after the
        call is bit-identical to the scalar :meth:`update` loop; no state
        is touched when validation fails.  ``counts`` defaults to
        all-ones (the cash-register model).
        """
        times = np.asarray(times, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        n = times.shape[0]
        if counts is None:
            counts = np.ones(n, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        if items.shape[0] != n or counts.shape[0] != n:
            raise ValueError(
                "times, items and counts must have equal lengths, got "
                f"{n}/{items.shape[0]}/{counts.shape[0]}"
            )
        if n == 0:
            return
        if int(times[0]) <= self._clock:
            raise ValueError(
                f"stream starts at {int(times[0])} but the sketch "
                f"clock is already at {self._clock}"
            )
        if n > 1:
            gaps = np.diff(times)
            if int(gaps.min()) <= 0:
                bad = int(np.argmax(gaps <= 0))
                raise contracts.ContractViolation(
                    f"batch stream timestamps must be strictly increasing: "
                    f"times[{bad + 1}]={int(times[bad + 1])} <= "
                    f"times[{bad}]={int(times[bad])}"
                )
        self._ingest_batch(times, items, counts)
        self._clock = int(times[-1])

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Apply one clock-validated batch; override with a columnar plan.

        The fallback replays the batch through :meth:`_ingest` one record
        at a time, advancing the clock per record so nested sketches see
        exactly the sequence scalar :meth:`update` calls would produce.
        """
        for t, i, c in zip(times.tolist(), items.tolist(), counts.tolist()):  # sketchlint: disable=SL010 — scalar reference fallback
            self._ingest(i, c, t)
            self._clock = t

    @abstractmethod
    def _ingest(self, item: int, count: int, time: int) -> None:
        """Apply one clock-validated update."""

    @abstractmethod
    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]``; ``t`` defaults to :attr:`now`."""

    @abstractmethod
    def persistence_words(self) -> int:
        """Extra space (machine words) used to make the sketch persistent.

        This is the quantity Section 6.2 plots: the recorded histories,
        excluding the ephemeral counter array.
        """

    def freeze(self) -> FrozenCountMin | FrozenPWCAMS | FrozenAMS | FrozenHeavyHitters:
        """Compile this sketch into a frozen columnar query snapshot.

        Delegates to :func:`repro.engine.frozen.freeze` (imported lazily:
        ``repro.engine`` depends on ``repro.core``, not the other way
        around).  The snapshot answers ``point`` / ``point_many`` /
        holistic queries bit-equal to the live path; see
        :mod:`repro.engine.frozen`.
        """
        from repro.engine.frozen import freeze

        return freeze(self)

    def _resolve_window(self, s: float, t: float | None) -> tuple[float, float]:
        if t is None:
            t = self._clock
        elif t > self._clock:
            raise ValueError(
                f"window end {t} lies beyond the last update at "
                f"{self._clock}; queries cannot extrapolate past now"
            )
        if s < 0:
            s = 0  # nothing precedes time 0; clamp instead of extrapolating
        if s > t:
            raise ValueError(f"empty window: s={s} > t={t}")
        return s, t
