"""The PLA-based persistent Count-Min sketch (Section 3) and its
piecewise-constant baseline (Section 2).

Every counter ``C[j][k]`` of an ephemeral Count-Min sketch is tracked over
time by a per-counter history compressor (a
:class:`~repro.persistence.tracker.CounterTracker`): O'Rourke's online PLA
with additive error ``Delta`` for the paper's technique, or the
record-on-deviation piecewise-constant recorder for the baseline.
Trackers are created lazily, on a counter's first update, so untouched
counters cost nothing.

A historical-window point query ``(i, (s, t])`` reconstructs
``C_t[j][h_j(i)] - C_s[j][h_j(i)]`` from the histories and returns the
median over rows (not the minimum: the reconstruction error is two-sided).
Theorem 3.1 bounds the error by ``eps * ||f_{s,t}||_1 + Delta`` with
probability ``1 - delta``.
"""

from __future__ import annotations

from statistics import median
from typing import Callable

import numpy as np

from repro.core import columnar
from repro.core.base import PersistentSketch
from repro.hashing import BucketHashFamily, HashConfig
from repro.hashing.families import IdentityHashFamily
from repro.parallel.pool import WorkerPool
from repro.persistence.tracker import (
    CounterTracker,
    PWCTracker,
    YoungPLATracker,
)


def _pla_tracker_factory(delta: float, initial_value: float) -> YoungPLATracker:
    """Default tracker factory; module-level so sketches stay picklable
    (shard and level sub-sketches cross worker pipes whole).  Returns the
    slim young tier: first touch stages one point, the full O'Rourke
    machinery materializes on the second feed — answers are bit-identical
    to an eager :class:`~repro.persistence.tracker.PLATracker` throughout
    (see ``YoungPLATracker``), and high-cardinality streams skip ~all of
    the construction cost for their long one-touch tail."""
    return YoungPLATracker(delta=delta, initial_value=initial_value)


def _pwc_tracker_factory(delta: float, initial_value: float) -> PWCTracker:
    """PWC tracker factory; module-level for the same pickling reason."""
    return PWCTracker(delta=delta, initial_value=initial_value)


class PersistentCountMin(PersistentSketch):
    """Persistent Count-Min sketch, generic in the history compressor.

    Parameters
    ----------
    width, depth:
        Shape of the underlying Count-Min sketch (``w = O(1/eps)``,
        ``d = O(log 1/delta)``).
    delta:
        Additive persistence error ``Delta`` of Theorems 3.1/3.2.
    seed:
        Hash seed.
    tracker_factory:
        Callable ``(delta, initial_value) -> CounterTracker``; defaults to
        the PLA tracker.  :class:`PWCCountMin` plugs in the
        piecewise-constant recorder instead.
    """

    #: Display name used by the evaluation harness (paper's legend).
    name = "PLA"

    def __init__(
        self,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        tracker_factory: Callable[[float, float], CounterTracker] | None = None,
        hashes: BucketHashFamily | IdentityHashFamily | None = None,
        workers: int = 1,
    ):
        super().__init__(workers=workers)
        self.width = width
        self.depth = depth
        self.delta = float(delta)
        self.seed = seed
        self.hashes = hashes or BucketHashFamily(
            HashConfig(width=width, depth=depth, seed=seed)
        )
        if self.hashes.width != width or self.hashes.depth != depth:
            raise ValueError("hash family shape does not match sketch shape")
        self._tracker_factory = tracker_factory or _pla_tracker_factory
        # Current counter values and lazily created per-counter trackers.
        self._counters: list[list[int]] = [
            [0] * width for _ in range(depth)
        ]
        self._trackers: list[dict[int, CounterTracker]] = [
            {} for _ in range(depth)
        ]
        self.total = 0

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def _ingest(self, item: int, count: int, time: int) -> None:
        cols = self.hashes.buckets(item)
        for row in range(self.depth):
            col = cols[row]
            counters = self._counters[row]
            value = counters[col] + count
            counters[col] = value
            trackers = self._trackers[row]
            tracker = trackers.get(col)
            if tracker is None:
                tracker = self._tracker_factory(self.delta, 0.0)
                trackers[col] = tracker
            tracker.feed(time, value)
        self.total += count

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: vectorized hashing, per-(row, col) change runs."""
        columns = self.hashes.buckets_many(items)
        for row in range(self.depth):
            columnar.feed_tracked_row(
                self._counters[row],
                self._trackers[row],
                columns[row],
                times,
                counts,
                lambda: self._tracker_factory(self.delta, 0.0),
            )
        self.total += int(counts.sum())

    # ------------------------------------------------------------------ #
    # Row-parallel plan (hash rows evolve independently; Section 3.2)
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        return True

    def _make_tracker(self) -> CounterTracker:
        return self._tracker_factory(self.delta, 0.0)

    def _worker_handler(
        self, index: int, nworkers: int
    ) -> columnar.TrackedRowWorker:
        return columnar.TrackedRowWorker(
            self._counters, self._trackers, self._make_tracker, index, nworkers
        )

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        columns = self.hashes.buckets_many(items)
        columnar.feed_rows_parallel(
            pool,
            times,
            [(columns[row], counts) for row in range(self.depth)],
        )
        self.total += int(counts.sum())

    def _install_worker_states(self, states: list) -> None:
        columnar.install_row_states(self._counters, self._trackers, states)

    def finalize(self) -> None:
        """Flush open PLA runs.  Optional: queries also work mid-stream."""
        self.detach_workers()
        for trackers in self._trackers:
            for tracker in trackers.values():
                tracker.finalize()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def counter_at(self, row: int, col: int, t: float) -> float:
        """Approximate value of counter ``C[row][col]`` at time ``t``."""
        self._ensure_synced()
        tracker = self._trackers[row].get(col)
        if tracker is None:
            return 0.0
        return tracker.value_at(t)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` (Theorem 3.1 error bound)."""
        s, t = self._resolve_window(s, t)
        cols = self.hashes.buckets(item)
        estimates = []
        for row in range(self.depth):
            high = self.counter_at(row, cols[row], t)
            low = self.counter_at(row, cols[row], s) if s > 0 else 0.0
            estimates.append(high - low)
        return median(estimates)

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Count-Min style self-join estimate over the window.

        Included because the paper's Figures 9-10 evaluate
        ``PWC_CountMin`` on self-join queries; as Section 4.2 explains,
        the deterministic per-counter bias is amplified here, so no error
        guarantee is claimed.  Uses the classic minimum over rows.
        """
        s, t = self._resolve_window(s, t)
        best = None
        for row in range(self.depth):
            total = 0.0
            trackers = self._trackers[row]
            # Sorted column order: keeps the float accumulation order
            # deterministic and identical to the frozen query path.
            for col in sorted(trackers):
                tracker = trackers[col]
                diff = tracker.value_at(t) - (
                    tracker.value_at(s) if s > 0 else 0.0
                )
                total += diff * diff
            if best is None or total < best:
                best = total
        return best or 0.0

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def persistence_words(self) -> int:
        self._ensure_synced()
        return sum(
            tracker.words()
            for trackers in self._trackers
            for tracker in trackers.values()
        )

    def ephemeral_words(self) -> int:
        """Size of the underlying counter array."""
        return self.width * self.depth


class PWCCountMin(PersistentCountMin):
    """The ``PWC_CountMin`` baseline: piecewise-constant counter records."""

    name = "PWC_CountMin"

    def __init__(
        self,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        hashes: BucketHashFamily | IdentityHashFamily | None = None,
        workers: int = 1,
    ):
        super().__init__(
            width=width,
            depth=depth,
            delta=delta,
            seed=seed,
            tracker_factory=_pwc_tracker_factory,
            hashes=hashes,
            workers=workers,
        )
