"""Two-stage buffered update path: the slim front tier.

High-cardinality streams hit an ingest wall that no run planner can
crack: when nearly every update touches a different counter, per-update
work is dominated by the persistence trackers themselves, and the batch
path degenerates to the scalar loop plus overhead (BENCH_ingest.json
pre-v4: ObjectID at 0.74x scalar).  The fix, following SF-sketch's
slim/fat split and Alman & Yu's buffered turnstile updates (PAPERS.md),
is a *front tier* that absorbs updates at array-append cost and flushes
them to the trackers in amortized bulk.

:class:`UpdateBuffer` implements that tier.  It stages validated update
columns for a :class:`~repro.core.base.PersistentSketch` and hands them
back to the sketch's normal batch plan (``apply``) one *window* at a
time:

``exact`` mode
    The flush replays the staged columns verbatim.  Chunk boundaries
    are invisible to the batch plan (pinned by
    ``tests/test_batch_ingest.py::test_chunk_boundaries_are_invisible``),
    so buffered ingestion is **bit-identical** to unbuffered ingestion
    for every sketch type — the win is amortization only: bigger
    effective batches mean deeper per-counter runs and fewer planner
    passes.  The Delta error accounting of Theorems 3.1/3.2 is
    untouched.

``coalesce`` mode (lossy-by-design)
    Same-item touches inside a window are merged to one net update at
    the item's *last* touch time before the flush.  A window with k
    touches of an item costs one tracker feed instead of k — on
    ID-heavy traffic this is the 5x+ lever (ObjectID coalesces ~4x,
    ClientID ~7x per 10k-record window).  The flushed column is still a
    valid time-ordered update batch (last-touch times are distinct and
    sorted), so it flows through the *same* exact batch plan for every
    sketch type.  The cost is a widened error bound: within a window a
    counter's recorded trajectory lags its true trajectory by at most
    the absolute update mass that counter absorbed in the window, so a
    historical point query inside window ``w`` carries an extra
    ``+/- M_w`` per endpoint on top of the PLA bound, where ``M_w`` is
    the per-counter absorbed mass of that window (``<=`` the per-item
    mass tracked in :meth:`UpdateBuffer.stats` as ``max_item_mass``;
    exact counter-level values require the hash family and are gated in
    ``benchmarks/bench_ingest_throughput.py``).  Queries and freezes
    always flush first, so estimates *at or after* the flush boundary
    are never widened — only mid-window history is.  See
    ``docs/api.md`` ("The update-buffer tier") for the full accounting.

Flush points are deterministic where determinism matters: window-full
flushes land at exact multiples of ``window`` in absorbed-record count
(incoming batches are split, so chunking cannot move them), and
checkpoint flushes ride the runtime's fixed checkpoint cadence — which
is what makes crash recovery replay the buffered tail bit-identically
from the WAL.  Query-driven flushes are extra boundaries that exist
only on the live path; they are invisible in ``exact`` mode and
documented as divergence points for ``coalesce`` mode.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Default window: large enough that high-cardinality windows coalesce
#: several same-item touches, small enough that a buffered tail replay
#: stays cheap after a crash.
DEFAULT_WINDOW = 65_536

#: The two buffering disciplines; see the module docstring.
MODES = ("exact", "coalesce")

Apply = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


class UpdateBuffer:
    """Coalescing front tier for one sketch's validated update columns.

    The buffer never touches sketch state itself: every flush hands a
    time-ordered update batch to ``apply`` (the sketch's serial-or-pool
    batch dispatch), which is exactly the path unbuffered batches take.
    Callers guarantee absorbed columns are already validated (equal
    lengths, strictly increasing times beyond the sketch clock) —
    the buffer preserves absorption order, so concatenated staged
    columns stay strictly increasing.
    """

    __slots__ = (
        "window",
        "mode",
        "_chunks",
        "_scalar_times",
        "_scalar_items",
        "_scalar_counts",
        "_pending",
        "absorbed",
        "fed",
        "flushes",
        "max_item_mass",
    )

    def __init__(
        self, window: int = DEFAULT_WINDOW, mode: str = "exact"
    ) -> None:
        if window < 1:
            raise ValueError(f"buffer window must be >= 1, got {window}")
        if mode not in MODES:
            raise ValueError(
                f"buffer mode must be one of {MODES}, got {mode!r}"
            )
        self.window = int(window)
        self.mode = mode
        #: Staged ``(times, items, counts)`` array triples, absorption
        #: order; scalar updates stage in plain lists until an array
        #: absorb or a flush folds them into a chunk.
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._scalar_times: list[int] = []
        self._scalar_items: list[int] = []
        self._scalar_counts: list[int] = []
        self._pending = 0
        #: Lifetime counters surfaced by :meth:`stats`.
        self.absorbed = 0
        self.fed = 0
        self.flushes = 0
        self.max_item_mass = 0

    def __len__(self) -> int:
        """Records absorbed but not yet flushed."""
        return self._pending

    # ------------------------------------------------------------------ #
    # Absorb
    # ------------------------------------------------------------------ #

    def absorb(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        apply: Apply,
    ) -> None:
        """Stage one validated batch, flushing at window multiples.

        Incoming batches are *split* so every window-full flush lands at
        an exact multiple of ``window`` in absorbed-record count — flush
        boundaries are therefore a function of the record stream alone,
        never of how callers chunked it.  That is what makes a WAL
        replay (which re-chunks arbitrarily) reproduce the same flush
        points and hence, in exact mode, bit-identical state.
        """
        n = times.shape[0]
        self.absorbed += n
        lo = 0
        while self._pending + (n - lo) >= self.window:
            take = self.window - self._pending
            self._stage(
                times[lo : lo + take],
                items[lo : lo + take],
                counts[lo : lo + take],
            )
            self._flush(apply)
            lo += take
        if lo < n:
            self._stage(times[lo:], items[lo:], counts[lo:])

    def absorb_scalar(
        self, time: int, item: int, count: int, apply: Apply
    ) -> None:
        """Stage one validated update at list-append cost."""
        self.absorbed += 1
        self._scalar_times.append(time)
        self._scalar_items.append(item)
        self._scalar_counts.append(count)
        self._pending += 1
        if self._pending >= self.window:
            self._flush(apply)

    def _stage(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        if times.shape[0] == 0:
            return
        if self._scalar_times:
            self._fold_scalars()
        self._chunks.append((times, items, counts))
        self._pending += times.shape[0]

    def _fold_scalars(self) -> None:
        """Convert the scalar staging lists into an array chunk in place."""
        self._chunks.append(
            (
                np.asarray(self._scalar_times, dtype=np.int64),
                np.asarray(self._scalar_items, dtype=np.int64),
                np.asarray(self._scalar_counts, dtype=np.int64),
            )
        )
        self._scalar_times = []
        self._scalar_items = []
        self._scalar_counts = []

    # ------------------------------------------------------------------ #
    # Flush
    # ------------------------------------------------------------------ #

    def flush(self, apply: Apply) -> None:
        """Feed everything staged downstream (no-op when empty)."""
        if self._pending:
            self._flush(apply)

    def _flush(self, apply: Apply) -> None:
        if self._scalar_times:
            self._fold_scalars()
        chunks = self._chunks
        if len(chunks) == 1:
            times, items, counts = chunks[0]
        else:
            times = np.concatenate([c[0] for c in chunks])
            items = np.concatenate([c[1] for c in chunks])
            counts = np.concatenate([c[2] for c in chunks])
        self._chunks = []
        self._pending = 0
        if self.mode == "coalesce":
            times, items, counts = self._coalesce(times, items, counts)
        self.fed += times.shape[0]
        self.flushes += 1
        apply(times, items, counts)

    def _coalesce(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge same-item touches to one net update at last-touch time.

        Exact integer arithmetic throughout (``np.add.at``, not float
        ``bincount``).  Items whose net count is zero still emit their
        (count 0) update — every touched counter keeps a tracker record
        at the flush, mirroring the scalar path's count-0 semantics.
        The output times are a subsequence of the input times (distinct,
        re-sorted ascending), so the flushed column is a valid batch.
        """
        uniq, inverse = np.unique(items, return_inverse=True)
        net = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(net, inverse, counts)
        mass = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(mass, inverse, np.abs(counts))
        self.max_item_mass = max(self.max_item_mass, int(mass.max()))
        last = np.zeros(uniq.shape[0], dtype=np.int64)
        last[inverse] = np.arange(times.shape[0], dtype=np.int64)
        order = np.argsort(times[last])
        keep = last[order]
        return times[keep], uniq[order], net[order]

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Lifetime accounting: absorption, flushes, coalescing, mass.

        ``max_item_mass`` is the largest absolute update mass any single
        item contributed within one window — the per-item envelope of
        the widened ``coalesce`` bound (a counter's mass is the sum over
        the items colliding into it; exact counter-level values need the
        hash family and live in the ingest benchmark's error gate).
        """
        return {
            "window": self.window,
            "mode": self.mode,
            "pending": self._pending,
            "absorbed": self.absorbed,
            "fed": self.fed,
            "flushes": self.flushes,
            "coalesced_away": self.absorbed - self._pending - self.fed,
            "max_item_mass": self.max_item_mass,
        }
