"""Sliding-window queries as a special case of historical windows.

Section 1.1 of the paper observes that the classic sliding-window model
[3, 6, 13] is the historical-window special case ``s = t - w, t = now``
— with the crucial difference that a persistent sketch keeps *all* past
windows queryable, whereas dedicated sliding-window summaries forget
them.  :class:`SlidingWindowView` packages that observation as an API:
the familiar sliding-window query surface, backed by any persistent
sketch, with past window positions still available.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import PersistentSketch


class SlidingWindowView:
    """Fixed-length sliding-window reads over a persistent sketch.

    Parameters
    ----------
    sketch:
        Any ingested :class:`~repro.core.base.PersistentSketch` (or the
        dyadic heavy-hitter structure).
    window:
        Window length ``w`` in time units.
    """

    def __init__(self, sketch: PersistentSketch, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.sketch = sketch
        self.window = window

    def _bounds(self, at: float | None) -> tuple[float, float]:
        t = self.sketch.now if at is None else at
        s = max(0, t - self.window)
        # ``at`` is a wall-clock position; the sketch clock only advances
        # on updates, so the window may end in the quiet stretch past the
        # last update.  Counters are constant there, so clamping onto the
        # queryable range answers the same question (and the underlying
        # sketch rejects ends beyond its clock).
        t = min(t, self.sketch.now)
        return min(s, t), t

    def point(self, item: int, at: float | None = None) -> float:
        """Frequency of ``item`` in the window ending at ``at`` (default:
        now).  Past window positions remain queryable — the capability
        plain sliding-window sketches lack."""
        s, t = self._bounds(at)
        return self.sketch.point(item, s, t)

    def heavy_hitters(self, phi: float, at: float | None = None) -> dict[int, float]:
        """Window heavy hitters (requires a dyadic-structure backend)."""
        s, t = self._bounds(at)
        backend: Any = self.sketch
        if not hasattr(backend, "heavy_hitters"):
            raise TypeError(
                "backend sketch does not support heavy hitters; wrap a "
                "PersistentHeavyHitters structure"
            )
        return backend.heavy_hitters(phi, s, t)

    def self_join_size(self, at: float | None = None) -> float:
        """Window self-join size (requires a persistent AMS backend)."""
        s, t = self._bounds(at)
        backend: Any = self.sketch
        if not hasattr(backend, "self_join_size"):
            raise TypeError(
                "backend sketch does not support self-join sizes; wrap a "
                "PersistentAMS sketch"
            )
        return backend.self_join_size(s, t)
