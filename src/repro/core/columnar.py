"""Shared helpers for the columnar batch ingestion planner.

The batch plan every tracked sketch follows: a stable sort of one row's
updates by column turns the row's time-ordered update sequence into
per-counter runs; each counter's value sequence within its run is just
``base + cumsum(counts)``, so the whole row needs one global cumsum and
one pass over the runs.  Because counters (and their trackers/history
lists) are independent of each other, feeding each counter its complete
run in time order is bit-identical to interleaved scalar feeding.

These helpers live in :mod:`repro.core` (not :mod:`repro.engine`) so the
sketches' ``_ingest_batch`` implementations can use them without an
import cycle; the engine's :func:`repro.engine.batch.batch_ingest` is a
thin wrapper over the sketch-level API.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.persistence.tracker import CounterTracker

#: Update-weighted mean run length (``sum(c_i^2) / n`` over the row's
#: per-column multiplicities) below which the per-row columnar plan
#: costs more than it saves and :func:`feed_tracked_row` falls back to
#: the scalar loop.  The *weighted* mean is the statistic that matters:
#: the columnar win is concentrated in the long runs that reach the
#: fused ``feed_many`` path, so a skewed row with a few hot counters
#: must stay columnar even when the plain mean run length is ~1
#: (ClientID rows weigh in at ~10, ObjectID in the hundreds — both
#: columnar; only near-uniform singleton-run rows fall back).  On a
#: uniform row the weighted mean is the plain mean + 1, so the cutover
#: is calibrated by ``benchmarks/micro_run_cutover.py`` (see
#: EXPERIMENTS.md): the scalar loop is up to ~10% faster through
#: weighted run length ~3.5, the two bodies trade within noise above
#: it on uniform rows, and skewed real rows above the cutover win
#: decisively end-to-end (ClientID ~1.4x) because their hot counters
#: reach the fused deep-run path the uniform sweep only hits at
#: weighted ~1000 (1.75x there).
SHORT_RUN_CUTOVER = 4.0

#: Per-counter in-batch run length at which a run is routed to the
#: columnar body (argsort + fused ``feed_many``) instead of the scalar
#: replay.  Empirically the fused hull path only wins on *deep* runs:
#: the ``micro_run_cutover`` sweep shows it trading slightly below
#: scalar through run length ~64 (unit-count runs stay inside the PLA
#: tube, so the vectorized setup buys little) and winning outright by
#: ~1k, and a per-workload sweep of this threshold puts the crossover
#: in the low hundreds.  Runs below it feed scalar — that is exactly
#: the tiny-run regime that made ObjectID batches *slower* than the
#: scalar loop (BENCH_ingest.json pre-v4).  Because each counter's
#: updates are wholly long or wholly short within a batch, partitioning
#: by run length keeps every counter's complete run in time order and
#: the hybrid stays bit-identical to the scalar reference.
LONG_RUN_MIN = 256


def group_slices(sorted_keys: np.ndarray) -> list[tuple[int, int]]:
    """``(start, end)`` index pairs of equal-key runs in a sorted array."""
    if len(sorted_keys) == 0:
        return []
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_keys)]))
    return list(zip(starts.tolist(), ends.tolist()))


def run_values(
    bases: np.ndarray,
    sorted_counts: np.ndarray,
    slices: list[tuple[int, int]],
) -> np.ndarray:
    """Counter value after each update, for all equal-key runs at once.

    ``bases[g]`` is the counter's value before the first update of run
    ``g``.  Within each run the value sequence is ``base + cumsum`` of
    the run's counts; computed with one global cumsum plus a per-run
    offset correction, so no per-run numpy calls are needed.  Positions
    before the first run (updates excluded from every run, sorted to the
    front) keep meaningless values — callers only read run positions.
    """
    csum = np.cumsum(sorted_counts)
    values = csum.copy()
    if slices:
        prev = np.concatenate(([0], csum[:-1]))
        starts = np.array([lo for lo, _hi in slices], dtype=np.int64)
        sizes = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
        first = slices[0][0]
        values[first:] += np.repeat(bases - prev[starts], sizes)
    return values


def feed_tracked_row(
    counters: list[int],
    trackers: dict[int, CounterTracker],
    row_cols: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    make_tracker: Callable[[], CounterTracker],
) -> None:
    """Apply one row's updates: group by column, feed trackers per run.

    Every update feeds its column's tracker (count 0 included, exactly
    like the scalar path).  Runs are handed over as integer numpy
    columns: trackers with a fused batch path consume them directly,
    the rest convert back to Python scalars so the recorded state
    matches scalar feeding bit-for-bit.

    When the row's update-weighted mean run length falls below
    :data:`SHORT_RUN_CUTOVER` — the near-uniform high-cardinality
    regime where nearly every run is a singleton and no run reaches the
    fused tracker path — the argsort/slicing setup is skipped entirely
    and the row replays through the scalar per-update loop, which is
    the bit-identical reference path by construction.

    Above the cutover the row is *partitioned by run depth*
    (:data:`LONG_RUN_MIN`): counters whose in-batch run is deep enough
    for the fused hull path go through the columnar plan, every other
    update replays scalar.  A counter's run length is a property of the
    whole batch, so each counter lands wholly on one side and still
    receives its complete run in time order — the hybrid is
    bit-identical to the scalar reference by counter independence.
    This is what fixes the mixed-regime workloads (ObjectID: a few hot
    counters with deep runs over a long singleton tail) where a single
    whole-row dispatch had to lose on one half, and it keeps rows with
    *no* fusable run (ClientID) off the argsort entirely.
    """
    n = row_cols.shape[0]
    if n == 0:
        return
    per_col = np.bincount(row_cols)
    weighted = float(np.square(per_col).sum()) / n
    if weighted < SHORT_RUN_CUTOVER or int(per_col.max()) < LONG_RUN_MIN:
        _feed_row_scalar(
            counters, trackers, row_cols, times, counts, make_tracker
        )
        return
    long_mask = per_col[row_cols] >= LONG_RUN_MIN
    if bool(long_mask.all()):
        _feed_row_columnar(
            counters, trackers, row_cols, times, counts, make_tracker
        )
        return
    short_mask = ~long_mask
    _feed_row_columnar(
        counters,
        trackers,
        row_cols[long_mask],
        times[long_mask],
        counts[long_mask],
        make_tracker,
    )
    _feed_row_scalar(
        counters,
        trackers,
        row_cols[short_mask],
        times[short_mask],
        counts[short_mask],
        make_tracker,
    )


def _feed_row_columnar(
    counters: list[int],
    trackers: dict[int, CounterTracker],
    row_cols: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    make_tracker: Callable[[], CounterTracker],
) -> None:
    """The columnar body: stable argsort, run extraction, per-run feeds.

    Run hand-off is dispatched per run length: runs that reach
    :data:`LONG_RUN_MIN` are handed over as integer numpy columns (the
    fused tracker path consumes them in bulk), shorter runs replay
    through scalar ``feed`` from the pre-unboxed Python lists — the
    counter values are already precomputed by the global cumsum, so a
    short run pays one dict lookup and plain ``feed`` calls instead of
    per-run array slicing and ``feed_many`` dispatch that never reaches
    the fused path anyway.  Both hand-offs are bit-identical to scalar
    feeding (fused by construction, scalar trivially).
    """
    order = np.argsort(row_cols, kind="stable")
    sorted_cols = row_cols[order]
    slices = group_slices(sorted_cols)
    bases = np.array(
        [counters[int(sorted_cols[lo])] for lo, _hi in slices],
        dtype=np.int64,
    )
    values = run_values(bases, counts[order], slices)
    sorted_times = times[order]
    col_list = sorted_cols.tolist()
    time_list = sorted_times.tolist()
    value_list = values.tolist()
    for lo, hi in slices:
        col = col_list[lo]
        tracker = trackers.get(col)
        if tracker is None:
            tracker = make_tracker()
            trackers[col] = tracker
        if hi - lo >= LONG_RUN_MIN:
            tracker.feed_many(sorted_times[lo:hi], values[lo:hi])
        else:
            for k in range(lo, hi):
                tracker.feed(time_list[k], value_list[k])
        counters[col] = value_list[hi - 1]


def _feed_row_scalar(
    counters: list[int],
    trackers: dict[int, CounterTracker],
    row_cols: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    make_tracker: Callable[[], CounterTracker],
) -> None:
    """Per-update replay of one row: the scalar reference path.

    Used below the run-length cutover, where runs are too short for the
    columnar setup to amortize.  ``tracker.feed`` is exactly what scalar
    ``update()`` calls, so this path is bit-identical by construction.
    """
    for col, t, value_change in zip(  # sketchlint: disable=SL010 — short-run regime, scalar is the fast path here
        row_cols.tolist(), times.tolist(), counts.tolist()
    ):
        value = counters[col] + value_change
        counters[col] = value
        tracker = trackers.get(col)
        if tracker is None:
            tracker = make_tracker()
            trackers[col] = tracker
        tracker.feed(t, value)


# --------------------------------------------------------------------- #
# Row-parallel execution (PersistentCountMin / PWCAMS family)
# --------------------------------------------------------------------- #


class TrackedRowWorker:
    """Forked worker owning hash rows ``index, index + n, ...``.

    Lives inside a child process of a
    :class:`~repro.parallel.pool.WorkerPool`; ``counters`` and
    ``trackers`` are the fork-inherited master lists, of which only the
    owned rows are ever touched or shipped back.
    """

    def __init__(
        self,
        counters: list[list[int]],
        trackers: list[dict[int, CounterTracker]],
        make_tracker: Callable[[], CounterTracker],
        index: int,
        nworkers: int,
    ) -> None:
        self._counters = counters
        self._trackers = trackers
        self._make_tracker = make_tracker
        self._rows = list(range(index, len(counters), nworkers))

    def feed(self, payload: tuple[np.ndarray, dict[int, Any]]) -> None:
        """Apply ``(times, {row: (row_cols, row_counts)})`` to owned rows."""
        times, rows = payload
        for row, (row_cols, row_counts) in rows.items():
            feed_tracked_row(
                self._counters[row],
                self._trackers[row],
                row_cols,
                times,
                row_counts,
                self._make_tracker,
            )

    def collect(self) -> list[tuple[int, list[int], dict[int, CounterTracker]]]:
        """Ship every owned row's counters and trackers back to master."""
        return [
            (row, self._counters[row], self._trackers[row])
            for row in self._rows
        ]


def feed_rows_parallel(
    pool: WorkerPool,
    times: np.ndarray,
    row_payloads: list[tuple[np.ndarray, np.ndarray]],
) -> None:
    """Stride-partition per-row ``(cols, counts)`` payloads over the pool.

    Worker ``i`` receives exactly the rows it owns (``row % nworkers ==
    i``), mirroring :class:`TrackedRowWorker`'s ownership rule.
    """
    payloads = []
    for index in range(pool.nworkers):
        rows = {
            row: row_payloads[row]
            for row in range(index, len(row_payloads), pool.nworkers)
        }
        payloads.append((times, rows))
    pool.feed(payloads)


def install_row_states(
    counters: list[list[int]],
    trackers: list[dict[int, CounterTracker]],
    states: list[list[tuple[int, list[int], dict[int, CounterTracker]]]],
) -> None:
    """Merge collected per-row worker states back into the master lists."""
    for state in states:
        for row, row_counters, row_trackers in state:
            counters[row] = row_counters
            trackers[row] = row_trackers
