"""Shared helpers for the columnar batch ingestion planner.

The batch plan every tracked sketch follows: a stable sort of one row's
updates by column turns the row's time-ordered update sequence into
per-counter runs; each counter's value sequence within its run is just
``base + cumsum(counts)``, so the whole row needs one global cumsum and
one pass over the runs.  Because counters (and their trackers/history
lists) are independent of each other, feeding each counter its complete
run in time order is bit-identical to interleaved scalar feeding.

These helpers live in :mod:`repro.core` (not :mod:`repro.engine`) so the
sketches' ``_ingest_batch`` implementations can use them without an
import cycle; the engine's :func:`repro.engine.batch.batch_ingest` is a
thin wrapper over the sketch-level API.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.persistence.tracker import CounterTracker


def group_slices(sorted_keys: np.ndarray) -> list[tuple[int, int]]:
    """``(start, end)`` index pairs of equal-key runs in a sorted array."""
    if len(sorted_keys) == 0:
        return []
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_keys)]))
    return list(zip(starts.tolist(), ends.tolist()))


def run_values(
    bases: np.ndarray,
    sorted_counts: np.ndarray,
    slices: list[tuple[int, int]],
) -> np.ndarray:
    """Counter value after each update, for all equal-key runs at once.

    ``bases[g]`` is the counter's value before the first update of run
    ``g``.  Within each run the value sequence is ``base + cumsum`` of
    the run's counts; computed with one global cumsum plus a per-run
    offset correction, so no per-run numpy calls are needed.  Positions
    before the first run (updates excluded from every run, sorted to the
    front) keep meaningless values — callers only read run positions.
    """
    csum = np.cumsum(sorted_counts)
    values = csum.copy()
    if slices:
        prev = np.concatenate(([0], csum[:-1]))
        starts = np.array([lo for lo, _hi in slices], dtype=np.int64)
        sizes = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
        first = slices[0][0]
        values[first:] += np.repeat(bases - prev[starts], sizes)
    return values


def feed_tracked_row(
    counters: list[int],
    trackers: dict[int, CounterTracker],
    row_cols: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    make_tracker: Callable[[], CounterTracker],
) -> None:
    """Apply one row's updates: group by column, feed trackers per run.

    Every update feeds its column's tracker (count 0 included, exactly
    like the scalar path).  Runs are handed over as integer numpy
    columns: trackers with a fused batch path consume them directly,
    the rest convert back to Python scalars so the recorded state
    matches scalar feeding bit-for-bit.
    """
    order = np.argsort(row_cols, kind="stable")
    sorted_cols = row_cols[order]
    slices = group_slices(sorted_cols)
    bases = np.array(
        [counters[int(sorted_cols[lo])] for lo, _hi in slices],
        dtype=np.int64,
    )
    values = run_values(bases, counts[order], slices)
    sorted_times = times[order]
    for lo, hi in slices:
        col = int(sorted_cols[lo])
        tracker = trackers.get(col)
        if tracker is None:
            tracker = make_tracker()
            trackers[col] = tracker
        tracker.feed_many(sorted_times[lo:hi], values[lo:hi])
        counters[col] = int(values[hi - 1])
