"""Epoch-adaptive persistent Count-Min sketch for historical queries
(Section 5.1).

For queries whose window always starts at ``s = 0``, the additive error
``Delta`` can be tied to the current stream mass: the stream is divided
into epochs within which ``||f_t||_1`` stays within a factor of 2 (tracked
exactly by a single running counter), and within epoch ``i`` every counter
is tracked by a fresh PLA run with ``Delta = eps * ||f_{t_i}||_1``.  A
query at time ``t`` is served by the epoch containing ``t``; Theorem 5.1
gives error ``eps * ||f_t||_1`` — identical to the ephemeral sketch — and
Theorem 5.3 bounds the expected size by ``O(1/eps^2 * log 1/delta)`` in
the random stream model.
"""

from __future__ import annotations

from bisect import bisect_right
from statistics import median

import numpy as np

from repro.core import columnar
from repro.core.base import PersistentSketch
from repro.hashing import BucketHashFamily, HashConfig
from repro.hashing.families import IdentityHashFamily
from repro.persistence.epochs import EpochManager
from repro.persistence.tracker import PLATracker


class _EpochedCounter:
    """Per-epoch PLA runs of one counter, created lazily on first touch."""

    __slots__ = ("epoch_ids", "trackers")

    def __init__(self) -> None:
        self.epoch_ids: list[int] = []
        self.trackers: list[PLATracker] = []

    def tracker_for(
        self, epoch_index: int, delta: float, start_value: float
    ) -> PLATracker:
        """The open tracker for ``epoch_index``, creating it if needed."""
        if not self.epoch_ids or self.epoch_ids[-1] != epoch_index:
            if self.trackers:
                # The closed epoch's open run becomes archived state: it
                # must stay queryable, so it is flushed into a segment.
                self.trackers[-1].finalize()
            self.epoch_ids.append(epoch_index)
            self.trackers.append(
                PLATracker(delta=delta, initial_value=start_value)
            )
        return self.trackers[-1]

    def value_at(self, epoch_index: int, t: float) -> float:
        """Counter estimate at time ``t`` inside epoch ``epoch_index``.

        Falls back to the most recent earlier epoch when the counter was
        not touched in the queried epoch (its value is frozen there).
        """
        idx = bisect_right(self.epoch_ids, epoch_index) - 1
        if idx < 0:
            return 0.0
        return self.trackers[idx].value_at(t)

    def words(self) -> int:
        return sum(tracker.words() for tracker in self.trackers)


class HistoricalCountMin(PersistentSketch):
    """Persistent Count-Min specialized to historical (s = 0) queries.

    Parameters
    ----------
    width, depth:
        Sketch shape, ``w = O(1/eps)`` and ``d = O(log 1/delta)``.
    eps:
        Relative error target; the per-epoch PLA error is
        ``eps * ||f||_1`` at the epoch start.
    """

    name = "PLA_historical"

    def __init__(
        self,
        width: int,
        depth: int,
        eps: float,
        seed: int = 0,
        hashes: BucketHashFamily | IdentityHashFamily | None = None,
    ):
        super().__init__()
        if not 0 < eps < 1:
            raise ValueError(f"eps must lie in (0, 1), got {eps}")
        self.width = width
        self.depth = depth
        self.eps = eps
        self.seed = seed
        self.hashes = hashes or BucketHashFamily(
            HashConfig(width=width, depth=depth, seed=seed)
        )
        if self.hashes.width != width or self.hashes.depth != depth:
            raise ValueError("hash family shape does not match sketch shape")
        # Seed audit: this sketch draws no randomness beyond the hash
        # family (seeded via HashConfig); PLA recording is deterministic.
        self._epochs = EpochManager(factor=2.0)
        self._delta = eps  # Delta of the open epoch
        self._counters: list[list[int]] = [
            [0] * width for _ in range(depth)
        ]
        self._tracked: list[dict[int, _EpochedCounter]] = [
            {} for _ in range(depth)
        ]
        self.total = 0

    def _ingest(self, item: int, count: int, time: int) -> None:
        self.total += count
        epoch = self._epochs.observe(time, max(abs(self.total), 1))
        if epoch is not None:
            self._delta = max(self.eps * epoch.start_norm, self.eps)
        current = self._epochs.current
        if current is None:
            raise RuntimeError("epoch manager has no open epoch after observe")
        cols = self.hashes.buckets(item)
        for row in range(self.depth):
            col = cols[row]
            counters = self._counters[row]
            before = counters[col]
            value = before + count
            counters[col] = value
            tracked = self._tracked[row]
            counter = tracked.get(col)
            if counter is None:
                counter = _EpochedCounter()
                tracked[col] = counter
            tracker = counter.tracker_for(
                current.index, self._delta, float(before)
            )
            tracker.feed(time, value)

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: simulate epochs, then vectorize each epoch slice.

        Epoch boundaries depend only on ``(time, running |total|)``, so a
        cheap sequential walk reproduces the exact epoch index and Delta
        every update saw; updates sharing an epoch then go through the
        per-(row, col) run plan, acquiring each run's tracker once via
        ``tracker_for`` — equivalent to the scalar per-update calls, which
        return the same open tracker for every later update of the epoch.
        """
        times_list = times.tolist()
        counts_list = counts.tolist()
        epoch_ids = np.empty(len(times_list), dtype=np.int64)
        deltas: list[float] = []
        total = self.total
        for idx, (time, count) in enumerate(zip(times_list, counts_list)):
            total += count
            epoch = self._epochs.observe(time, max(abs(total), 1))
            if epoch is not None:
                self._delta = max(self.eps * epoch.start_norm, self.eps)
            current = self._epochs.current
            if current is None:
                raise RuntimeError(
                    "epoch manager has no open epoch after observe"
                )
            epoch_ids[idx] = current.index
            deltas.append(self._delta)
        self.total = total
        columns = self.hashes.buckets_many(items)
        for lo, hi in columnar.group_slices(epoch_ids):
            epoch_index = int(epoch_ids[lo])
            delta = deltas[lo]
            slice_times = times[lo:hi]
            slice_counts = counts[lo:hi]
            for row in range(self.depth):
                row_cols = columns[row, lo:hi]
                order = np.argsort(row_cols, kind="stable")
                sorted_cols = row_cols[order]
                slices = columnar.group_slices(sorted_cols)
                counters = self._counters[row]
                tracked = self._tracked[row]
                bases = np.array(
                    [counters[int(sorted_cols[g_lo])] for g_lo, _ in slices],
                    dtype=np.int64,
                )
                values_list = columnar.run_values(
                    bases, slice_counts[order], slices
                ).tolist()
                sorted_times = slice_times[order].tolist()
                for gidx, (g_lo, g_hi) in enumerate(slices):
                    col = int(sorted_cols[g_lo])
                    counter = tracked.get(col)
                    if counter is None:
                        counter = _EpochedCounter()
                        tracked[col] = counter
                    tracker = counter.tracker_for(
                        epoch_index, delta, float(bases[gidx])
                    )
                    tracker.feed_many(
                        sorted_times[g_lo:g_hi], values_list[g_lo:g_hi]
                    )
                    counters[col] = values_list[g_hi - 1]

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(0, t]`` (Theorem 5.1: error ``eps * ||f_t||_1``)."""
        if s != 0:
            raise ValueError(
                "HistoricalCountMin answers historical queries only (s = 0); "
                "use PersistentCountMin for general windows"
            )
        s, t = self._resolve_window(s, t)
        if len(self._epochs) == 0:
            return 0.0
        epoch = self._epochs.epoch_at(t)
        cols = self.hashes.buckets(item)
        return median(
            self._counter_at(row, cols[row], epoch.index, t)
            for row in range(self.depth)
        )

    def _counter_at(self, row: int, col: int, epoch_index: int, t: float) -> float:
        counter = self._tracked[row].get(col)
        if counter is None:
            return 0.0
        return counter.value_at(epoch_index, t)

    def epoch_count(self) -> int:
        """Number of epochs created so far."""
        return len(self._epochs)

    def persistence_words(self) -> int:
        return sum(
            counter.words()
            for tracked in self._tracked
            for counter in tracked.values()
        )

    def ephemeral_words(self) -> int:
        """Size of the underlying counter array."""
        return self.width * self.depth
