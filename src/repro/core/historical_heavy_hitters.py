"""Historical (s = 0) heavy hitters with purely relative error
(Theorem 5.2).

The dyadic decomposition of Section 3.2 combined with the epoch-adaptive
Count-Min sketches of Section 5.1: one
:class:`~repro.core.historical_countmin.HistoricalCountMin` per dyadic
level, thresholded against the exact running mass ``||f_t||_1`` (a single
counter in the cash-register model).  Every element with
``f_i(t) >= (phi + eps) ||f_t||_1`` is reported with high probability and
nothing below ``phi ||f_t||_1`` — with **no additive term**, unlike the
general-window structure.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.base import PersistentSketch
from repro.core.historical_countmin import HistoricalCountMin
from repro.hashing.families import IdentityHashFamily
from repro.pla.piecewise_constant import PiecewiseConstantFunction


class HistoricalHeavyHitters(PersistentSketch):
    """Dyadic stack of epoch-adaptive Count-Min sketches (s = 0 queries).

    Parameters
    ----------
    universe:
        Upper bound on element identifiers.
    width, depth:
        Per-level sketch shape; levels with at most ``width`` ranges use
        exact single-row counting (see
        :class:`~repro.core.heavy_hitters.PersistentHeavyHitters`).
    eps:
        Relative error target of the per-level sketches.
    sketch_factory:
        ``(width, depth, eps, seed, hashes=None) -> sketch`` building each
        level; defaults to :class:`HistoricalCountMin`.
    """

    name = "PLA_historical_HH"

    def __init__(
        self,
        universe: int,
        width: int,
        depth: int,
        eps: float,
        seed: int = 0,
        sketch_factory: Callable[..., PersistentSketch] | None = None,
    ):
        super().__init__()
        if universe < 2:
            raise ValueError(f"universe must be >= 2, got {universe}")
        self.universe = universe
        self.eps = eps
        self.levels = (universe - 1).bit_length()
        factory = sketch_factory or (
            lambda w, d, e, sd, hashes=None: HistoricalCountMin(
                width=w, depth=d, eps=e, seed=sd, hashes=hashes
            )
        )
        self._sketches: list[PersistentSketch] = []
        for level in range(self.levels + 1):
            ranges = max(1, math.ceil(universe / (1 << level)))
            if ranges <= width:
                self._sketches.append(
                    factory(
                        ranges,
                        1,
                        eps,
                        seed + level,
                        hashes=IdentityHashFamily(ranges, 1),
                    )
                )
            else:
                self._sketches.append(factory(width, depth, eps, seed + level))
        # Exact running mass ||f_t||_1, tracked piecewise-constant at
        # relative resolution eps (so the threshold inherits only a
        # relative error).
        self._mass_total = 0
        self._mass_records = PiecewiseConstantFunction()
        self._next_mass_record = 1.0

    def _ingest(self, item: int, count: int, time: int) -> None:
        if not 0 <= item < self.universe:
            raise ValueError(
                f"item {item} outside universe [0, {self.universe})"
            )
        for level, sketch in enumerate(self._sketches):
            sketch.update(item >> level, count, time)
        self._mass_total += count
        if abs(self._mass_total) >= self._next_mass_record:
            self._mass_records.append(time, float(self._mass_total))
            self._next_mass_record = max(
                abs(self._mass_total) * (1.0 + self.eps),
                self._next_mass_record + 1.0,
            )

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: forward the columns to every level at once.

        Items are validated up front (a bad item rejects the whole batch
        before any level is touched); the cheap mass-record walk stays
        sequential because the next recording threshold depends on each
        record in turn.
        """
        bad = (items < 0) | (items >= self.universe)
        if bad.any():
            offender = int(items[int(np.argmax(bad))])
            raise ValueError(
                f"item {offender} outside universe [0, {self.universe})"
            )
        for level, sketch in enumerate(self._sketches):
            sketch.ingest_batch(times, items >> level, counts)
        for time, count in zip(times.tolist(), counts.tolist()):  # sketchlint: disable=SL010 — mass-record thresholds are sequential
            self._mass_total += count
            if abs(self._mass_total) >= self._next_mass_record:
                self._mass_records.append(time, float(self._mass_total))
                self._next_mass_record = max(
                    abs(self._mass_total) * (1.0 + self.eps),
                    self._next_mass_record + 1.0,
                )

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Historical point estimate from the level-0 sketch (s = 0)."""
        if s != 0:
            raise ValueError(
                "HistoricalHeavyHitters answers s = 0 queries only; use "
                "PersistentHeavyHitters for general windows"
            )
        s, t = self._resolve_window(s, t)
        return self._sketches[0].point(item, 0, t)

    def mass(self, t: float | None = None) -> float:
        """Estimate of ``||f_t||_1`` within a ``(1 + eps)`` factor."""
        _, t = self._resolve_window(0, t)
        return self._mass_records.value_at(t)

    def heavy_hitters(
        self,
        phi: float,
        t: float | None = None,
        max_candidates: int | None = None,
    ) -> dict[int, float]:
        """Elements with estimated ``f_i(t) >= phi * ||f_t||_1``.

        Theorem 5.2: elements with ``f_i(t) >= (phi + eps) ||f_t||_1``
        are returned w.h.p.; elements below ``phi ||f_t||_1`` w.p. at
        most delta.
        """
        if not 0 < phi < 1:
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        _, t = self._resolve_window(0, t)
        threshold = phi * self.mass(t)
        cap = max_candidates or max(16, math.ceil(4.0 / phi))

        candidates = [0]
        for level in range(self.levels, 0, -1):
            sketch = self._sketches[level - 1]
            scored: list[tuple[float, int]] = []
            for parent in candidates:
                for child in (2 * parent, 2 * parent + 1):
                    if (child << (level - 1)) >= self.universe:
                        continue
                    estimate = sketch.point(child, 0, t)
                    if estimate >= threshold:
                        scored.append((estimate, child))
            if len(scored) > cap:
                scored.sort(reverse=True)
                scored = scored[:cap]
            candidates = [child for _, child in scored]
            if not candidates:
                return {}
        return {
            item: self._sketches[0].point(item, 0, t) for item in candidates
        }

    def top_k(self, k: int, t: float | None = None) -> list[tuple[int, float]]:
        """The ~``k`` most frequent items as of time ``t``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        _, t = self._resolve_window(0, t)
        phi = 1.0 / (2.0 * k)
        found: dict[int, float] = {}
        while True:
            found = self.heavy_hitters(phi, t, max_candidates=8 * k)
            if len(found) >= k or phi < 1e-5:
                break
            phi /= 2.0
        ranked = sorted(found.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]

    def persistence_words(self) -> int:
        return (
            sum(sketch.persistence_words() for sketch in self._sketches)
            + self._mass_records.words()
        )
