"""Epoch-adaptive persistent AMS sketch for historical queries
(Section 5.2).

As with the historical Count-Min sketch, the additive error is tied to the
growing norm — here ``||f_t||_2``, which no single counter can track.  An
auxiliary small AMS sketch (:class:`~repro.sketch.l2_tracker.L2Tracker`,
width O(1), depth ``O(log m/delta)``) maintains a constant-factor estimate
of ``||f_t||_2`` valid at every time step; epochs close when the estimate
doubles, and within epoch ``i`` the sampling probability is
``1 / (eps * ||f_{t_i}||_2)``.  Each counter component records its
starting value per epoch so reads with no in-epoch predecessor fall back
to it (the Section 5.2 amendment to Equation (1)).  Theorems 5.4/5.5 give
errors ``eps * ||f_t||_2`` (point) and ``eps * ||f_t||_2 ||g_t||_2``
(join); Theorem 5.6 bounds space by ``O((sqrt(m)/eps + 1/eps^2) log 1/d)``.
"""

from __future__ import annotations

from bisect import bisect_right
from random import Random
from statistics import median

import numpy as np

from repro.core.base import PersistentSketch
from repro.hashing import BucketHashFamily, HashConfig, SignHashFamily
from repro.persistence.epochs import EpochManager
from repro.persistence.history_list import SampledHistoryList
from repro.sketch.l2_tracker import L2Tracker


class _EpochedComponent:
    """Per-epoch history lists of one monotone counter component."""

    __slots__ = ("epoch_ids", "histories")

    def __init__(self) -> None:
        self.epoch_ids: list[int] = []
        self.histories: list[SampledHistoryList] = []

    def history_for(
        self,
        epoch_index: int,
        probability: float,
        start_value: int,
        rng: Random,
    ) -> SampledHistoryList:
        if not self.epoch_ids or self.epoch_ids[-1] != epoch_index:
            self.epoch_ids.append(epoch_index)
            self.histories.append(
                SampledHistoryList(
                    probability=probability,
                    rng=rng,
                    initial_value=start_value,
                )
            )
        return self.histories[-1]

    def estimate_at(self, epoch_index: int, t: float) -> float:
        idx = bisect_right(self.epoch_ids, epoch_index) - 1
        if idx < 0:
            return 0.0
        return self.histories[idx].estimate_at(t)

    def words(self) -> int:
        # Each epoch entry also stores the component's starting value and
        # epoch id (2 words), per the Section 5.2 construction.
        return sum(h.words() for h in self.histories) + 2 * len(self.histories)


class HistoricalAMS(PersistentSketch):
    """Persistent AMS sketch specialized to historical (s = 0) queries.

    Parameters
    ----------
    width, depth:
        Sketch shape, ``w = O(1/eps^2)``, ``d = O(log 1/delta)``.
    eps:
        Relative error target; per-epoch ``Delta = eps * ||f||_2`` at the
        epoch start.
    expected_length:
        Stream length hint for the auxiliary L2 tracker's union bound.
    independent_copies:
        History lists per component (2 enables self-join).
    """

    name = "Sample_historical"

    def __init__(
        self,
        width: int,
        depth: int,
        eps: float,
        seed: int = 0,
        expected_length: int = 1_000_000,
        independent_copies: int = 2,
        check_cost: int = 4,
    ):
        super().__init__()
        if not 0 < eps < 1:
            raise ValueError(f"eps must lie in (0, 1), got {eps}")
        self.width = width
        self.depth = depth
        self.eps = eps
        self.seed = seed
        self.copies = independent_copies
        config = HashConfig(width=width, depth=depth, seed=seed)
        self.buckets = BucketHashFamily(config)
        self.signs = SignHashFamily(config)
        # Seed audit: affine-derived from the hash seed (prime 7919);
        # the +13 offset keeps the sampler stream disjoint from
        # PersistentAMS (+11) and the aux L2 tracker (seed + 101).
        self._rng = Random(seed * 7919 + 13)
        self._aux = L2Tracker(
            expected_length=expected_length, seed=seed + 101
        )
        self._epochs = EpochManager(factor=2.0)
        self._probability = 1.0
        # Re-estimating the L2 norm costs O(width * depth) of the aux
        # sketch; since the norm moves by at most 1 per update we only
        # need to re-check every ~norm/check_cost updates.
        self._check_cost = check_cost
        self._updates_until_check = 0
        self._components: list[list[list[int]]] = [
            [[0, 0] for _ in range(width)] for _ in range(depth)
        ]
        self._tracked: list[list[list[dict[int, _EpochedComponent]]]] = [
            [
                [{} for _ in range(independent_copies)]
                for _b in range(2)
            ]
            for _ in range(depth)
        ]
        self.total = 0

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def _ingest(self, item: int, count: int, time: int) -> None:
        self._aux.update(item, count)
        self.total += count
        self._maybe_advance_epoch(time)
        current = self._epochs.current
        if current is None:
            raise RuntimeError("epoch manager has no open epoch after observe")
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        magnitude = abs(count)
        if magnitude == 0:
            return
        for row in range(self.depth):
            col = cols[row]
            effective = sgns[row] * count
            b = 1 if effective > 0 else 0
            component = self._components[row][col]
            before = component[b]
            value = before + magnitude
            component[b] = value
            for copy in range(self.copies):
                tracked = self._tracked[row][b][copy]
                entry = tracked.get(col)
                if entry is None:
                    entry = _EpochedComponent()
                    tracked[col] = entry
                history = entry.history_for(
                    current.index, self._probability, before, self._rng
                )
                history.offer(time, value)

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Pre-hashed batch plan.

        The epoch advance interleaves the amortized aux-sketch check, the
        sampling-probability change and the per-offer RNG draws, so the
        walk stays sequential; hashing — the vectorizable part — is
        hoisted out through ``buckets_many``/``signs_many``.
        """
        columns = self.buckets.buckets_many(items)
        signs = self.signs.signs_many(items)
        for idx, (time, item, count) in enumerate(  # sketchlint: disable=SL010 — epoch/aux/RNG interleaving is inherently sequential
            zip(times.tolist(), items.tolist(), counts.tolist())
        ):
            self._aux.update(item, count)
            self.total += count
            self._maybe_advance_epoch(time)
            current = self._epochs.current
            if current is None:
                raise RuntimeError(
                    "epoch manager has no open epoch after observe"
                )
            magnitude = abs(count)
            if magnitude == 0:
                continue
            for row in range(self.depth):
                col = int(columns[row, idx])
                effective = int(signs[row, idx]) * count
                b = 1 if effective > 0 else 0
                component = self._components[row][col]
                before = component[b]
                value = before + magnitude
                component[b] = value
                for copy in range(self.copies):
                    tracked = self._tracked[row][b][copy]
                    entry = tracked.get(col)
                    if entry is None:
                        entry = _EpochedComponent()
                        tracked[col] = entry
                    history = entry.history_for(
                        current.index, self._probability, before, self._rng
                    )
                    history.offer(time, value)

    def _maybe_advance_epoch(self, time: int) -> None:
        if self._epochs.current is not None and self._updates_until_check > 0:
            self._updates_until_check -= 1
            return
        norm = max(self._aux.estimate(), 1.0)
        epoch = self._epochs.observe(time, norm)
        if epoch is not None:
            delta = max(self.eps * epoch.start_norm, 1.0)
            self._probability = 1.0 / delta
        current = self._epochs.current
        if current is None:
            raise RuntimeError("epoch manager has no open epoch after observe")
        # The L2 norm moves by at most 1 per update, so it cannot double
        # before another start_norm updates; re-check a few times earlier.
        self._updates_until_check = max(
            1, int(current.start_norm) // self._check_cost
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _component_at(
        self, row: int, b: int, copy: int, col: int, epoch_index: int, t: float
    ) -> float:
        entry = self._tracked[row][b][copy].get(col)
        if entry is None:
            return 0.0
        return entry.estimate_at(epoch_index, t)

    def _counter_at(
        self, row: int, col: int, epoch_index: int, t: float, copy: int
    ) -> float:
        return self._component_at(
            row, 1, copy, col, epoch_index, t
        ) - self._component_at(row, 0, copy, col, epoch_index, t)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(0, t]`` (Theorem 5.4: error ``eps * ||f_t||_2``)."""
        if s != 0:
            raise ValueError(
                "HistoricalAMS answers historical queries only (s = 0); "
                "use PersistentAMS for general windows"
            )
        s, t = self._resolve_window(s, t)
        if len(self._epochs) == 0:
            return 0.0
        epoch = self._epochs.epoch_at(t)
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        return median(
            sgns[row]
            * self._counter_at(row, cols[row], epoch.index, t, copy=0)
            for row in range(self.depth)
        )

    def self_join_size(self, t: float | None = None) -> float:
        """Estimate ``||f_t||_2^2`` (needs ``independent_copies >= 2``)."""
        if self.copies < 2:
            raise ValueError(
                "self-join estimation needs independent_copies >= 2"
            )
        _, t = self._resolve_window(0, t)
        if len(self._epochs) == 0:
            return 0.0
        epoch = self._epochs.epoch_at(t)
        row_estimates = []
        for row in range(self.depth):
            total = 0.0
            for col in self._touched_columns(row):
                a = self._counter_at(row, col, epoch.index, t, copy=0)
                b = self._counter_at(row, col, epoch.index, t, copy=1)
                total += a * b
            row_estimates.append(total)
        return median(row_estimates)

    def join_size(self, other: "HistoricalAMS", t: float | None = None) -> float:
        """Estimate ``<f_t, g_t>`` (Theorem 5.5)."""
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise ValueError(
                "join-size estimation requires sketches with identical "
                "width, depth and hash seed"
            )
        _, t = self._resolve_window(0, t)
        if len(self._epochs) == 0 or len(other._epochs) == 0:
            return 0.0
        epoch_f = self._epochs.epoch_at(t)
        epoch_g = other._epochs.epoch_at(t)
        row_estimates = []
        for row in range(self.depth):
            cols = self._touched_columns(row) & other._touched_columns(row)
            total = 0.0
            for col in cols:
                total += self._counter_at(
                    row, col, epoch_f.index, t, copy=0
                ) * other._counter_at(row, col, epoch_g.index, t, copy=0)
            row_estimates.append(total)
        return median(row_estimates)

    def _touched_columns(self, row: int) -> set[int]:
        touched: set[int] = set()
        for b in range(2):
            touched.update(self._tracked[row][b][0].keys())
        return touched

    def epoch_count(self) -> int:
        """Number of epochs created so far."""
        return len(self._epochs)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def persistence_words(self) -> int:
        return (
            sum(
                entry.words()
                for row_hist in self._tracked
                for by_sign in row_hist
                for tracked in by_sign
                for entry in tracked.values()
            )
            + self._aux.words()
        )

    def ephemeral_words(self) -> int:
        """Size of the underlying component arrays."""
        return 2 * self.width * self.depth
