"""Historical-window heavy hitters via the dyadic decomposition
(Section 3.2).

The universe ``[0, n)`` is decomposed into ``log2(n) + 1`` levels of
dyadic ranges; level ``l`` groups ``2^l`` consecutive elements, and a
persistent Count-Min sketch per level tracks the total frequency of every
range over time.  A heavy-hitters query descends the hierarchy: the ranges
whose estimated window frequency reaches ``phi * ||f_{s,t}||_1`` are split
and re-tested one level down, until individual elements remain
(Theorem 3.2 for the guarantees; query cost is ``O(1/phi)`` point queries
per level).

The window mass ``||f_{s,t}||_1`` itself is estimated from a single
PLA-tracked running total (exactly one counter, as Section 5.1 observes),
so the structure remains sublinear end to end.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.base import PersistentSketch
from repro.core.persistent_countmin import PersistentCountMin
from repro.hashing.families import IdentityHashFamily
from repro.parallel.pool import WorkerPool
from repro.persistence.tracker import PLATracker


class _LevelWorker:
    """Forked worker owning dyadic levels ``index, index + n, ...``.

    Each feed broadcasts the raw batch columns; the worker shifts items
    to its owned levels' granularity locally (cheaper than shipping a
    shifted copy per level) and drives the owned level sketches' own
    batch plans.  The master keeps the mass tracker: it is a single
    tracker, inherently serial, and cheap."""

    def __init__(
        self, structure: PersistentHeavyHitters, index: int, nworkers: int
    ) -> None:
        self._structure = structure
        self._levels = list(range(index, len(structure._sketches), nworkers))

    def feed(self, payload: tuple[np.ndarray, np.ndarray, np.ndarray]) -> None:
        times, items, counts = payload
        for level in self._levels:
            self._structure._sketches[level].ingest_batch(
                times, items >> level, counts
            )

    def collect(self) -> list[tuple[int, PersistentSketch]]:
        return [
            (level, self._structure._sketches[level]) for level in self._levels
        ]


class PersistentHeavyHitters(PersistentSketch):
    """Dyadic stack of persistent Count-Min sketches.

    Parameters
    ----------
    universe:
        Upper bound on element identifiers (items must lie in
        ``[0, universe)``).  Compact universes keep the level count small;
        see :func:`repro.eval.harness.compact_items`.
    width, depth:
        Per-level sketch shape.  Levels with at most ``width`` ranges are
        counted *exactly*: a single row with identity hashing, since
        hashing a small, fully active key space into a same-sized table
        only manufactures collisions.
    delta:
        Additive persistence error per level.
    sketch_factory:
        ``(width, depth, delta, seed, hashes=None) -> sketch`` building
        each level; defaults to the PLA-based :class:`PersistentCountMin`,
        and the benchmarks plug in
        :class:`~repro.core.persistent_countmin.PWCCountMin` for the
        baseline.
    """

    name = "PLA_HH"

    def __init__(
        self,
        universe: int,
        width: int,
        depth: int,
        delta: float,
        seed: int = 0,
        sketch_factory: Callable[..., PersistentSketch] | None = None,
        exact_small_levels: bool = True,
        workers: int = 1,
    ):
        super().__init__(workers=workers)
        if universe < 2:
            raise ValueError(f"universe must be >= 2, got {universe}")
        self.universe = universe
        self.levels = (universe - 1).bit_length()
        factory = sketch_factory or (
            lambda w, d, dl, sd, hashes=None: PersistentCountMin(
                width=w, depth=d, delta=dl, seed=sd, hashes=hashes
            )
        )
        self._sketches: list[PersistentSketch] = []
        for level in range(self.levels + 1):
            ranges = max(1, math.ceil(universe / (1 << level)))
            if exact_small_levels and ranges <= width:
                # Small level: exact per-range counters, one row.
                # Hashing a small, fully active key space into a
                # same-sized table only manufactures collisions (every
                # range carries mass, unlike level 0 where most keys are
                # rare); bench_ablation_dyadic.py quantifies the effect.
                self._sketches.append(
                    factory(
                        ranges,
                        1,
                        delta,
                        seed + level,
                        hashes=IdentityHashFamily(ranges, 1),
                    )
                )
            else:
                self._sketches.append(
                    factory(min(width, ranges), depth, delta, seed + level)
                )
        self._mass = PLATracker(delta=delta, initial_value=0.0)
        self._mass_total = 0

    def _ingest(self, item: int, count: int, time: int) -> None:
        if not 0 <= item < self.universe:
            raise ValueError(
                f"item {item} outside universe [0, {self.universe})"
            )
        for level, sketch in enumerate(self._sketches):
            sketch.update(item >> level, count, time)
        self._mass_total += count
        self._mass.feed(time, self._mass_total)

    def _ingest_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        """Columnar plan: forward the columns to every level at once.

        Items are validated up front, so a bad item rejects the whole
        batch before any level is touched (the scalar path applies the
        records preceding the offender first).  Each level sketch and the
        mass tracker see exactly the sequence scalar updates produce.
        """
        bad = (items < 0) | (items >= self.universe)
        if bad.any():
            offender = int(items[int(np.argmax(bad))])
            raise ValueError(
                f"item {offender} outside universe [0, {self.universe})"
            )
        for level, sketch in enumerate(self._sketches):
            sketch.ingest_batch(times, items >> level, counts)
        totals = self._mass_total + np.cumsum(counts)
        self._mass.feed_many(times.tolist(), totals.tolist())
        self._mass_total = int(totals[-1])

    # ------------------------------------------------------------------ #
    # Level-parallel plan (levels are disjoint sub-sketches)
    # ------------------------------------------------------------------ #

    def _parallel_supported(self) -> bool:
        return True

    def _worker_handler(self, index: int, nworkers: int) -> _LevelWorker:
        return _LevelWorker(self, index, nworkers)

    def _prevalidate_batch(
        self, times: np.ndarray, items: np.ndarray, counts: np.ndarray
    ) -> None:
        # Same up-front validation as the serial plan: a bad item must
        # reject the batch cleanly before any worker state is touched.
        bad = (items < 0) | (items >= self.universe)
        if bad.any():
            offender = int(items[int(np.argmax(bad))])
            raise ValueError(
                f"item {offender} outside universe [0, {self.universe})"
            )

    def _ingest_batch_parallel(
        self,
        times: np.ndarray,
        items: np.ndarray,
        counts: np.ndarray,
        pool: WorkerPool,
    ) -> None:
        pool.feed([(times, items, counts)] * pool.nworkers)
        totals = self._mass_total + np.cumsum(counts)
        self._mass.feed_many(times.tolist(), totals.tolist())
        self._mass_total = int(totals[-1])

    def _install_worker_states(self, states: list) -> None:
        for state in states:
            for level, sketch in state:
                self._sketches[level] = sketch

    def finalize(self) -> None:
        """Flush open PLA runs in every level sketch and the mass tracker.

        Optional for live queries; required (and done automatically) by
        ``freeze()`` before exporting columnar history arrays.
        """
        self.detach_workers()
        for sketch in self._sketches:
            finalize = getattr(sketch, "finalize", None)
            if finalize is not None:
                finalize()
        self._mass.finalize()

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Point estimate from the level-0 sketch."""
        s, t = self._resolve_window(s, t)
        return self._sketches[0].point(item, s, t)

    def window_mass(self, s: float = 0, t: float | None = None) -> float:
        """Estimate of ``||f_{s,t}||_1`` from the PLA-tracked total."""
        s, t = self._resolve_window(s, t)
        high = self._mass.value_at(t)
        low = self._mass.value_at(s) if s > 0 else 0.0
        return max(high - low, 0.0)

    def heavy_hitters(
        self,
        phi: float,
        s: float = 0,
        t: float | None = None,
        max_candidates: int | None = None,
    ) -> dict[int, float]:
        """Elements with estimated ``f_i(s, t) >= phi * ||f_{s,t}||_1``.

        Per Theorem 3.2, every element with true frequency at least
        ``(phi + eps) ||f_{s,t}||_1 + Delta`` is returned with high
        probability, and elements below ``phi ||f_{s,t}||_1`` are
        returned with probability at most ``delta``.

        ``max_candidates`` caps the per-level frontier (default
        ``max(16, ceil(4 / phi))``) to keep the descent ``O(1/phi)`` even
        when estimation noise inflates range counts.
        """
        if not 0 < phi < 1:
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        s, t = self._resolve_window(s, t)
        threshold = phi * self.window_mass(s, t)
        cap = max_candidates or max(16, math.ceil(4.0 / phi))

        candidates = [0]
        for level in range(self.levels, 0, -1):
            sketch = self._sketches[level - 1]
            scored: list[tuple[float, int]] = []
            for parent in candidates:
                for child in (2 * parent, 2 * parent + 1):
                    if (child << (level - 1)) >= self.universe:
                        continue
                    estimate = sketch.point(child, s, t)
                    if estimate >= threshold:
                        scored.append((estimate, child))
            if len(scored) > cap:
                scored.sort(reverse=True)
                scored = scored[:cap]
            candidates = [child for _, child in scored]
            if not candidates:
                return {}
        return {
            item: self._sketches[0].point(item, s, t) for item in candidates
        }

    def range_sum(
        self, lo: int, hi: int, s: float = 0, t: float | None = None
    ) -> float:
        """Estimate the total frequency of items in ``[lo, hi]`` over
        ``(s, t]``.

        Uses the canonical dyadic decomposition of ``[lo, hi]`` — at most
        ``2 log2(n)`` ranges, one point query each — the range-query
        application of the dyadic technique noted in [11, 12].
        """
        if not 0 <= lo <= hi < self.universe:
            raise ValueError(
                f"range [{lo}, {hi}] outside universe [0, {self.universe})"
            )
        s, t = self._resolve_window(s, t)
        total = 0.0
        position = lo
        while position <= hi:
            # Largest dyadic block starting at `position` inside [lo, hi].
            level = (
                (position & -position).bit_length() - 1
                if position
                else self.levels
            )
            while (1 << level) > hi - position + 1:
                level -= 1
            total += self._sketches[level].point(position >> level, s, t)
            position += 1 << level
        return total

    def top_k(
        self, k: int, s: float = 0, t: float | None = None
    ) -> list[tuple[int, float]]:
        """The ~``k`` most frequent items of the window, by estimate.

        Lowers the heavy-hitter threshold until at least ``k`` items
        surface (or the threshold bottoms out), then returns the ``k``
        largest — the top-k application of Section 1.5.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        s, t = self._resolve_window(s, t)
        phi = 1.0 / (2.0 * k)
        found: dict[int, float] = {}
        while True:
            found = self.heavy_hitters(phi, s, t, max_candidates=8 * k)
            if len(found) >= k or phi < 1e-5:
                break
            phi /= 2.0
        ranked = sorted(found.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]

    def persistence_words(self) -> int:
        self._ensure_synced()
        return (
            sum(sketch.persistence_words() for sketch in self._sketches)
            + self._mass.words()
        )

    def ephemeral_words(self) -> int:
        """Total size of the per-level counter arrays."""
        return sum(
            sketch.ephemeral_words() for sketch in self._sketches  # type: ignore[attr-defined]
        )
