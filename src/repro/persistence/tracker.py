"""Uniform interface over per-counter history compressors.

The PLA-based persistent Count-Min sketch and the PWC baselines differ only
in *how* each counter's history is compressed.  :class:`CounterTracker`
abstracts that choice so a single persistent-sketch wrapper
(:mod:`repro.core`) serves all of PLA / PWC_CountMin / PWC_AMS.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.pla.orourke import OnlinePLA
from repro.pla.piecewise_constant import OnlinePWC


class CounterTracker(ABC):
    """History of one counter, fed on every change, readable at any time."""

    @abstractmethod
    def feed(self, t: int, value: float) -> None:
        """Observe the counter's new value at time ``t``."""

    def feed_many(self, times: Sequence[int], values: Sequence[float]) -> None:
        """Batch :meth:`feed`: observe many time-ordered ``(t, value)`` pairs.

        Bit-identical to the scalar loop by definition; concrete trackers
        override with fused implementations.  Numpy columns are converted
        to Python scalars first so the recorded state never holds numpy
        scalar types.
        """
        if isinstance(times, np.ndarray):
            times = times.tolist()
        if isinstance(values, np.ndarray):
            values = values.tolist()
        for t, value in zip(times, values):
            self.feed(t, value)

    @abstractmethod
    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``."""

    @abstractmethod
    def words(self) -> int:
        """Persistence space in machine words."""

    @abstractmethod
    def finalize(self) -> None:
        """Flush any buffered state (end of stream or epoch boundary)."""

    @property
    @abstractmethod
    def initial_value(self) -> float:
        """Counter value before the first recorded segment/record."""

    @abstractmethod
    def export_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Columnar export ``(starts, ends, slopes, values_at_start)``.

        A uniform segment view of the history regardless of compressor:
        PLA trackers export their segments verbatim; PWC trackers export
        each record as a zero-slope point segment.  Reading at time ``t``
        means evaluating the predecessor segment clamped into
        ``[start, end]`` — exactly what :meth:`value_at` does — which is
        what lets the frozen query engine (:mod:`repro.engine.frozen`)
        serve every tracker type with one vectorized code path.
        """


class PLATracker(CounterTracker):
    """Piecewise-linear history with additive error ``delta`` (Section 3)."""

    __slots__ = ("_pla",)

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        self._pla = OnlinePLA(delta=delta, initial_value=initial_value)

    def feed(self, t: int, value: float) -> None:  # sketchlint: disable=SL008 — OnlinePLA.feed guards monotonicity
        self._pla.feed(t, value)

    def feed_many(self, times: Sequence[int], values: Sequence[float]) -> None:
        self._pla.feed_many(times, values)

    def value_at(self, t: float) -> float:
        return self._pla.value_at(t)

    def words(self) -> int:
        return self._pla.words()

    def segment_count(self) -> int:
        """Number of PLA segments (open run included)."""
        return self._pla.segment_count()

    def finalize(self) -> None:
        self._pla.finalize()

    @property
    def initial_value(self) -> float:
        return self._pla.function.initial_value

    def export_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._pla.segment_count(include_open=True) > len(
            self._pla.function
        ):
            raise ValueError(
                "PLA tracker has an open run; call finalize() before "
                "exporting arrays (freeze() does this for you)"
            )
        return self._pla.function.as_arrays()


class YoungPLATracker(PLATracker):
    """Slim first-touch tier in front of :class:`PLATracker`.

    High-cardinality streams create a tracker per touched counter, and
    most of those trackers only ever see a handful of updates — there,
    building O'Rourke's full hull machinery on first touch dominates the
    ingest cost (the SF-sketch slim/fat split, PAPERS.md).  A young
    tracker stages the first observation in two slots and materializes
    the backing :class:`~repro.pla.orourke.OnlinePLA` only on the second
    feed or on any cold-path call (finalize, segment counts, array
    export).

    Exactness: a single staged point answers every query identically to
    a one-point ``OnlinePLA`` — one open run emits no segments, so
    ``words()`` is 0 and ``value_at`` steps from the initial value to
    the staged value at the staged time.  Materialization replays the
    staged point before anything else, so the compressed history is
    bit-identical to eager feeding regardless of when it happens.
    """

    __slots__ = ("_delta", "_initial", "_t0", "_v0")

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        # ``_pla`` is deliberately left unset (slim state); ``_t0 < 0``
        # means no observation has been staged yet (stream times are
        # strictly positive integers).
        self._delta = float(delta)
        self._initial = float(initial_value)
        self._t0 = -1
        self._v0 = initial_value

    def _materialize(self) -> OnlinePLA:
        pla = OnlinePLA(delta=self._delta, initial_value=self._initial)
        if self._t0 >= 0:
            pla.feed(self._t0, self._v0)
        self._pla = pla
        return pla

    def feed(self, t: int, value: float) -> None:  # sketchlint: disable=SL008 — OnlinePLA.feed guards monotonicity
        try:
            pla = self._pla
        except AttributeError:
            if self._t0 < 0:
                self._t0 = t
                self._v0 = value
                return
            pla = self._materialize()
        pla.feed(t, value)

    def feed_many(self, times: Sequence[int], values: Sequence[float]) -> None:
        try:
            pla = self._pla
        except AttributeError:
            if self._t0 < 0:
                if len(times) == 0:
                    return
                # Stage exactly what eager ``feed_many`` would feed:
                # numpy scalars unbox to Python ints/floats via tolist().
                first_t, first_v = times[0], values[0]
                self._t0 = (
                    first_t.item() if isinstance(first_t, np.generic) else first_t
                )
                self._v0 = (
                    first_v.item() if isinstance(first_v, np.generic) else first_v
                )
                if len(times) == 1:
                    return
                times = times[1:]
                values = values[1:]
            pla = self._materialize()
        pla.feed_many(times, values)

    def value_at(self, t: float) -> float:
        try:
            return self._pla.value_at(t)
        except AttributeError:
            if self._t0 >= 0 and t >= self._t0:
                return self._v0
            return self._initial

    def words(self) -> int:
        try:
            return self._pla.words()
        except AttributeError:
            return 0  # a lone open run has emitted no segments

    def segment_count(self) -> int:
        try:
            pla = self._pla
        except AttributeError:
            pla = self._materialize()
        return pla.segment_count()

    def finalize(self) -> None:
        try:
            pla = self._pla
        except AttributeError:
            pla = self._materialize()
        pla.finalize()

    @property
    def initial_value(self) -> float:
        return self._initial

    def export_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if not hasattr(self, "_pla"):
            self._materialize()
        return super().export_arrays()


class PWCTracker(CounterTracker):
    """Piecewise-constant history with threshold ``delta`` (Section 2)."""

    __slots__ = ("_pwc",)

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        self._pwc = OnlinePWC(delta=delta, initial_value=initial_value)

    def feed(self, t: int, value: float) -> None:  # sketchlint: disable=SL008 — OnlinePWC.feed guards monotonicity
        self._pwc.feed(t, value)

    def feed_many(self, times: Sequence[int], values: Sequence[float]) -> None:
        self._pwc.feed_many(times, values)

    def value_at(self, t: float) -> float:
        return self._pwc.value_at(t)

    def words(self) -> int:
        return self._pwc.words()

    def record_count(self) -> int:
        """Number of recorded (time, value) pairs."""
        return len(self._pwc.function)

    def finalize(self) -> None:
        """No buffered state: PWC records eagerly."""

    @property
    def initial_value(self) -> float:
        return self._pwc.function.initial_value

    def export_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        times, values = self._pwc.function.as_arrays()
        return times, times, np.zeros(len(times), dtype=np.float64), values
