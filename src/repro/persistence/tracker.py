"""Uniform interface over per-counter history compressors.

The PLA-based persistent Count-Min sketch and the PWC baselines differ only
in *how* each counter's history is compressed.  :class:`CounterTracker`
abstracts that choice so a single persistent-sketch wrapper
(:mod:`repro.core`) serves all of PLA / PWC_CountMin / PWC_AMS.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.pla.orourke import OnlinePLA
from repro.pla.piecewise_constant import OnlinePWC


class CounterTracker(ABC):
    """History of one counter, fed on every change, readable at any time."""

    @abstractmethod
    def feed(self, t: int, value: float) -> None:
        """Observe the counter's new value at time ``t``."""

    @abstractmethod
    def value_at(self, t: float) -> float:
        """Approximate counter value at time ``t``."""

    @abstractmethod
    def words(self) -> int:
        """Persistence space in machine words."""

    @abstractmethod
    def finalize(self) -> None:
        """Flush any buffered state (end of stream or epoch boundary)."""


class PLATracker(CounterTracker):
    """Piecewise-linear history with additive error ``delta`` (Section 3)."""

    __slots__ = ("_pla",)

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        self._pla = OnlinePLA(delta=delta, initial_value=initial_value)

    def feed(self, t: int, value: float) -> None:  # sketchlint: disable=SL008 — OnlinePLA.feed guards monotonicity
        self._pla.feed(t, value)

    def value_at(self, t: float) -> float:
        return self._pla.value_at(t)

    def words(self) -> int:
        return self._pla.words()

    def segment_count(self) -> int:
        """Number of PLA segments (open run included)."""
        return self._pla.segment_count()

    def finalize(self) -> None:
        self._pla.finalize()


class PWCTracker(CounterTracker):
    """Piecewise-constant history with threshold ``delta`` (Section 2)."""

    __slots__ = ("_pwc",)

    def __init__(self, delta: float, initial_value: float = 0.0) -> None:
        self._pwc = OnlinePWC(delta=delta, initial_value=initial_value)

    def feed(self, t: int, value: float) -> None:  # sketchlint: disable=SL008 — OnlinePWC.feed guards monotonicity
        self._pwc.feed(t, value)

    def value_at(self, t: float) -> float:
        return self._pwc.value_at(t)

    def words(self) -> int:
        return self._pwc.words()

    def record_count(self) -> int:
        """Number of recorded (time, value) pairs."""
        return len(self._pwc.function)

    def finalize(self) -> None:
        """No buffered state: PWC records eagerly."""
