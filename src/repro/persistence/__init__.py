"""Generic persistence machinery shared by the persistent sketches.

* :class:`~repro.persistence.history_list.SampledHistoryList` — the
  Bernoulli-sampled counter history of the sampling-based technique
  (Section 4), with the ``+Delta-1`` unbiasedness compensation.
* :class:`~repro.persistence.tracker.PLATracker` /
  :class:`~repro.persistence.tracker.PWCTracker` — uniform counter-history
  interface over the PLA and piecewise-constant recorders, so the
  persistent Count-Min wrapper is generic in the compression scheme.
* :class:`~repro.persistence.epochs.EpochManager` — the norm-doubling
  epoch rule of Section 5.
* :class:`~repro.persistence.timeline.TimelineIndex` — batched predecessor
  search across many history lists (the role fractional cascading plays in
  the paper's query-time analysis).
"""

from __future__ import annotations

from repro.persistence.epochs import Epoch, EpochManager
from repro.persistence.history_list import SampledHistoryList
from repro.persistence.timeline import TimelineIndex
from repro.persistence.tracker import CounterTracker, PLATracker, PWCTracker

__all__ = [
    "SampledHistoryList",
    "CounterTracker",
    "PLATracker",
    "PWCTracker",
    "Epoch",
    "EpochManager",
    "TimelineIndex",
]
