"""Sampled counter histories (Section 4.1 of the paper).

Each monotonically increasing counter component keeps a *history list*:
whenever the component is incremented, the new value is appended together
with its timestamp with probability ``p = 1/Delta``.  Reading the component
at time ``t`` finds the predecessor record (largest sampled timestamp at or
before ``t``) and compensates the expected number of unsampled increments:

    estimate = sampled_value + 1/p - 1        (Equation (1) in the paper)

or the component's starting value when no predecessor exists.  The
compensated read is an unbiased estimator of the true component value with
second moment at most ``1/p^2`` (Lemma A.5), which is what makes the
sampling technique usable for the holistic join-size queries where the
deterministic baselines' bias gets amplified.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from random import Random

import numpy as np

from repro.analysis import contracts

#: Machine words per record (value + timestamp), per Section 6.2.
WORDS_PER_RECORD = 2


class SampledHistoryList:
    """History of one monotone counter component.

    Parameters
    ----------
    probability:
        Sampling probability ``p = 1/Delta`` in ``(0, 1]``.
    rng:
        Shared random source (one per sketch keeps the hot path cheap).
    initial_value:
        Component value before its first increment (nonzero at epoch
        boundaries in the Section 5.2 construction).
    """

    __slots__ = (
        "__weakref__",  # contract decorators track instances weakly
        "probability",
        "initial_value",
        "_times",
        "_values",
        "_rng",
    )

    def __init__(
        self, probability: float, rng: Random, initial_value: int = 0
    ) -> None:
        if not 0 < probability <= 1:
            raise ValueError(
                f"sampling probability must lie in (0, 1], got {probability}"
            )
        self.probability = probability
        self.initial_value = initial_value
        self._times: list[int] = []
        self._values: list[int] = []
        self._rng = rng

    @contracts.monotone_timestamps(param="t")
    def offer(self, t: int, value: int) -> None:
        """Offer the component's new value at time ``t`` for sampling.

        Unsampled offers leave no trace, so monotonicity of ``t`` cannot
        be validated from the stored records alone; the
        ``@monotone_timestamps`` contract enforces it across *all* offers
        when enforcement is on.
        """
        if self._rng.random() < self.probability:
            self._times.append(t)
            self._values.append(value)

    def force_sample(self, t: int, value: int) -> None:
        """Record unconditionally (used by tests and epoch bootstrapping)."""
        self._times.append(t)
        self._values.append(value)

    def extend(self, times: Sequence[int], values: Sequence[int]) -> None:
        """Append pre-accepted samples in time order (batch ingest path).

        The caller has already run the Bernoulli acceptance draws against
        the shared RNG (see :func:`repro.persistence.sampling.bulk_uniforms`),
        so this appends in bulk.  Under contract enforcement the appended
        times are validated against the stored records — the batch planner
        additionally validates the full offer sequence up front.
        """
        if not len(times):
            return
        if contracts.ENABLED:
            prev = self._times[-1] if self._times else None
            for t in times:
                if prev is not None and t <= prev:
                    raise contracts.ContractViolation(
                        "history-list batch append times must be strictly "
                        f"increasing: {t} <= {prev}"
                    )
                prev = t
        self._times.extend(times)
        self._values.extend(values)

    def estimate_at(self, t: float) -> float:
        """Unbiased compensated estimate of the component value at ``t``."""
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return float(self.initial_value)
        return self._values[idx] + (1.0 / self.probability) - 1.0

    def estimate_at_index(self, idx: int) -> float:
        """Compensated estimate from a precomputed predecessor index.

        Used by the fractional-cascading query path
        (:meth:`repro.core.persistent_ams.PersistentAMS.build_timeline`),
        which batch-computes predecessor indices across many lists.
        ``idx < 0`` means "no predecessor".
        """
        if idx < 0:
            return float(self.initial_value)
        return self._values[idx] + (1.0 / self.probability) - 1.0

    def sample_times(self) -> list[int]:
        """The sampled timestamps, strictly increasing."""
        return self._times

    def last_sampled_at(self, t: float) -> tuple[int, int] | None:
        """The raw predecessor record ``(time, value)``, if any."""
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return None
        return self._times[idx], self._values[idx]

    def __len__(self) -> int:
        return len(self._times)

    def words(self) -> int:
        """Space in machine words (2 per record, per Section 6.2)."""
        return WORDS_PER_RECORD * len(self._times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar export ``(times, values)`` of the sampled records.

        ``times`` is strictly increasing; the frozen query engine
        (:mod:`repro.engine.frozen`) concatenates these across counters
        for vectorized predecessor search and applies the ``1/p - 1``
        compensation of Equation (1) at read time.
        """
        return (
            np.array(self._times, dtype=np.int64),
            np.array(self._values, dtype=np.float64),
        )
