"""Bulk uniform draws, bit-compatible with ``random.Random.random()``.

The sampled-AMS batch ingest path must accept exactly the same offers as
a scalar loop would, which means consuming exactly the same pseudo-random
numbers in exactly the same order.  Both CPython's ``random.Random`` and
numpy's legacy ``RandomState`` generator sit on the same Mersenne-Twister
core and derive each double identically from two consecutive 32-bit
outputs (``(a >> 5) * 2^26 + (b >> 6)) / 2^53``), so a block of draws can
be produced vectorized by transplanting the state into numpy, drawing,
and writing the advanced state back.
"""

from __future__ import annotations

from random import Random

import numpy as np


def bulk_uniforms(rng: Random, n: int) -> np.ndarray:
    """Draw ``n`` uniforms exactly as ``[rng.random() for _ in range(n)]``.

    Returns a float64 array bit-equal to the scalar draws and leaves
    ``rng`` in exactly the state the scalar loop would have left it, so
    scalar and batch consumers can interleave freely.  Falls back to the
    scalar loop if the interpreter's state layout is unrecognized.
    """
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    state = rng.getstate()
    if state[0] != 3 or len(state[1]) != 625:
        return np.array([rng.random() for _ in range(n)], dtype=np.float64)
    key, pos = state[1][:624], state[1][624]
    np_rng = np.random.RandomState()  # sketchlint: disable=SL001 — state is transplanted from the caller's seeded Random, not ambient entropy
    np_rng.set_state(("MT19937", np.array(key, dtype=np.uint32), pos))
    out = np_rng.random_sample(n)
    end_state = np_rng.get_state(legacy=True)
    key_out = tuple(int(word) for word in end_state[1])
    rng.setstate((3, key_out + (int(end_state[2]),), state[2]))
    return out
