"""Epoch management for the historical (s = 0) sketches of Section 5.

The additive persistence error ``Delta`` can be eliminated for historical
queries by keeping ``Delta`` proportional to the current norm of the
frequency vector: the stream is divided into *epochs* within which the norm
stays within a constant factor (2 by default), and each epoch uses
``Delta = eps * norm(epoch start)``.  Whenever the tracked norm doubles (or
halves, in the turnstile model) a new epoch begins.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.analysis import contracts


@dataclass(frozen=True, slots=True)
class Epoch:
    """One epoch: ``[start_time, next.start_time)``.

    Attributes
    ----------
    index:
        0-based position in the epoch sequence.
    start_time:
        First timestamp covered.
    start_norm:
        Tracked norm at the epoch start; the caller derives the epoch's
        ``Delta`` from it (``eps * start_norm``).
    """

    index: int
    start_time: int
    start_norm: float


class EpochManager:
    """Splits time into norm-doubling epochs.

    Parameters
    ----------
    factor:
        Epoch boundary trigger: a new epoch starts when the norm leaves
        ``[start_norm / factor, start_norm * factor]``.
    """

    def __init__(self, factor: float = 2.0) -> None:
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1, got {factor}")
        self.factor = factor
        self._epochs: list[Epoch] = []
        self._start_times: list[int] = []

    @property
    def epochs(self) -> list[Epoch]:
        """All epochs created so far, in time order."""
        return self._epochs

    @property
    def current(self) -> Epoch | None:
        """The open epoch, or ``None`` before the first observation."""
        return self._epochs[-1] if self._epochs else None

    @contracts.monotone_timestamps(param="t")
    def observe(self, t: int, norm: float) -> Epoch | None:
        """Report the tracked norm at time ``t``.

        Returns the newly started :class:`Epoch` when a boundary is
        crossed (including the very first epoch), else ``None``.
        Observation times must not decrease; the
        ``@monotone_timestamps`` contract enforces strict increase when
        enforcement is on (callers observe at most once per update tick).
        """
        current = self.current
        if current is None:
            return self._start(t, norm)
        if (
            norm >= current.start_norm * self.factor
            or norm <= current.start_norm / self.factor
        ):
            return self._start(t, norm)
        return None

    def epoch_at(self, t: float) -> Epoch:
        """The epoch containing time ``t``.

        Times before the first epoch map to the first epoch (the paper's
        model starts the clock at the first arrival).
        """
        if not self._epochs:
            raise ValueError("no epochs yet: nothing has been observed")
        idx = bisect_right(self._start_times, t) - 1
        return self._epochs[max(idx, 0)]

    def _start(self, t: int, norm: float) -> Epoch:
        epoch = Epoch(
            index=len(self._epochs),
            start_time=t,
            start_norm=max(norm, 1.0),
        )
        self._epochs.append(epoch)
        self._start_times.append(t)
        return epoch

    def __len__(self) -> int:
        return len(self._epochs)
