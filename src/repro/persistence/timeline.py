"""Fractional cascading over many counter histories.

A historical-window join-size query must locate the predecessor of the
query timestamp in *every* history list of a sketch row (``O(w)`` lists).
Doing an independent binary search per list costs ``O(w log m)``; the
paper's query-time remarks (Sections 3.3 and 4.2) invoke fractional
cascading [10] to reduce this to one binary search plus O(1) work per list.

:class:`TimelineIndex` implements the static variant: the lists are
cascaded bottom-up, with every second element of the augmented list at
level ``i+1`` merged into level ``i``.  Each augmented element carries two
pointers: the predecessor position in the level's *own* list, and a bridge
to its predecessor in the augmented list one level down.  A query binary
searches only the topmost augmented list and then follows bridges, walking
forward at most a couple of positions per level.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

import numpy as np

from repro.analysis import contracts


class _Level:
    """One augmented level of the cascade."""

    __slots__ = ("times", "own_pred", "bridge")

    def __init__(self, times: list[int], own_pred: list[int], bridge: list[int]) -> None:
        self.times = times  # sorted augmented timestamps
        self.own_pred = own_pred  # predecessor index in the original list
        self.bridge = bridge  # predecessor position in the next level


class TimelineIndex:
    """Batched predecessor search across ``k`` sorted timestamp lists.

    Parameters
    ----------
    lists:
        The original sorted (ascending, duplicate-free) timestamp lists.
        Empty lists are allowed.

    Notes
    -----
    The structure is static: build it once after ingest (or rebuild when
    the lists change).  ``predecessors(t)`` returns, for each original
    list, the index of the largest element ``<= t`` or ``-1``.
    """

    def __init__(self, lists: Sequence[Sequence[int]]) -> None:
        self._lists = [list(lst) for lst in lists]
        # O(total) validation is deferred to the contract layer: always
        # on in the test suite (REPRO_CONTRACTS=1), free in production.
        contracts.check_sorted_timeline(self._lists, what="TimelineIndex")
        self._levels = self._build(self._lists)

    @staticmethod
    def _build(lists: list[list[int]]) -> list[_Level]:
        levels: list[_Level] = [None] * len(lists)  # type: ignore[list-item]
        next_level: _Level | None = None
        for i in range(len(lists) - 1, -1, -1):
            own = lists[i]
            sampled = next_level.times[1::2] if next_level is not None else []
            merged: list[int] = []
            own_pred: list[int] = []
            bridge: list[int] = []
            a = b = 0
            while a < len(own) or b < len(sampled):
                take_own = b >= len(sampled) or (
                    a < len(own) and own[a] <= sampled[b]
                )
                if take_own:
                    value = own[a]
                    a += 1
                else:
                    value = sampled[b]
                    b += 1
                merged.append(value)
                own_pred.append(a - 1)
                if next_level is None:
                    bridge.append(-1)
                else:
                    bridge.append(
                        bisect_right(next_level.times, value) - 1
                    )
            levels[i] = _Level(merged, own_pred, bridge)
            next_level = levels[i]
        return levels

    def predecessors(self, t: float) -> list[int]:
        """Index of the predecessor of ``t`` in each original list.

        Returns ``-1`` for lists with no element ``<= t``.
        """
        result: list[int] = []
        pos = -2  # sentinel: not yet located
        for level in self._levels:
            times = level.times
            if pos == -2:
                # Single binary search at the topmost level.
                pos = bisect_right(times, t) - 1
            else:
                # pos currently bounds the predecessor from below (it was
                # the bridge from one level up); walk forward.
                if pos < 0:
                    pos = bisect_right(times, t) - 1
                else:
                    n = len(times)
                    while pos + 1 < n and times[pos + 1] <= t:
                        pos += 1
            if pos < 0:
                result.append(-1)
                pos = -1
            else:
                result.append(level.own_pred[pos])
                pos = level.bridge[pos]
        return result

    def __len__(self) -> int:
        return len(self._lists)

    def words(self) -> int:
        """Index overhead in machine words (3 per augmented element)."""
        return sum(3 * len(level.times) for level in self._levels)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar export of the indexed lists: ``(times, offsets)``.

        ``times`` concatenates the original (pre-cascade) timestamp lists
        in order; ``offsets`` has one entry per list plus a terminator, so
        list ``i`` occupies ``times[offsets[i]:offsets[i + 1]]``.  This is
        the CSR-style layout the frozen query engine builds its batched
        ``np.searchsorted`` predecessor search over.
        """
        offsets = np.zeros(len(self._lists) + 1, dtype=np.int64)
        for i, lst in enumerate(self._lists):
            offsets[i + 1] = offsets[i] + len(lst)
        times = np.empty(int(offsets[-1]), dtype=np.int64)
        for i, lst in enumerate(self._lists):
            times[int(offsets[i]) : int(offsets[i + 1])] = lst
        return times, offsets
