"""Closed-form curves the paper overlays on its plots.

``Sample_Theory`` in Figures 3 and 9 is the expected size/error of the
sampling technique, which unlike the others does not depend on the data
distribution; the remaining helpers give the worst-case space of each
persistence scheme and the a-priori error bounds of the theorems, used by
tests to check that measurements respect theory.
"""

from __future__ import annotations

import math


def sample_theory_words(m: int, depth: int, delta: float, copies: int = 1) -> float:
    """Expected persistence words of the Sample sketch (Figure 3's overlay).

    Every update offers one value per row per copy at probability
    ``1/Delta``; each record is 2 words.
    """
    return 2.0 * copies * depth * m / delta


def sample_theory_selfjoin_error(
    delta: float, eps: float, l2_squared: float
) -> float:
    """Theorem 4.2's relative self-join error bound (Figure 9's overlay).

    ``E / ||f||_2^2`` with ``f = g`` and ``Delta_f = Delta_g = delta``:
    ``eps * (1 + (delta / (eps * ||f||_2))^2)``.
    """
    if l2_squared <= 0:
        raise ValueError("l2_squared must be positive")
    return eps * (1.0 + delta**2 / (eps**2 * l2_squared))


def pla_worst_case_words(m: int, depth: int, delta: float) -> float:
    """Worst-case PLA persistence words: a segment (3 words) per ``Delta``
    updates per row (Section 3.3)."""
    return 3.0 * depth * m / delta


def pla_random_model_segments(m: int, delta: float) -> float:
    """Theorem 3.3's expected per-row segment count, ``O(m / Delta^2)``.

    The constant is not pinned down by the theorem; callers compare
    *scaling* against this curve, not absolute values.
    """
    return m / delta**2


def pwc_worst_case_words(m: int, depth: int, delta: float) -> float:
    """Worst-case PWC persistence words: a record (2 words) per ``Delta``
    updates per row (Section 2)."""
    return 2.0 * depth * m / delta


def countmin_point_error_bound(
    eps: float, delta: float, window_l1: float
) -> float:
    """Theorem 3.1: ``eps * ||f_{s,t}||_1 + Delta``."""
    return eps * window_l1 + delta


def ams_point_error_bound(eps: float, delta: float, window_l2: float) -> float:
    """Theorem 4.1: ``eps * ||f_{s,t}||_2 + Delta``."""
    return eps * window_l2 + delta


def ams_join_error_bound(
    eps: float,
    delta_f: float,
    delta_g: float,
    l2_f: float,
    l2_g: float,
) -> float:
    """Theorem 4.2's join-size error ``E``."""
    return eps * math.sqrt(
        (l2_f**2 + (delta_f / eps) ** 2) * (l2_g**2 + (delta_g / eps) ** 2)
    )


def eps_for_countmin_width(width: int) -> float:
    """The ``eps`` a Count-Min of the given width guarantees (``e / w``)."""
    return math.e / width


def eps_for_ams_width(width: int) -> float:
    """The ``eps`` an AMS sketch of the given width guarantees (``2/sqrt(w)``)."""
    return 2.0 / math.sqrt(width)
