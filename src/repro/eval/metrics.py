"""Accuracy metrics used by the paper's experiments (Section 6.3)."""

from __future__ import annotations

from typing import Iterable, Sequence


def mean_absolute_error(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """Mean of ``|estimate - truth|`` over paired values."""
    if len(estimates) != len(truths):
        raise ValueError("estimates and truths must have equal length")
    if not estimates:
        raise ValueError("cannot average zero queries")
    return sum(abs(e - t) for e, t in zip(estimates, truths)) / len(estimates)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` (truth must be nonzero)."""
    if truth == 0:
        raise ValueError("relative error undefined for zero truth")
    return abs(estimate - truth) / abs(truth)


def precision_recall(
    returned: Iterable[int], actual: Iterable[int]
) -> tuple[float, float]:
    """Precision and recall of a returned heavy-hitter set.

    Precision: fraction of returned elements that are actual heavy
    hitters.  Recall: fraction of actual heavy hitters returned.  Both
    default to 1.0 on empty denominators (returning nothing when there is
    nothing to return is perfect).
    """
    returned_set = set(returned)
    actual_set = set(actual)
    true_positives = len(returned_set & actual_set)
    precision = (
        true_positives / len(returned_set) if returned_set else 1.0
    )
    recall = true_positives / len(actual_set) if actual_set else 1.0
    return precision, recall
