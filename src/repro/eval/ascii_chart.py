"""Terminal charts for experiment series.

The benchmark reports print the numeric series the paper plots; for a
quick visual read in ``bench_output.txt`` this module renders the same
series as an ASCII scatter chart (one mark per series), with optional
log scaling on either axis — enough to eyeball the crossovers the paper
describes without leaving the terminal.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Marks assigned to series, in declaration order.
MARKS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    out = []
    for value in values:
        if log:
            out.append(math.log10(value) if value > 0 else float("nan"))
        else:
            out.append(float(value))
    return out


def render_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render series as an ASCII scatter chart.

    Points with non-positive coordinates on a log axis are dropped (the
    paper's log-scale plots do the same implicitly).
    """
    if not series:
        raise ValueError("need at least one series")
    if any(len(values) != len(x) for values in series.values()):
        raise ValueError("every series must match the x vector's length")
    xs = _transform(x, log_x)
    transformed = {
        name: _transform(values, log_y) for name, values in series.items()
    }
    finite_x = [v for v in xs if not math.isnan(v)]
    finite_y = [
        v
        for values in transformed.values()
        for v in values
        if not math.isnan(v)
    ]
    if not finite_x or not finite_y:
        return "(no plottable points)"
    x_lo, x_hi = min(finite_x), max(finite_x)
    y_lo, y_hi = min(finite_y), max(finite_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, values) in zip(MARKS, transformed.items()):
        for x_value, y_value in zip(xs, values):
            if math.isnan(x_value) or math.isnan(y_value):
                continue
            col = round((x_value - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y_value - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    def fmt(value: float, log: bool) -> str:
        return f"1e{value:.1f}" if log else f"{value:g}"

    lines = [f"{fmt(y_hi, log_y):>9} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{fmt(y_lo, log_y):>9} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{fmt(x_lo, log_x)}  {x_label} ... {fmt(x_hi, log_x)}"
    )
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(MARKS, series)
    )
    lines.append(" " * 10 + f"[{y_label}]  " + legend)
    return "\n".join(lines)
