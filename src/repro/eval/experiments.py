"""One runner per table/figure of the paper's evaluation (Section 6).

Every ``run_*`` function regenerates the corresponding exhibit: it sweeps
the same parameter the paper sweeps, queries the same window, prints the
same series (via :mod:`repro.eval.reporting`, so the rows land in
``bench_output.txt``), archives a JSON copy under ``results/``, and
returns the structured data for programmatic checks.

Scales are reduced relative to the paper (see :mod:`repro.eval.harness`);
the *shape* of every curve — who wins, by what factor, where the
crossovers fall — is the reproduction target, per DESIGN.md section 4.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.eval import harness, theory
from repro.eval.ascii_chart import render_chart
from repro.eval.metrics import mean_absolute_error, precision_recall, relative_error
from repro.eval.reporting import emit, report
from repro.sketch.countmin import CountMinSketch

#: Delta sweep for the space/point/self-join figures (the paper sweeps
#: 500..10000 over ~1M-7M updates; scaled to the default 60k updates).
DELTAS_MAIN: tuple[float, ...] = (30, 60, 125, 250, 500)
#: Delta sweep for the heavy-hitter figures (paper: 50..1000).
DELTAS_HH: tuple[float, ...] = (4, 8, 16, 32, 64)
#: Delta sweep for the update-time figure (paper: 10^2..10^4).
DELTAS_TIME: tuple[float, ...] = (100, 1000, 10000)

#: Heavy-hitter threshold (paper: phi = 0.0002 at 7M updates; scaled so
#: each dataset retains a nontrivial heavy-hitter set).
HH_PHI = 0.0015

LENGTH_MAIN = harness.scaled(60_000)
LENGTH_HH = harness.scaled(30_000)
LENGTH_TIME = harness.scaled(100_000)
LENGTH_STORY = harness.scaled(120_000)

#: Sampling-seed repetitions for the randomized Sample curves (paper: 10).
SAMPLE_REPS = 3


# --------------------------------------------------------------------- #
# Table 1 and Figure 1 — the Section 1.5 illustrating example
# --------------------------------------------------------------------- #


def run_table1(length: int = LENGTH_STORY) -> dict:
    """Table 1: top-5 most requested URLs, actual vs estimated frequency.

    An ephemeral Count-Min sketch over the ObjectID-like stream, queried
    at the end of the stream.
    """
    stream = harness.get_dataset("ObjectID", length)
    truth = harness.get_truth("ObjectID", length)
    sketch = CountMinSketch(
        width=harness.BENCH_WIDTH_CM,
        depth=harness.BENCH_DEPTH,
        seed=harness.BENCH_SEED,
    )
    for item in stream.items:
        sketch.update(int(item))
    rows = [
        (f"url_{item}", actual, sketch.point(item))
        for item, actual in truth.top_k(5)
    ]
    report(
        "Table 1: top-5 URLs, actual count vs Count-Min estimate "
        f"(m={length})",
        ["URL", "actual count", "estimation"],
        rows,
        json_name="table1",
    )
    return {"rows": rows, "length": length}


def run_fig1(length: int = LENGTH_STORY, delta: float = 60, days: int = 10) -> dict:
    """Figure 1: frequency of the top-5 URLs over time.

    Historical queries ``f_i(0, t]`` on a persistent Count-Min sketch at
    ``days`` checkpoints, against the true running frequencies — all
    reconstructed from the sketch alone, without touching the raw stream.
    """
    truth = harness.get_truth("ObjectID", length)
    sketch = harness.build_pla_cm("ObjectID", length, delta)
    top5 = [item for item, _ in truth.top_k(5)]
    rows = []
    for day in range(1, days + 1):
        t = length * day // days
        row: list = [day]
        for item in top5:
            row.append(truth.frequency(item, 0, t))
            row.append(round(sketch.point(item, 0, t), 1))
        rows.append(tuple(row))
    headers = ["day"]
    for rank, item in enumerate(top5, start=1):
        headers += [f"top{rank}-T", f"top{rank}-A"]
    report(
        f"Figure 1: top-5 URL frequency over time (delta={delta}, "
        f"m={length})",
        headers,
        rows,
        json_name="fig1",
    )
    return {"rows": rows, "items": top5, "delta": delta}


# --------------------------------------------------------------------- #
# Figure 2 — update time
# --------------------------------------------------------------------- #


def _time_scalar_ingest(sketch, stream) -> float:
    """Per-record update loop — the per-update cost the paper plots."""
    times = stream.times.tolist()
    items = stream.items.tolist()
    counts = stream.counts.tolist()
    start = time.perf_counter()
    for t, i, c in zip(times, items, counts):
        sketch.update(i, count=c, time=t)
    return time.perf_counter() - start


def _time_batch_ingest(sketch, stream) -> float:
    """The columnar ``ingest`` path (chunked batch planner)."""
    start = time.perf_counter()
    sketch.ingest(stream)
    return time.perf_counter() - start


def run_fig2(
    length: int = LENGTH_TIME, deltas: Sequence[float] = DELTAS_TIME
) -> dict:
    """Figure 2: processing time of the stream for each persistence scheme.

    The paper's finding: Sample fastest, then the PWC baselines, PLA the
    slowest (cost growing mildly with ``log Delta``), with every scheme
    within a small constant factor of the ephemeral sketch.
    """
    stream = harness.get_dataset("Zipf_3", length)

    start = time.perf_counter()
    ephemeral = CountMinSketch(
        width=harness.BENCH_WIDTH_CM,
        depth=harness.BENCH_DEPTH,
        seed=harness.BENCH_SEED,
    )
    for item in stream.items:
        ephemeral.update(int(item))
    ephemeral_time = time.perf_counter() - start

    rows = []
    for delta in deltas:
        shape = dict(
            width=harness.BENCH_WIDTH_CM,
            depth=harness.BENCH_DEPTH,
            seed=harness.BENCH_SEED,
        )
        sample_t = _time_scalar_ingest(
            PersistentAMS(delta=delta, independent_copies=1, **shape), stream
        )
        pwc_ams_t = _time_scalar_ingest(PWCAMS(delta=delta, **shape), stream)
        pla_t = _time_scalar_ingest(
            PersistentCountMin(delta=delta, **shape), stream
        )
        pwc_cm_t = _time_scalar_ingest(
            PWCCountMin(delta=delta, **shape), stream
        )
        pla_batch_t = _time_batch_ingest(
            PersistentCountMin(delta=delta, **shape), stream
        )
        rows.append(
            (
                delta,
                round(sample_t, 3),
                round(pwc_ams_t, 3),
                round(pla_t, 3),
                round(pwc_cm_t, 3),
                round(pla_batch_t, 3),
                round(ephemeral_time, 3),
            )
        )
    report(
        f"Figure 2: ingest time over {length} updates (seconds)",
        [
            "delta",
            "Sample",
            "PWC_AMS",
            "PLA",
            "PWC_CountMin",
            "PLA_batch",
            "Ephemeral",
        ],
        rows,
        json_name="fig2",
    )
    return {"rows": rows, "length": length}


# --------------------------------------------------------------------- #
# Figure 3 — sketch size vs Delta
# --------------------------------------------------------------------- #


def run_fig3(
    dataset: str,
    length: int = LENGTH_MAIN,
    deltas: Sequence[float] = DELTAS_MAIN,
) -> dict:
    """Figure 3: persistence words vs ``Delta`` for the four schemes.

    ``Sample_Theory`` is ``2 * copies * d * m / Delta`` — the expected
    Sample size, independent of the data.
    """
    rows = []
    for delta in deltas:
        sample = harness.build_sample(dataset, length, delta)
        pwc_ams = harness.build_pwc_ams(dataset, length, delta)
        pla = harness.build_pla_cm(dataset, length, delta)
        pwc_cm = harness.build_pwc_cm(dataset, length, delta)
        rows.append(
            (
                delta,
                sample.persistence_words(),
                pwc_ams.persistence_words(),
                pla.persistence_words(),
                pwc_cm.persistence_words(),
                round(
                    theory.sample_theory_words(
                        length, harness.BENCH_DEPTH, delta, copies=2
                    )
                ),
            )
        )
    report(
        f"Figure 3 ({dataset}): sketch size (words) vs delta (m={length})",
        ["delta", "Sample", "PWC_AMS", "PLA", "PWC_CountMin", "Sample_Theory"],
        rows,
        json_name=f"fig3_{dataset}",
    )
    emit(
        render_chart(
            [row[0] for row in rows],
            {
                "Sample": [row[1] for row in rows],
                "PWC_AMS": [row[2] for row in rows],
                "PLA": [row[3] for row in rows],
                "PWC_CM": [row[4] for row in rows],
            },
            log_x=True,
            log_y=True,
            x_label="delta",
            y_label="words",
        )
    )
    return {"dataset": dataset, "rows": rows, "length": length}


# --------------------------------------------------------------------- #
# Figures 4 & 5 — point-query accuracy
# --------------------------------------------------------------------- #


def _point_errors(
    dataset: str, length: int, delta: float, top: int = 1000
) -> dict[str, tuple[int, float]]:
    """(words, mean absolute error) per scheme for top-``top`` point queries."""
    truth = harness.get_truth(dataset, length)
    s, t = harness.paper_window(length)
    targets = truth.top_k(top, s, t)
    items = [item for item, _ in targets]
    actual = [float(freq) for _, freq in targets]
    schemes = {
        "PLA": harness.build_pla_cm(dataset, length, delta),
        "PWC_CountMin": harness.build_pwc_cm(dataset, length, delta),
        "PWC_AMS": harness.build_pwc_ams(dataset, length, delta),
    }
    out = {}
    for name, sketch in schemes.items():
        estimates = [sketch.point(item, s, t) for item in items]
        out[name] = (
            sketch.persistence_words(),
            mean_absolute_error(estimates, actual),
        )
    return out


def run_fig4(
    dataset: str,
    length: int = LENGTH_MAIN,
    deltas: Sequence[float] = DELTAS_MAIN,
) -> dict:
    """Figure 4: mean absolute point-query error vs ``Delta``.

    Window ``(0.2m, 0.6m]``, top-1000 items of the window (Section 6.3).
    """
    rows = []
    for delta in deltas:
        errors = _point_errors(dataset, length, delta)
        rows.append(
            (
                delta,
                round(errors["PWC_AMS"][1], 2),
                round(errors["PLA"][1], 2),
                round(errors["PWC_CountMin"][1], 2),
            )
        )
    report(
        f"Figure 4 ({dataset}): point-query absolute error vs delta "
        f"(m={length})",
        ["delta", "PWC_AMS", "PLA", "PWC_CountMin"],
        rows,
        json_name=f"fig4_{dataset}",
    )
    return {"dataset": dataset, "rows": rows}


def run_fig5(
    dataset: str,
    length: int = LENGTH_MAIN,
    deltas: Sequence[float] = DELTAS_MAIN,
) -> dict:
    """Figure 5: point-query error vs actual sketch size (the tradeoff)."""
    rows = []
    for delta in deltas:
        errors = _point_errors(dataset, length, delta)
        rows.append(
            (
                delta,
                errors["PWC_AMS"][0],
                round(errors["PWC_AMS"][1], 2),
                errors["PLA"][0],
                round(errors["PLA"][1], 2),
                errors["PWC_CountMin"][0],
                round(errors["PWC_CountMin"][1], 2),
            )
        )
    report(
        f"Figure 5 ({dataset}): point-query error vs sketch size (m={length})",
        [
            "delta",
            "PWC_AMS words",
            "PWC_AMS err",
            "PLA words",
            "PLA err",
            "PWC_CM words",
            "PWC_CM err",
        ],
        rows,
        json_name=f"fig5_{dataset}",
    )
    return {"dataset": dataset, "rows": rows}


# --------------------------------------------------------------------- #
# Figures 6, 7 & 8 — heavy hitters
# --------------------------------------------------------------------- #


def _hh_quality(
    dataset: str, length: int, delta: float, kind: str, phi: float
) -> tuple[int, float, float]:
    """(words, precision, recall) for one heavy-hitter structure."""
    structure = harness.build_hh(dataset, length, delta, kind=kind)
    truth = harness.get_compact_truth(dataset, length)
    s, t = harness.paper_window(length)
    found = structure.heavy_hitters(phi, s, t)
    actual = truth.heavy_hitters(phi, s, t)
    precision, recall = precision_recall(found.keys(), actual.keys())
    return structure.persistence_words(), precision, recall


def run_fig6(
    dataset: str,
    length: int = LENGTH_HH,
    deltas: Sequence[float] = DELTAS_HH,
) -> dict:
    """Figure 6: heavy-hitter structure size vs ``Delta``.

    The dyadic construction multiplies the point-query space by ~log n.
    """
    rows = []
    for delta in deltas:
        pla = harness.build_hh(dataset, length, delta, kind="pla")
        pwc = harness.build_hh(dataset, length, delta, kind="pwc")
        rows.append(
            (delta, pla.persistence_words(), pwc.persistence_words())
        )
    report(
        f"Figure 6 ({dataset}): heavy-hitter sketch size vs delta "
        f"(m={length})",
        ["delta", "PLA", "PWC_CountMin"],
        rows,
        json_name=f"fig6_{dataset}",
    )
    return {"dataset": dataset, "rows": rows}


def run_fig7(
    dataset: str,
    length: int = LENGTH_HH,
    deltas: Sequence[float] = DELTAS_HH,
    phi: float = HH_PHI,
) -> dict:
    """Figure 7: heavy-hitter precision & recall vs ``Delta`` (phi fixed)."""
    rows = []
    for delta in deltas:
        _, pla_p, pla_r = _hh_quality(dataset, length, delta, "pla", phi)
        _, pwc_p, pwc_r = _hh_quality(dataset, length, delta, "pwc", phi)
        rows.append(
            (
                delta,
                round(pla_p, 3),
                round(pla_r, 3),
                round(pwc_p, 3),
                round(pwc_r, 3),
            )
        )
    report(
        f"Figure 7 ({dataset}): heavy-hitter precision/recall vs delta "
        f"(phi={phi}, m={length})",
        ["delta", "PLA-prec", "PLA-rec", "PWC-prec", "PWC-rec"],
        rows,
        json_name=f"fig7_{dataset}",
    )
    return {"dataset": dataset, "rows": rows, "phi": phi}


def run_fig8(
    dataset: str,
    length: int = LENGTH_HH,
    deltas: Sequence[float] = DELTAS_HH,
    phi: float = HH_PHI,
) -> dict:
    """Figure 8: heavy-hitter precision & recall vs actual sketch size."""
    rows = []
    for delta in deltas:
        pla_w, pla_p, pla_r = _hh_quality(dataset, length, delta, "pla", phi)
        pwc_w, pwc_p, pwc_r = _hh_quality(dataset, length, delta, "pwc", phi)
        rows.append(
            (
                delta,
                pla_w,
                round(pla_p, 3),
                round(pla_r, 3),
                pwc_w,
                round(pwc_p, 3),
                round(pwc_r, 3),
            )
        )
    report(
        f"Figure 8 ({dataset}): heavy-hitter quality vs sketch size "
        f"(phi={phi}, m={length})",
        [
            "delta",
            "PLA words",
            "PLA-prec",
            "PLA-rec",
            "PWC words",
            "PWC-prec",
            "PWC-rec",
        ],
        rows,
        json_name=f"fig8_{dataset}",
    )
    return {"dataset": dataset, "rows": rows, "phi": phi}


# --------------------------------------------------------------------- #
# Figures 9 & 10 — self-join size
# --------------------------------------------------------------------- #


#: Query windows for the self-join experiments: the paper's fixed
#: (0.2m, 0.6m] plus two shifted copies.  The paper instead repeats the
#: randomized build 10 times; for the deterministic PWC baselines that
#: would return the identical answer, so window variation stands in for
#: repetition (same estimator, fresh bias realizations).
SELFJOIN_WINDOWS: tuple[tuple[float, float], ...] = (
    (0.2, 0.6),
    (0.1, 0.5),
    (0.3, 0.7),
)


def _selfjoin_errors(
    dataset: str, length: int, delta: float
) -> dict[str, tuple[int, float]]:
    """(words, mean relative self-join error) per scheme.

    Errors are averaged over :data:`SELFJOIN_WINDOWS`, and for Sample
    additionally over :data:`SAMPLE_REPS` independent sampling seeds.
    """
    truth = harness.get_truth(dataset, length)
    windows = [
        (int(a * length), int(b * length)) for a, b in SELFJOIN_WINDOWS
    ]
    actuals = [truth.self_join_size(s, t) for s, t in windows]

    sample_errors = []
    sample_words = 0
    for rep in range(SAMPLE_REPS):
        sketch = harness.build_sample(
            dataset, length, delta, sampling_seed=rep + 1
        )
        for (s, t), actual in zip(windows, actuals):
            sample_errors.append(
                relative_error(sketch.self_join_size(s, t), actual)
            )
        sample_words = sketch.persistence_words()
    pwc_ams = harness.build_pwc_ams(dataset, length, delta)
    pwc_cm = harness.build_pwc_cm(dataset, length, delta)

    def windowed_mean(sketch) -> float:
        return sum(
            relative_error(sketch.self_join_size(s, t), actual)
            for (s, t), actual in zip(windows, actuals)
        ) / len(windows)

    return {
        "Sample": (sample_words, sum(sample_errors) / len(sample_errors)),
        "PWC_AMS": (pwc_ams.persistence_words(), windowed_mean(pwc_ams)),
        "PWC_CountMin": (pwc_cm.persistence_words(), windowed_mean(pwc_cm)),
    }


def run_fig9(
    dataset: str,
    length: int = LENGTH_MAIN,
    deltas: Sequence[float] = DELTAS_MAIN,
) -> dict:
    """Figure 9: self-join relative error vs ``Delta``.

    ``Sample_Theory`` is the Theorem 4.2 bound normalized by the true
    self-join size.
    """
    truth = harness.get_truth(dataset, length)
    s, t = harness.paper_window(length)
    l2sq = float(truth.self_join_size(s, t))
    eps = theory.eps_for_ams_width(harness.BENCH_WIDTH_AMS)
    rows = []
    for delta in deltas:
        errors = _selfjoin_errors(dataset, length, delta)
        rows.append(
            (
                delta,
                errors["Sample"][1],
                errors["PWC_AMS"][1],
                errors["PWC_CountMin"][1],
                theory.sample_theory_selfjoin_error(delta, eps, l2sq),
            )
        )
    report(
        f"Figure 9 ({dataset}): self-join relative error vs delta "
        f"(m={length})",
        ["delta", "Sample", "PWC_AMS", "PWC_CountMin", "Sample_Theory"],
        rows,
        json_name=f"fig9_{dataset}",
    )
    emit(
        render_chart(
            [row[0] for row in rows],
            {
                "Sample": [row[1] for row in rows],
                "PWC_AMS": [row[2] for row in rows],
                "PWC_CM": [row[3] for row in rows],
            },
            log_x=True,
            log_y=True,
            x_label="delta",
            y_label="rel err",
        )
    )
    return {"dataset": dataset, "rows": rows}


def run_fig10(
    dataset: str,
    length: int = LENGTH_MAIN,
    deltas: Sequence[float] = DELTAS_MAIN,
) -> dict:
    """Figure 10: self-join relative error vs actual sketch size."""
    rows = []
    for delta in deltas:
        errors = _selfjoin_errors(dataset, length, delta)
        rows.append(
            (
                delta,
                errors["Sample"][0],
                errors["Sample"][1],
                errors["PWC_AMS"][0],
                errors["PWC_AMS"][1],
                errors["PWC_CountMin"][0],
                errors["PWC_CountMin"][1],
            )
        )
    report(
        f"Figure 10 ({dataset}): self-join error vs sketch size (m={length})",
        [
            "delta",
            "Sample words",
            "Sample err",
            "PWC_AMS words",
            "PWC_AMS err",
            "PWC_CM words",
            "PWC_CM err",
        ],
        rows,
        json_name=f"fig10_{dataset}",
    )
    return {"dataset": dataset, "rows": rows}
