"""Evaluation harness reproducing the paper's experimental study.

The submodules map one-to-one onto the pieces of Section 6:

* :mod:`repro.eval.metrics` — absolute/relative error, precision/recall.
* :mod:`repro.eval.theory` — the closed-form curves the paper overlays
  (``Sample_Theory``, worst-case space, error bounds).
* :mod:`repro.eval.harness` — dataset registry, sketch builders with
  process-level caching, compact-universe remapping, result records.
* :mod:`repro.eval.experiments` — one runner per table/figure, each
  printing the same series the paper plots.
* :mod:`repro.eval.reporting` — plain-text table rendering that stays
  visible under pytest's output capture.
"""

from __future__ import annotations

from repro.eval.harness import (
    DATASETS,
    DatasetSpec,
    compact_items,
    get_dataset,
    get_truth,
)
from repro.eval.metrics import (
    mean_absolute_error,
    precision_recall,
    relative_error,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "get_truth",
    "compact_items",
    "mean_absolute_error",
    "relative_error",
    "precision_recall",
]
