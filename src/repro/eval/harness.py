"""Datasets, cached sketch builders and experiment scaffolding.

The paper's study (Section 6.1) uses three workloads — ``Zipf_3``,
``ClientID`` and ``ObjectID`` — and sweeps the persistence error ``Delta``
for four persistent sketches at fixed ephemeral shape (w = 20000, d = 7,
1M-7M updates).  Pure Python ingests roughly two orders of magnitude
slower than the paper's testbed, so the default scale here is tens of
thousands of updates with ``Delta`` sweeps scaled down proportionally;
set the environment variable ``REPRO_BENCH_SCALE`` (a float multiplier)
to run larger instances.  All comparisons are relative between methods at
equal parameters, which preserves the plots' shapes.

Builders are memoised per process so the figure-3/4/5 benchmarks (which
share sketch builds) and the figure-9/10 benchmarks pay for each
(dataset, sketch, Delta) combination once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream
from repro.streams.truth import GroundTruth
from repro.streams.worldcup import client_id_stream, object_id_stream


def bench_scale() -> float:
    """The ``REPRO_BENCH_SCALE`` multiplier (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int) -> int:
    """Scale a base workload size by the bench multiplier."""
    return max(1000, int(base * bench_scale()))


@dataclass(frozen=True)
class DatasetSpec:
    """A named workload: generator plus its paper description."""

    name: str
    factory: Callable[[int], Stream]
    description: str


DATASETS: dict[str, DatasetSpec] = {
    "Zipf_3": DatasetSpec(
        name="Zipf_3",
        factory=lambda n: zipf_stream(n, exponent=3.0, seed=42),
        description="highly skewed synthetic stream (Zipf coefficient 3)",
    ),
    "ObjectID": DatasetSpec(
        name="ObjectID",
        factory=lambda n: object_id_stream(n, seed=43),
        description="WorldCup-like URL stream (~500 hot items, long tail)",
    ),
    "ClientID": DatasetSpec(
        name="ClientID",
        factory=lambda n: client_id_stream(n, seed=44),
        description="WorldCup-like client-IP stream (near uniform)",
    ),
}

#: Ephemeral sketch shape used by all benchmarks (the paper uses
#: w = 20000, d = 7; scaled down with the workloads).
BENCH_WIDTH_CM = 2048
BENCH_WIDTH_AMS = 2048
BENCH_DEPTH = 5
BENCH_SEED = 7


@lru_cache(maxsize=None)
def get_dataset(name: str, length: int) -> Stream:
    """The named dataset materialized at the given length (cached)."""
    return DATASETS[name].factory(length)


@lru_cache(maxsize=None)
def get_truth(name: str, length: int) -> GroundTruth:
    """Ground truth for a dataset (cached)."""
    return GroundTruth(get_dataset(name, length))


@lru_cache(maxsize=None)
def get_compact_dataset(name: str, length: int) -> Stream:
    """Dataset remapped onto a compact universe (for heavy hitters)."""
    return compact_items(get_dataset(name, length))


@lru_cache(maxsize=None)
def get_compact_truth(name: str, length: int) -> GroundTruth:
    """Ground truth for the compact remapping (cached)."""
    return GroundTruth(get_compact_dataset(name, length))


def compact_items(stream: Stream) -> Stream:
    """Remap items onto ``[0, distinct)`` to shrink the dyadic hierarchy.

    Heavy-hitter identity is preserved (the mapping is a bijection on the
    items that occur), so precision/recall are unaffected while the level
    count drops from ``log2(2^24)`` to ``log2(distinct)``.
    """
    unique, inverse = np.unique(np.asarray(stream.items), return_inverse=True)
    return Stream(
        items=inverse.astype(np.int64),
        times=stream.times,
        counts=stream.counts,
        universe=int(len(unique)),
    )


def paper_window(length: int) -> tuple[int, int]:
    """The fixed query window of Section 6.3: ``(0.2 m, 0.6 m]``."""
    return int(0.2 * length), int(0.6 * length)


# --------------------------------------------------------------------- #
# Cached sketch builders
# --------------------------------------------------------------------- #


@lru_cache(maxsize=None)
def build_pla_cm(
    name: str,
    length: int,
    delta: float,
    width: int = BENCH_WIDTH_CM,
    depth: int = BENCH_DEPTH,
) -> PersistentCountMin:
    """PLA persistent Count-Min over a dataset (cached)."""
    sketch = PersistentCountMin(
        width=width, depth=depth, delta=delta, seed=BENCH_SEED
    )
    sketch.ingest(get_dataset(name, length))
    return sketch


@lru_cache(maxsize=None)
def build_pwc_cm(
    name: str,
    length: int,
    delta: float,
    width: int = BENCH_WIDTH_CM,
    depth: int = BENCH_DEPTH,
) -> PWCCountMin:
    """PWC_CountMin baseline over a dataset (cached)."""
    sketch = PWCCountMin(
        width=width, depth=depth, delta=delta, seed=BENCH_SEED
    )
    sketch.ingest(get_dataset(name, length))
    return sketch


@lru_cache(maxsize=None)
def build_pwc_ams(
    name: str,
    length: int,
    delta: float,
    width: int = BENCH_WIDTH_AMS,
    depth: int = BENCH_DEPTH,
) -> PWCAMS:
    """PWC_AMS baseline over a dataset (cached)."""
    sketch = PWCAMS(width=width, depth=depth, delta=delta, seed=BENCH_SEED)
    sketch.ingest(get_dataset(name, length))
    return sketch


@lru_cache(maxsize=None)
def build_sample(
    name: str,
    length: int,
    delta: float,
    copies: int = 2,
    sampling_seed: int = 1,
    width: int = BENCH_WIDTH_AMS,
    depth: int = BENCH_DEPTH,
) -> PersistentAMS:
    """Sampling-based persistent AMS over a dataset (cached).

    ``sampling_seed`` varies across repetitions of the randomized
    experiments while the hash functions stay fixed.
    """
    sketch = PersistentAMS(
        width=width,
        depth=depth,
        delta=delta,
        seed=BENCH_SEED,
        independent_copies=copies,
        sampling_seed=sampling_seed * 97 + 5,
    )
    sketch.ingest(get_dataset(name, length))
    return sketch


@lru_cache(maxsize=None)
def build_paper_shape_cm(
    name: str,
    length: int,
    delta: float,
    width: int = 20000,
    depth: int = 7,
) -> PersistentCountMin:
    """Paper-shape (w=20000, d=7) PLA Count-Min, bulk-ingested (cached).

    The query-serving benchmark uses the paper's ephemeral shape rather
    than the scaled-down default, so ingest goes through the columnwise
    bulk engine (bit-identical to sequential ingest for PLA trackers).
    """
    from repro.engine import batch_ingest

    sketch = PersistentCountMin(
        width=width, depth=depth, delta=delta, seed=BENCH_SEED
    )
    batch_ingest(sketch, get_dataset(name, length))
    return sketch


def query_workload(
    name: str, length: int, count: int, seed: int = BENCH_SEED
) -> tuple[list[int], list[tuple[float, float]]]:
    """Deterministic historical point-query workload over a dataset.

    Items are drawn from the stream's own empirical distribution (so hot
    and cold counters are both probed) and windows ``(s, t]`` are uniform
    random sub-intervals of the stream's time span — the mix of recent
    and deep-history windows the paper's query-time discussion assumes.
    """
    stream = get_dataset(name, length)
    rng = np.random.default_rng(seed * 1009 + 17)
    items = [
        int(item)
        for item in rng.choice(np.asarray(stream.items), size=count)
    ]
    endpoints = rng.integers(0, length + 1, size=(count, 2))
    lo = endpoints.min(axis=1)
    hi = endpoints.max(axis=1)
    hi = np.minimum(np.maximum(hi, lo + 1), length)
    lo = np.minimum(lo, hi - 1)
    windows = [
        (float(s), float(t)) for s, t in zip(lo.tolist(), hi.tolist())
    ]
    return items, windows


@lru_cache(maxsize=None)
def build_hh(
    name: str,
    length: int,
    delta: float,
    kind: str = "pla",
    width: int = 1024,
    depth: int = 3,
) -> PersistentHeavyHitters:
    """Dyadic heavy-hitter structure over the compact dataset (cached).

    ``kind`` selects the per-level sketch: ``"pla"`` (the paper's PLA) or
    ``"pwc"`` (the PWC_CountMin baseline).
    """
    stream = get_compact_dataset(name, length)
    if kind == "pla":
        factory = lambda w, d, dl, sd, hashes=None: PersistentCountMin(  # noqa: E731
            width=w, depth=d, delta=dl, seed=sd, hashes=hashes
        )
    elif kind == "pwc":
        factory = lambda w, d, dl, sd, hashes=None: PWCCountMin(  # noqa: E731
            width=w, depth=d, delta=dl, seed=sd, hashes=hashes
        )
    else:
        raise ValueError(f"unknown heavy-hitter sketch kind: {kind}")
    structure = PersistentHeavyHitters(
        universe=stream.universe or int(stream.items.max()) + 1,
        width=width,
        depth=depth,
        delta=delta,
        seed=BENCH_SEED,
        sketch_factory=factory,
    )
    structure.ingest(stream)
    return structure
