"""Plain-text experiment reporting.

Experiment reports go to stdout; when run under pytest-benchmark, the
``benchmarks/conftest.py`` fixture disables output capture around each
experiment so the series the paper plots land in the operator's
``bench_output.txt``.  Structured copies of every report are also written
to ``results/`` as JSON for archival and for authoring EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Sequence

#: Directory for machine-readable experiment outputs.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Every line emitted this session, in order.  The benchmark conftest
#: replays these in ``pytest_terminal_summary`` (which runs uncaptured),
#: so the experiment tables always reach the operator's log even though
#: pytest captures stdout during the tests themselves.
SESSION_LINES: list[str] = []


def emit(text: str = "") -> None:
    """Print one report line, flushing eagerly, and record it."""
    SESSION_LINES.append(text)
    print(text, file=sys.stdout, flush=True)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(h) for h in headers]] + [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def report(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    json_name: str | None = None,
) -> None:
    """Emit a titled table and archive it as JSON under ``results/``."""
    emit()
    emit(f"=== {title} ===")
    emit(format_table(headers, rows))
    if json_name:
        save_json(json_name, {"title": title, "headers": list(headers),
                              "rows": [list(r) for r in rows]})


def save_json(name: str, payload: dict) -> Path:
    """Write ``payload`` to ``results/<name>.json`` and return the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path
