"""sketchlint — the repo's invariant-aware static analyzer.

A thin AST-based engine (stdlib :mod:`ast` only, no third-party deps)
plus a table of repo-specific rules (:mod:`repro.analysis.rules`).  Each
rule is a small :class:`ast.NodeVisitor` subclass registered in
:data:`RULES`; a rule encodes an invariant the paper's correctness
argument relies on — seeded RNG discipline, monotone timestamps into the
PLA, no float equality in sketch math — rather than generic style.

Suppression is per line::

    value = random.random()  # sketchlint: disable=SL001
    other = bad() or worse()  # sketchlint: disable=SL001,SL002
    anything = goes()  # sketchlint: disable=all

Exit codes: 0 clean, 1 findings, 2 operational errors (unreadable or
unparsable file, unknown rule selector).  ``--warn-only`` reports
findings but still exits 0, which is how the ``benchmarks/`` and
``examples/`` trees are tracked while they are ratcheted down.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import IO, Iterable, Sequence

#: Per-line suppression marker.  The comma-separated list may name rule
#: codes (``SL001``) or ``all``.
_SUPPRESS_RE = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (text output)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class Rule(ast.NodeVisitor):
    """Base class for sketchlint rules.

    Subclasses set :attr:`code` (``SLxxx``), :attr:`summary` (one line,
    shown by ``--list-rules``) and :attr:`rationale` (why the repo cares;
    surfaced in docs), override visitor methods, and are registered with
    :func:`register`.  Override :meth:`applies_to` to scope a rule to a
    subtree (paths are compared in POSIX form) and :meth:`check_module`
    for whole-module checks that do not fit the visitor pattern.
    """

    code: str = "SL000"
    summary: str = ""
    rationale: str = ""

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the rule runs on ``path`` (POSIX-normalized)."""
        return True

    def check_module(self, tree: ast.Module, source: str) -> None:
        """Run the rule over one parsed module (default: visit the AST)."""
        self.visit(tree)

    def report(self, node: ast.AST, message: str | None = None) -> None:
        """Record a finding at ``node`` (defaults to the rule summary)."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message if message is not None else self.summary,
            )
        )


#: Rule table: code -> rule class.  Populated by :func:`register`.
RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULES`."""
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule codes (upper-cased)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[lineno] = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
    return out


def _resolve_select(select: Iterable[str] | None) -> set[str] | None:
    if select is None:
        return None
    codes = {code.strip().upper() for code in select if code.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one module given as source text.

    ``path`` participates in rule scoping (e.g. SL005 only applies under
    ``src/``), so tests pass representative fake paths.  Raises
    :class:`SyntaxError` when the module does not parse.
    """
    codes = _resolve_select(select)
    norm = PurePosixPath(path).as_posix()
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    for code, cls in sorted(RULES.items()):
        if codes is not None and code not in codes:
            continue
        if not cls.applies_to(norm):
            continue
        cls(norm, findings).check_module(tree, source)
    suppressed = _suppressions(source)
    kept = [
        finding
        for finding in findings
        if not (
            finding.line in suppressed
            and (
                finding.code in suppressed[finding.line]
                or "ALL" in suppressed[finding.line]
            )
        )
    ]
    return sorted(kept, key=lambda f: (f.line, f.col, f.code))


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files and directories.

    Returns ``(findings, errors)`` where ``errors`` are operational
    problems (missing file, syntax error) that map to exit code 2.
    """
    findings: list[Finding] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        try:
            findings.extend(lint_source(source, str(path), select=select))
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
    return findings, errors


def _render(findings: list[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            {
                "count": len(findings),
                "findings": [finding.to_dict() for finding in findings],
            },
            indent=2,
        )
    return "\n".join(finding.format() for finding in findings)


def run_lint(
    paths: Sequence[str | Path],
    fmt: str = "text",
    select: Iterable[str] | None = None,
    warn_only: bool = False,
    list_rules: bool = False,
    out: IO[str] | None = None,
    err: IO[str] | None = None,
) -> int:
    """Shared driver behind ``python -m repro.analysis`` and ``repro lint``."""
    # Resolve the streams per call, not at definition time, so callers
    # that redirect sys.stdout (pytest's capsys) see the output.
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if list_rules:
        for code, cls in sorted(RULES.items()):
            print(f"{code}  {cls.summary}", file=out)
        return 0
    try:
        findings, errors = lint_paths(paths, select=select)
    except KeyError as exc:
        print(f"sketchlint: {exc.args[0]}", file=err)
        return 2
    rendered = _render(findings, fmt)
    if rendered:
        print(rendered, file=out)
    for error in errors:
        print(f"sketchlint: {error}", file=err)
    if not findings and not errors and fmt == "text":
        print("sketchlint: clean", file=out)
    if errors:
        return 2
    if findings and not warn_only:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="sketchlint: invariant-aware static analysis for repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but exit 0 (baseline/ratchet mode)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for sketchlint; returns a process exit code."""
    args = build_parser().parse_args(argv)
    select = args.select.split(",") if args.select else None
    try:
        return run_lint(
            args.paths,
            fmt=args.fmt,
            select=select,
            warn_only=args.warn_only,
            list_rules=args.list_rules,
        )
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not a lint error.
        sys.stderr.close()
        return 0


# Importing the rule set populates RULES; the import sits at the bottom
# so rules can subclass Rule from this partially-initialized module.
from repro.analysis import rules as _rules  # noqa: E402,F401
