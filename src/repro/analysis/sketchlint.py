"""sketchlint — the repo's invariant-aware static analyzer.

Two engines share one driver:

* **Module rules** (:class:`Rule`, registered in
  :mod:`repro.analysis.rules`) — per-file AST visitors; each encodes an
  invariant the paper's correctness argument relies on (seeded RNG
  discipline, monotone timestamps into the PLA, no float equality in
  sketch math) rather than generic style.
* **Project rules** (:class:`ProjectRule`, registered in
  :mod:`repro.analysis.interproc`) — whole-program passes over a symbol
  table, call graph and dataflow summaries
  (:mod:`repro.analysis.symbols` / :mod:`~repro.analysis.callgraph` /
  :mod:`~repro.analysis.dataflow`), which see through helper wrappers
  and across modules: durability escapes, fork-shared mutable state,
  contract-coverage gaps, unpropagated RNG state.

A module rule may declare ``superseded_by = "SLxxx"``: when the
superseding project rule is active it replaces the module rule's
per-function approximation (``--select`` of the old code still runs it
explicitly).

Suppression is per line::

    value = random.random()  # sketchlint: disable=SL001
    other = bad() or worse()  # sketchlint: disable=SL001,SL002
    anything = goes()  # sketchlint: disable=all

Exit codes: 0 clean, 1 findings, 2 operational errors (unreadable or
unparsable file, unknown rule selector, exceeded time budget).
``--warn-only`` reports findings but still exits 0; ``--baseline``
turns the gate into a ratchet (fail on *new* findings only).
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import pickle
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import IO, Iterable, Sequence

from repro.analysis.callgraph import Project
from repro.analysis.symbols import build_symbol_table

#: Per-line suppression marker.  The comma-separated list may name rule
#: codes (``SL001``) or ``all``.
_SUPPRESS_RE = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Version tag for the on-disk parse cache (bump on AST-affecting changes).
_CACHE_FORMAT = 1


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (text output)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def baseline_key(self) -> str:
        """Ratchet identity: one counter per ``path::code`` pair."""
        return f"{self.path}::{self.code}"


class Rule(ast.NodeVisitor):
    """Base class for per-module sketchlint rules.

    Subclasses set :attr:`code` (``SLxxx``), :attr:`summary` (one line,
    shown by ``--list-rules``) and :attr:`rationale` (why the repo cares;
    surfaced in docs), override visitor methods, and are registered with
    :func:`register`.  Override :meth:`applies_to` to scope a rule to a
    subtree (paths are compared in POSIX form) and :meth:`check_module`
    for whole-module checks that do not fit the visitor pattern.  Set
    :attr:`superseded_by` to a project-rule code when a whole-program
    pass replaces this rule's approximation.
    """

    code: str = "SL000"
    summary: str = ""
    rationale: str = ""
    superseded_by: str | None = None

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the rule runs on ``path`` (POSIX-normalized)."""
        return True

    def check_module(self, tree: ast.Module, source: str) -> None:
        """Run the rule over one parsed module (default: visit the AST)."""
        self.visit(tree)

    def report(self, node: ast.AST, message: str | None = None) -> None:
        """Record a finding at ``node`` (defaults to the rule summary)."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message if message is not None else self.summary,
            )
        )


class ProjectRule:
    """Base class for whole-program (interprocedural) rules.

    Subclasses set :attr:`code` / :attr:`summary` / :attr:`rationale`,
    implement :meth:`check_project`, and are registered with
    :func:`register_project`.  Findings are reported against the file
    that contains the offending node, wherever the analysis entered
    from — that keeps per-line suppressions working unchanged.
    """

    code: str = "SL000"
    summary: str = ""
    rationale: str = ""

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = findings

    def check_project(self, project: Project) -> None:
        """Run the rule over the whole program."""
        raise NotImplementedError

    def report(
        self, path: str, node: ast.AST, message: str | None = None
    ) -> None:
        """Record a finding at ``node`` inside ``path``."""
        self.findings.append(
            Finding(
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message if message is not None else self.summary,
            )
        )


#: Module-rule table: code -> rule class.  Populated by :func:`register`.
RULES: dict[str, type[Rule]] = {}

#: Project-rule table: code -> rule class (:func:`register_project`).
PROJECT_RULES: dict[str, type[ProjectRule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a module rule to :data:`RULES`."""
    if cls.code in RULES or cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to :data:`PROJECT_RULES`."""
    if cls.code in RULES or cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    PROJECT_RULES[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule] | type[ProjectRule]]:
    """Merged rule table (module + project), sorted by code."""
    merged: dict[str, type[Rule] | type[ProjectRule]] = {}
    merged.update(RULES)
    merged.update(PROJECT_RULES)
    return dict(sorted(merged.items()))


class TimeBudgetExceeded(RuntimeError):
    """The analysis ran past its hard wall-clock budget."""

    def __init__(self, phase: str, elapsed: float, budget: float) -> None:
        super().__init__(
            f"analysis time budget exceeded: {elapsed:.1f}s spent "
            f"(budget {budget:.1f}s) during {phase}; raise --time-budget, "
            "narrow the target paths, or enable --cache"
        )
        self.phase = phase
        self.elapsed = elapsed
        self.budget = budget


class _Budget:
    """Monotonic wall-clock budget checked at phase boundaries."""

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds if seconds and seconds > 0 else None
        self.start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def check(self, phase: str) -> None:
        if self.seconds is not None and self.elapsed() > self.seconds:
            raise TimeBudgetExceeded(phase, self.elapsed(), self.seconds)


@dataclass
class AnalysisStats:
    """``--stats`` payload: sizes and wall-clock of one analysis run."""

    files: int = 0
    functions: int = 0
    classes: int = 0
    callgraph_nodes: int = 0
    callgraph_edges: int = 0
    parse_seconds: float = 0.0
    module_rule_seconds: float = 0.0
    project_rule_seconds: float = 0.0
    total_seconds: float = 0.0
    cache_hits: int = 0
    findings_by_rule: dict[str, int] = field(default_factory=dict)
    findings_by_file: dict[str, int] = field(default_factory=dict)

    def record(self, findings: list[Finding]) -> None:
        """Tally per-rule / per-file finding counts into the stats."""
        by_rule: dict[str, int] = {}
        by_file: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.code] = by_rule.get(finding.code, 0) + 1
            by_file[finding.path] = by_file.get(finding.path, 0) + 1
        self.findings_by_rule = dict(sorted(by_rule.items()))
        self.findings_by_file = dict(
            sorted(by_file.items(), key=lambda kv: (-kv[1], kv[0]))
        )

    def render(self) -> str:
        """Human-readable ``--stats`` block."""
        lines = [
            "sketchlint stats:",
            f"  files analyzed      {self.files}"
            + (f" ({self.cache_hits} from cache)" if self.cache_hits else ""),
            f"  symbols             {self.functions} functions, "
            f"{self.classes} classes",
            f"  call graph          {self.callgraph_nodes} nodes, "
            f"{self.callgraph_edges} edges",
            f"  wall time           {self.total_seconds:.2f}s "
            f"(parse {self.parse_seconds:.2f}s, module rules "
            f"{self.module_rule_seconds:.2f}s, project rules "
            f"{self.project_rule_seconds:.2f}s)",
        ]
        if self.findings_by_rule:
            per_rule = ", ".join(
                f"{code}={count}"
                for code, count in self.findings_by_rule.items()
            )
            lines.append(f"  findings by rule    {per_rule}")
            top = list(self.findings_by_file.items())[:5]
            per_file = ", ".join(f"{path}={count}" for path, count in top)
            lines.append(f"  findings by file    {per_file}")
        else:
            lines.append("  findings            none")
        return "\n".join(lines)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule codes (upper-cased)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[lineno] = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
    return out


def _apply_suppressions(
    findings: list[Finding], suppressed_by_path: dict[str, dict[int, set[str]]]
) -> list[Finding]:
    kept = []
    for finding in findings:
        suppressed = suppressed_by_path.get(finding.path, {})
        codes = suppressed.get(finding.line)
        if codes is not None and (finding.code in codes or "ALL" in codes):
            continue
        kept.append(finding)
    return kept


def _resolve_select(select: Iterable[str] | None) -> set[str] | None:
    if select is None:
        return None
    codes = {code.strip().upper() for code in select if code.strip()}
    unknown = codes - set(RULES) - set(PROJECT_RULES)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def _active_module_rules(codes: set[str] | None) -> list[type[Rule]]:
    active = []
    for code, cls in sorted(RULES.items()):
        if codes is not None:
            if code in codes:
                active.append(cls)
            continue
        # Default run: a rule superseded by an active project rule steps
        # aside — the whole-program pass replaces its approximation.
        if cls.superseded_by is not None and cls.superseded_by in PROJECT_RULES:
            continue
        active.append(cls)
    return active


def _active_project_rules(codes: set[str] | None) -> list[type[ProjectRule]]:
    return [
        cls
        for code, cls in sorted(PROJECT_RULES.items())
        if codes is None or code in codes
    ]


def _run_module_rules(
    tree: ast.Module,
    source: str,
    norm: str,
    rules: list[type[Rule]],
    findings: list[Finding],
) -> None:
    for cls in rules:
        if not cls.applies_to(norm):
            continue
        cls(norm, findings).check_module(tree, source)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one module given as source text.

    Runs both engines: the per-module rules, and the project rules over
    a single-module program (so interprocedural fixtures and snippets
    can be checked without touching the filesystem).  ``path``
    participates in rule scoping (e.g. SL005 only applies under
    ``src/``), so tests pass representative fake paths.  Raises
    :class:`SyntaxError` when the module does not parse.
    """
    codes = _resolve_select(select)
    norm = PurePosixPath(path).as_posix()
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    _run_module_rules(tree, source, norm, _active_module_rules(codes), findings)
    project_rules = _active_project_rules(codes)
    if project_rules:
        project = Project(build_symbol_table([(norm, source, tree)]))
        for cls in project_rules:
            cls(findings).check_project(project)
    findings = [f for f in findings if f.path == norm]
    kept = _apply_suppressions(findings, {norm: _suppressions(source)})
    return sorted(kept, key=lambda f: (f.line, f.col, f.code))


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


class _ParseCache:
    """Content-addressed cache of parsed module ASTs.

    One pickle file per cache directory, mapping path -> (sha256, tree).
    CI caches the directory between steps, so the symbol-table build of
    the second analyzer invocation skips re-parsing unchanged files.
    """

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / "sketchlint-cache.pkl"
        self.entries: dict[str, tuple[str, ast.Module]] = {}
        self.hits = 0
        self._dirty = False
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("format") == _CACHE_FORMAT:
                self.entries = payload["entries"]
        except (OSError, pickle.PickleError, EOFError, KeyError):
            self.entries = {}

    def parse(self, path: str, source: str) -> ast.Module:
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = self.entries.get(path)
        if cached is not None and cached[0] == digest:
            self.hits += 1
            return cached[1]
        tree = ast.parse(source, filename=path)
        self.entries[path] = (digest, tree)
        self._dirty = True
        return tree

    def save(self) -> None:
        if not self._dirty:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as handle:
                pickle.dump(
                    {"format": _CACHE_FORMAT, "entries": self.entries},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        except OSError:
            pass  # caching is best-effort; analysis results are unaffected


def analyze_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    time_budget: float | None = None,
    cache_dir: str | Path | None = None,
) -> tuple[list[Finding], list[str], AnalysisStats]:
    """Full two-engine analysis of files and directories.

    Returns ``(findings, errors, stats)`` where ``errors`` are
    operational problems (missing file, syntax error) that map to exit
    code 2.  Raises :class:`TimeBudgetExceeded` when ``time_budget``
    seconds of wall clock are spent before the run completes.
    """
    codes = _resolve_select(select)
    budget = _Budget(time_budget)
    stats = AnalysisStats()
    cache = _ParseCache(cache_dir) if cache_dir is not None else None

    findings: list[Finding] = []
    errors: list[str] = []
    modules: list[tuple[str, str, ast.Module]] = []
    suppressed_by_path: dict[str, dict[int, set[str]]] = {}

    parse_start = time.monotonic()
    for path in iter_python_files(paths):
        budget.check(f"parsing {path}")
        norm = PurePosixPath(path).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        try:
            if cache is not None:
                tree = cache.parse(norm, source)
            else:
                tree = ast.parse(source, filename=norm)
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        modules.append((norm, source, tree))
        suppressed_by_path[norm] = _suppressions(source)
    stats.parse_seconds = time.monotonic() - parse_start
    stats.files = len(modules)
    if cache is not None:
        stats.cache_hits = cache.hits
        cache.save()

    module_start = time.monotonic()
    module_rules = _active_module_rules(codes)
    for norm, source, tree in modules:
        budget.check(f"module rules on {norm}")
        _run_module_rules(tree, source, norm, module_rules, findings)
    stats.module_rule_seconds = time.monotonic() - module_start

    project_rules = _active_project_rules(codes)
    project_start = time.monotonic()
    if project_rules and modules:
        budget.check("symbol table construction")
        project = Project(build_symbol_table(modules))
        stats.functions = len(project.symbols.functions)
        stats.classes = len(project.symbols.classes)
        stats.callgraph_nodes = project.graph.node_count
        stats.callgraph_edges = project.graph.edge_count
        for cls in project_rules:
            budget.check(f"project rule {cls.code}")
            cls(findings).check_project(project)
    stats.project_rule_seconds = time.monotonic() - project_start

    kept = _apply_suppressions(findings, suppressed_by_path)
    kept = sorted(kept, key=lambda f: (f.path, f.line, f.col, f.code))
    stats.total_seconds = budget.elapsed()
    stats.record(kept)
    return kept, errors, stats


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files and directories (both engines); legacy two-tuple API."""
    findings, errors, _stats = analyze_paths(paths, select=select)
    return findings, errors


# --------------------------------------------------------------------- #
# Baseline ratchet
# --------------------------------------------------------------------- #


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a ratchet baseline file (``path::code`` -> count)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    counts = payload.get("baseline", {})
    return {str(key): int(value) for key, value in counts.items()}


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the current findings as the new ratchet baseline."""
    counts: dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "format": "sketchlint-baseline",
        "version": 1,
        "baseline": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def ratchet(
    findings: list[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], int]:
    """Split findings against a baseline.

    Returns ``(new_findings, known_count)``: a ``path::code`` group with
    more findings than its baseline count surfaces whole (line numbers
    shift too easily to pair individual findings), groups at or under
    their budget are "known" and suppressed.  Counts-only keys make the
    gate a true ratchet — fixing a finding without updating the baseline
    can never *create* failures elsewhere.
    """
    grouped: dict[str, list[Finding]] = {}
    for finding in findings:
        grouped.setdefault(finding.baseline_key(), []).append(finding)
    new: list[Finding] = []
    known = 0
    for key, group in grouped.items():
        budget = baseline.get(key, 0)
        if len(group) > budget:
            new.extend(group)
        else:
            known += len(group)
    return sorted(new, key=lambda f: (f.path, f.line, f.col, f.code)), known


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #


def _render_sarif(findings: list[Finding]) -> str:
    """SARIF 2.1.0 document (one run), for CI code-scanning upload."""
    rule_ids = sorted(all_rules())
    rules_meta = []
    for code in rule_ids:
        cls = all_rules()[code]
        rules_meta.append(
            {
                "id": code,
                "shortDescription": {"text": cls.summary or code},
                "fullDescription": {"text": cls.rationale or cls.summary},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    index = {code: pos for pos, code in enumerate(rule_ids)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": index.get(finding.code, -1),
                "level": "warning",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sketchlint",
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _render(findings: list[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            {
                "count": len(findings),
                "findings": [finding.to_dict() for finding in findings],
            },
            indent=2,
        )
    if fmt == "sarif":
        return _render_sarif(findings)
    return "\n".join(finding.format() for finding in findings)


def run_lint(
    paths: Sequence[str | Path],
    fmt: str = "text",
    select: Iterable[str] | None = None,
    warn_only: bool = False,
    list_rules: bool = False,
    out: IO[str] | None = None,
    err: IO[str] | None = None,
    baseline: str | Path | None = None,
    update_baseline: bool = False,
    stats: bool = False,
    time_budget: float | None = None,
    cache_dir: str | Path | None = None,
) -> int:
    """Shared driver behind ``python -m repro.analysis`` and ``repro lint``."""
    # Resolve the streams per call, not at definition time, so callers
    # that redirect sys.stdout (pytest's capsys) see the output.
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if list_rules:
        for code, cls in all_rules().items():
            kind = "project" if code in PROJECT_RULES else "module"
            print(f"{code}  [{kind}]  {cls.summary}", file=out)
        return 0
    try:
        findings, errors, run_stats = analyze_paths(
            paths,
            select=select,
            time_budget=time_budget,
            cache_dir=cache_dir,
        )
    except KeyError as exc:
        print(f"sketchlint: {exc.args[0]}", file=err)
        return 2
    except TimeBudgetExceeded as exc:
        print(f"sketchlint: {exc}", file=err)
        return 2

    if update_baseline:
        if baseline is None:
            print(
                "sketchlint: --update-baseline requires --baseline PATH",
                file=err,
            )
            return 2
        write_baseline(baseline, findings)
        print(
            f"sketchlint: baseline updated with {len(findings)} finding(s) "
            f"-> {baseline}",
            file=out,
        )
        return 0

    known = 0
    if baseline is not None:
        try:
            budget_counts = load_baseline(baseline)
        except (OSError, ValueError) as exc:
            print(f"sketchlint: unreadable baseline {baseline}: {exc}", file=err)
            return 2
        findings, known = ratchet(findings, budget_counts)
        run_stats.record(findings)

    rendered = _render(findings, fmt)
    if rendered:
        print(rendered, file=out)
    for error in errors:
        print(f"sketchlint: {error}", file=err)
    if known and fmt == "text":
        print(
            f"sketchlint: {known} known finding(s) held by baseline "
            f"{baseline}",
            file=out,
        )
    if not findings and not errors and fmt == "text":
        print("sketchlint: clean", file=out)
    if stats:
        print(run_stats.render(), file=out)
    if errors:
        return 2
    if findings and not warn_only:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="sketchlint: invariant-aware static analysis for repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but exit 0 (baseline/ratchet mode)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="ratchet file: fail only on findings beyond the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics (findings by rule/file, call-graph "
        "size, wall time)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="hard wall-clock budget; exceeded runs exit 2 (0 disables; "
        "default 120)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        dest="cache_dir",
        help="directory for the parsed-AST cache (reused across runs/steps)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for sketchlint; returns a process exit code."""
    args = build_parser().parse_args(argv)
    select = args.select.split(",") if args.select else None
    try:
        return run_lint(
            args.paths,
            fmt=args.fmt,
            select=select,
            warn_only=args.warn_only,
            list_rules=args.list_rules,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            stats=args.stats,
            time_budget=args.time_budget,
            cache_dir=args.cache_dir,
        )
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not a lint error.
        sys.stderr.close()
        return 0


# Importing the rule sets populates RULES / PROJECT_RULES; the imports
# sit at the bottom so rules can subclass Rule / ProjectRule from this
# partially-initialized module.
from repro.analysis import interproc as _interproc  # noqa: E402,F401
from repro.analysis import rules as _rules  # noqa: E402,F401
