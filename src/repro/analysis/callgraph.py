"""Best-effort whole-program call graph over a :class:`SymbolTable`.

Call sites are resolved statically, without executing imports:

* plain names — nested functions, module-level functions, classes
  (edges land on ``__init__``) and imported names;
* ``self.method(...)`` — method lookup through the project-resolvable
  base-class chain, plus *virtual* edges to every subclass override
  (a durable entry point that calls ``self.save()`` must reach the
  override that actually writes);
* ``self.attr.method(...)`` and ``local.method(...)`` — receiver types
  recovered from ``self.attr: X`` annotations, ``x = ClassName(...)``
  bindings, parameter annotations and project return annotations;
* ``alias.func(...)`` — the module's import table;
* a unique-name fallback: a method name implemented exactly once in the
  whole project resolves to that implementation.

Unresolvable sites stay in the graph with no targets — the
interprocedural rules treat them as "no edge" (under-approximate,
so whole-program findings never rest on a guessed edge).

:class:`Project` bundles the symbol table, the call graph and a cache
of dataflow summaries; it is the object every ``ProjectRule`` receives.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis import dataflow
from repro.analysis.dataflow import DataflowSummary
from repro.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    annotation_class_name,
)


@dataclass
class CallSite:
    """One call expression inside a function scope."""

    caller: str  # qualname of the enclosing function
    node: ast.Call
    name: str  # rightmost identifier of the callee expression
    targets: tuple[str, ...] = ()  # resolved callee qualnames (may be empty)

    @property
    def line(self) -> int:
        return self.node.lineno


class _SiteCollector(ast.NodeVisitor):
    """Collect the calls of one scope, skipping nested function bodies."""

    def __init__(self, root: ast.AST) -> None:
        self.root = root
        self.calls: list[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.root:
            self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is self.root:
            self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if node is self.root:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _rightmost_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _attr_chain(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when not a pure name chain."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return parts[::-1]
    return None


class CallGraph:
    """Resolved call sites, indexed both ways."""

    def __init__(self) -> None:
        self.sites: dict[str, list[CallSite]] = {}
        self.callers: dict[str, set[str]] = {}

    def add(self, site: CallSite) -> None:
        """Record one call site and index its resolved targets."""
        self.sites.setdefault(site.caller, []).append(site)
        for target in site.targets:
            self.callers.setdefault(target, set()).add(site.caller)

    def callees(self, qualname: str) -> set[str]:
        """Every resolved callee qualname of ``qualname``'s call sites."""
        return {
            target
            for site in self.sites.get(qualname, [])
            for target in site.targets
        }

    @property
    def node_count(self) -> int:
        nodes = set(self.sites)
        nodes.update(self.callers)
        return len(nodes)

    @property
    def edge_count(self) -> int:
        return sum(
            len(site.targets)
            for sites in self.sites.values()
            for site in sites
        )


class Project:
    """Symbol table + call graph + dataflow cache for one analysis run."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.graph = CallGraph()
        self._summaries: dict[str, DataflowSummary] = {}
        self._local_types: dict[str, dict[str, str]] = {}
        for fn in list(symbols.functions.values()):
            self._build_sites(fn)

    # ------------------------------------------------------------------ #
    # Dataflow access
    # ------------------------------------------------------------------ #

    def summary(self, qualname: str) -> DataflowSummary | None:
        """Cached dataflow summary of a function, by qualname."""
        if qualname in self._summaries:
            return self._summaries[qualname]
        fn = self.symbols.functions.get(qualname)
        if fn is None:
            return None
        summary = dataflow.summarize(fn.node)
        self._summaries[qualname] = summary
        return summary

    def module_of(self, fn: FunctionInfo) -> ModuleInfo | None:
        """The :class:`ModuleInfo` a function was indexed from."""
        return self.symbols.modules.get(fn.module)

    # ------------------------------------------------------------------ #
    # Call-site construction
    # ------------------------------------------------------------------ #

    def _build_sites(self, fn: FunctionInfo) -> None:
        collector = _SiteCollector(fn.node)
        collector.visit(fn.node)
        local_types = self._infer_local_types(fn)
        for call in collector.calls:
            targets = self._resolve_call(fn, call.func, local_types)
            self.graph.add(
                CallSite(
                    caller=fn.qualname,
                    node=call,
                    name=_rightmost_name(call.func),
                    targets=tuple(target.qualname for target in targets),
                )
            )

    def _infer_local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Local name -> bare class name, from annotations and bindings."""
        cached = self._local_types.get(fn.qualname)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                annotated = annotation_class_name(arg.annotation)
                if annotated is not None:
                    types[arg.arg] = annotated
        summary = self.summary(fn.qualname)
        if summary is not None:
            types.update(summary.local_types)
        # x = self.helper() where helper's return annotation names a class
        collector = _SiteCollector(fn.node)
        collector.visit(fn.node)
        for stmt in ast.walk(fn.node):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            resolved = self._resolve_call(fn, stmt.value.func, types)
            for target in resolved:
                node2 = target.node
                if isinstance(node2, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    annotated = annotation_class_name(node2.returns)
                    if annotated is not None:
                        types[stmt.targets[0].id] = annotated
                        break
        self._local_types[fn.qualname] = types
        return types

    def _class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.cls is None:
            return None
        return self.symbols.classes.get(fn.cls)

    def _resolve_in_class(
        self, cls: ClassInfo, method: str, virtual: bool
    ) -> list[FunctionInfo]:
        found = self.symbols.mro_method(cls, method)
        targets = [found] if found is not None else []
        if virtual:
            targets.extend(self.symbols.overrides(cls, method))
        # Dedupe, stable order.
        seen: set[str] = set()
        out: list[FunctionInfo] = []
        for target in targets:
            if target.qualname not in seen:
                seen.add(target.qualname)
                out.append(target)
        return out

    def _expand_class_target(
        self, target: FunctionInfo | ClassInfo
    ) -> list[FunctionInfo]:
        if isinstance(target, FunctionInfo):
            return [target]
        init = self.symbols.mro_method(target, "__init__")
        return [init] if init is not None else []

    def _resolve_name(
        self, fn: FunctionInfo, name: str
    ) -> list[FunctionInfo]:
        # Nested function defined in this (or an enclosing) scope.
        scope: FunctionInfo | None = fn
        while scope is not None:
            nested = self.symbols.functions.get(f"{scope.qualname}.{name}")
            if nested is not None:
                return [nested]
            scope = (
                self.symbols.functions.get(scope.parent)
                if scope.parent is not None
                else None
            )
        module = self.module_of(fn)
        if module is None:
            return []
        if name in module.functions:
            return [module.functions[name]]
        if name in module.classes:
            return self._expand_class_target(module.classes[name])
        target = module.imports.get(name)
        if target is not None:
            resolved = self.symbols.resolve_dotted(target)
            if resolved is not None:
                return self._expand_class_target(resolved)
        return []

    def _resolve_call(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        local_types: dict[str, str],
    ) -> list[FunctionInfo]:
        if isinstance(expr, ast.Name):
            return self._resolve_name(fn, expr.id)
        chain = _attr_chain(expr)
        if chain is None or len(chain) < 2:
            return []
        module = self.module_of(fn)
        if module is None:
            return []
        root, *attrs = chain
        method = attrs[-1]
        # self.method(...) / self.attr.method(...)
        if root == "self":
            cls = self._class_of(fn)
            if cls is not None:
                if len(attrs) == 1:
                    found = self._resolve_in_class(cls, method, virtual=True)
                    if found:
                        return found
                elif len(attrs) == 2:
                    attr_cls_name = cls.attr_types.get(attrs[0])
                    if attr_cls_name is not None:
                        attr_cls = self.symbols.resolve_class(
                            module, attr_cls_name
                        )
                        if attr_cls is not None:
                            found = self._resolve_in_class(
                                attr_cls, method, virtual=True
                            )
                            if found:
                                return found
            return self._unique_method(method)
        # typed local receiver: x = ClassName(...); x.method(...) or
        # x.attr.method(...) through the receiver's attribute types.
        if root in local_types:
            receiver = self.symbols.resolve_class(module, local_types[root])
            if receiver is not None:
                if len(attrs) == 1:
                    found = self._resolve_in_class(receiver, method, virtual=True)
                    if found:
                        return found
                elif len(attrs) == 2:
                    attr_cls_name = receiver.attr_types.get(attrs[0])
                    receiver_module = self.symbols.modules.get(receiver.module)
                    if attr_cls_name is not None and receiver_module is not None:
                        attr_cls = self.symbols.resolve_class(
                            receiver_module, attr_cls_name
                        )
                        if attr_cls is not None:
                            found = self._resolve_in_class(
                                attr_cls, method, virtual=True
                            )
                            if found:
                                return found
        # imported module / imported name: alias.b.c(...)
        target = module.imports.get(root)
        if target is not None:
            dotted = ".".join([target, *attrs])
            resolved = self.symbols.resolve_dotted(dotted)
            if resolved is not None:
                return self._expand_class_target(resolved)
            # alias resolved to a class: Class.method / instance import
            base = self.symbols.resolve_dotted(target)
            if isinstance(base, ClassInfo) and len(attrs) == 1:
                found = self._resolve_in_class(base, method, virtual=False)
                if found:
                    return found
        # same-module class attribute access: Class.method(...)
        if root in module.classes and len(attrs) == 1:
            found = self._resolve_in_class(
                module.classes[root], method, virtual=False
            )
            if found:
                return found
        return self._unique_method(method)

    def _unique_method(self, method: str) -> list[FunctionInfo]:
        candidates = self.symbols.method_index.get(method, [])
        if len(candidates) == 1:
            return [candidates[0]]
        return []

    # ------------------------------------------------------------------ #
    # Shipped-callable resolution (fork dispatch arguments)
    # ------------------------------------------------------------------ #

    def resolve_callable(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> list[FunctionInfo]:
        """Resolve a callable *expression* (a fork-dispatch argument)."""
        if isinstance(expr, ast.Lambda):
            found = self.symbols.functions.get(
                f"{fn.qualname}.<lambda:{expr.lineno}>"
            )
            return [found] if found is not None else []
        if isinstance(expr, ast.Name):
            return self._resolve_name(fn, expr.id)
        chain = _attr_chain(expr)
        if chain is not None and chain[0] == "self" and len(chain) == 2:
            cls = self._class_of(fn)
            if cls is not None:
                found = self._resolve_in_class(cls, chain[1], virtual=True)
                if found:
                    return found
        if chain is not None and len(chain) >= 2:
            module = self.module_of(fn)
            if module is not None:
                target = module.imports.get(chain[0])
                if target is not None:
                    resolved = self.symbols.resolve_dotted(
                        ".".join([target, *chain[1:]])
                    )
                    if isinstance(resolved, FunctionInfo):
                        return [resolved]
        return []

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #

    def reachable(
        self,
        starts: Iterable[str],
        stop: frozenset[str] | set[str] = frozenset(),
    ) -> dict[str, str | None]:
        """BFS over call edges from ``starts``.

        Returns ``{reached qualname: parent qualname}`` (parents allow
        path reconstruction for diagnostics).  Functions in ``stop`` are
        reached but not expanded — how guard-aware traversals model
        "the path is protected below this point".
        """
        parents: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for start in starts:
            if start not in parents:
                parents[start] = None
                queue.append(start)
        while queue:
            current = queue.popleft()
            if current in stop:
                continue
            for callee in self.graph.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    @staticmethod
    def path_to(
        parents: dict[str, str | None], qualname: str, limit: int = 6
    ) -> list[str]:
        """Reconstruct the BFS path to ``qualname`` (entry first)."""
        path = [qualname]
        seen = {qualname}
        while True:
            parent = parents.get(path[-1])
            if parent is None or parent in seen or len(path) >= limit:
                break
            path.append(parent)
            seen.add(parent)
        return path[::-1]


def build_project(modules: list[tuple[str, str, ast.Module]]) -> Project:
    """Symbol-table + call-graph construction over parsed modules."""
    from repro.analysis.symbols import build_symbol_table

    return Project(build_symbol_table(modules))
