"""Project symbol table: modules, functions, classes, imports.

The whole-program half of sketchlint starts here.  A
:class:`SymbolTable` indexes every parsed module of an analysis run —
module-level functions, classes and their methods (including nested
functions and lambdas, which is where fork-shipped closures live), the
import alias table of each module, and the module-level mutable globals
that the fork-safety analysis cares about.  The call-graph builder
(:mod:`repro.analysis.callgraph`) resolves call sites against this
table; the dataflow pass (:mod:`repro.analysis.dataflow`) summarizes
the function bodies it indexes.

Everything is stdlib :mod:`ast`; no imports are executed, so the table
is safe to build over untrusted or broken trees (modules that fail to
parse are simply absent).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Module-level calls whose result is a mutable container.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a (POSIX) file path.

    Everything up to and including the last ``src`` component is
    stripped (``src/repro/store/store.py`` -> ``repro.store.store``);
    paths outside a ``src`` tree keep all their components
    (``tests/test_x.py`` -> ``tests.test_x``).  ``__init__.py`` maps to
    its package name.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    parts = [part for part in parts if part not in ("/", "")]
    return ".".join(parts) if parts else "<module>"


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Rightmost dotted names of every decorator on ``node``."""
    names = []
    for decorator in node.decorator_list:
        expr = decorator
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Attribute):
            names.append(expr.attr)
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
    return tuple(names)


@dataclass
class FunctionInfo:
    """One function, method, nested function or lambda."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    cls: str | None = None  # owning class qualname for methods
    parent: str | None = None  # enclosing function qualname for nested defs
    decorators: tuple[str, ...] = ()

    @property
    def is_public(self) -> bool:
        """Public-API name: no leading underscore anywhere on the chain."""
        return not self.name.startswith("_") and self.parent is None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def param_names(self) -> tuple[str, ...]:
        args = self.node.args
        return tuple(
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition with its direct methods and base names."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()  # rightmost dotted names of base exprs
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` annotations seen in the class body / ``__init__``
    #: (attribute name -> annotated class name, rightmost identifier).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its local name bindings."""

    path: str
    name: str
    tree: ast.Module
    source: str
    #: local alias -> dotted target ("np" -> "numpy",
    #: "atomic_write_text" -> "repro.io.atomic.atomic_write_text").
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level variable name -> looks mutable (list/dict/set/...).
    global_vars: dict[str, bool] = field(default_factory=dict)

    def mutable_globals(self) -> set[str]:
        """Names of module-level variables bound to mutable containers."""
        return {name for name, mutable in self.global_vars.items() if mutable}


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _resolve_relative(module: str, target: str | None, level: int) -> str:
    """Resolve a ``from ..x import y`` module reference to a dotted name."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    # level 1 = current package: drop the module's own leaf name.
    base = parts[: len(parts) - level] if len(parts) >= level else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def annotation_class_name(node: ast.expr | None) -> str | None:
    """Rightmost plain class identifier in an annotation expression.

    Unwraps ``X | None``, ``Optional[X]``, string annotations and
    attribute chains; returns ``None`` for containers of several
    distinct classes or non-name annotations.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_class_name(node.left)
        right = annotation_class_name(node.right)
        if left and right and left != right:
            return None
        return left or right
    if isinstance(node, ast.Subscript):
        value = node.value
        head = value.attr if isinstance(value, ast.Attribute) else (
            value.id if isinstance(value, ast.Name) else ""
        )
        if head == "Optional":
            return annotation_class_name(node.slice)
        return None
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        if node.id == "None":
            return None
        return node.id
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    return None


def _inferred_class_name(
    value: ast.expr, param_types: dict[str, str]
) -> str | None:
    """Class name implied by an ``__init__`` attribute binding value."""
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name and name[0].isupper():
            return name
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    return None


class SymbolTable:
    """Whole-program index over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: bare method name -> every method with that name (virtual fallback)
        self.method_index: dict[str, list[FunctionInfo]] = {}
        #: class bare name -> every class with that name
        self.class_index: dict[str, list[ClassInfo]] = {}
        #: class qualname -> direct subclasses' qualnames
        self.subclasses: dict[str, list[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_module(self, path: str, source: str, tree: ast.Module) -> ModuleInfo:
        """Index one parsed module (idempotent per path)."""
        name = module_name_for_path(path)
        info = ModuleInfo(path=path, name=name, tree=tree, source=source)
        self.modules[name] = info
        self._collect_imports(info)
        self._collect_globals(info)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, cls=None, parent=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)
        return info

    def link(self) -> None:
        """Resolve base-class edges after every module is indexed."""
        self.subclasses = {}
        for cls in self.classes.values():
            module = self.modules[cls.module]
            for base in cls.bases:
                resolved = self._resolve_class_name(module, base)
                if resolved is not None:
                    self.subclasses.setdefault(
                        resolved.qualname, []
                    ).append(cls.qualname)

    def _collect_imports(self, info: ModuleInfo) -> None:
        for stmt in ast.walk(info.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = _resolve_relative(info.name, stmt.module, stmt.level)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_globals(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    info.global_vars[target.id] = (
                        value is not None and _is_mutable_value(value)
                    )

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
        parent: FunctionInfo | None,
    ) -> FunctionInfo:
        if parent is not None:
            qualname = f"{parent.qualname}.{node.name}"
        elif cls is not None:
            qualname = f"{cls.qualname}.{node.name}"
        else:
            qualname = f"{info.name}.{node.name}"
        fn = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=info.name,
            path=info.path,
            node=node,
            cls=cls.qualname if cls is not None else None,
            parent=parent.qualname if parent is not None else None,
            decorators=decorator_names(node),
        )
        self.functions[qualname] = fn
        if cls is not None and parent is None:
            cls.methods[node.name] = fn
            self.method_index.setdefault(node.name, []).append(fn)
        elif parent is None:
            info.functions[node.name] = fn
        self._index_nested(info, node, cls, fn)
        return fn

    def _index_nested(
        self,
        info: ModuleInfo,
        node: ast.AST,
        cls: ClassInfo | None,
        parent: FunctionInfo,
    ) -> None:
        """Index nested defs and lambdas one scope below ``node``."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, child, cls, parent)
            elif isinstance(child, ast.Lambda):
                qualname = f"{parent.qualname}.<lambda:{child.lineno}>"
                fn = FunctionInfo(
                    qualname=qualname,
                    name="<lambda>",
                    module=info.name,
                    path=info.path,
                    node=child,
                    cls=cls.qualname if cls is not None else None,
                    parent=parent.qualname,
                )
                self.functions[qualname] = fn
                self._index_nested(info, child, cls, fn)
            else:
                self._index_nested(info, child, cls, parent)

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.name}.{node.name}"
        bases = []
        for base in node.bases:
            expr = base
            if isinstance(expr, ast.Subscript):  # Generic[...]
                expr = expr.value
            if isinstance(expr, ast.Attribute):
                bases.append(expr.attr)
            elif isinstance(expr, ast.Name):
                bases.append(expr.id)
        cls = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=info.name,
            path=info.path,
            node=node,
            bases=tuple(bases),
        )
        self.classes[qualname] = cls
        self.class_index.setdefault(node.name, []).append(cls)
        info.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, cls, None)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotated = annotation_class_name(stmt.annotation)
                if annotated is not None:
                    cls.attr_types[stmt.target.id] = annotated
        # self.<attr>: X = ... annotations inside __init__ bind attribute
        # types too (the common dataclass-free idiom in this repo), as do
        # constructor bindings (self.x = ClassName(...)) and stored
        # annotated parameters (self.x = param with param: ClassName).
        init = cls.methods.get("__init__")
        if init is not None and isinstance(
            init.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            args = init.node.args
            param_types: dict[str, str] = {}
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                annotated = annotation_class_name(arg.annotation)
                if annotated is not None:
                    param_types[arg.arg] = annotated
            inferred: dict[str, str | None] = {}
            for stmt2 in ast.walk(init.node):
                if (
                    isinstance(stmt2, ast.AnnAssign)
                    and isinstance(stmt2.target, ast.Attribute)
                    and isinstance(stmt2.target.value, ast.Name)
                    and stmt2.target.value.id == "self"
                ):
                    annotated = annotation_class_name(stmt2.annotation)
                    if annotated is not None:
                        cls.attr_types[stmt2.target.attr] = annotated
                elif (
                    isinstance(stmt2, ast.Assign)
                    and len(stmt2.targets) == 1
                    and isinstance(stmt2.targets[0], ast.Attribute)
                    and isinstance(stmt2.targets[0].value, ast.Name)
                    and stmt2.targets[0].value.id == "self"
                ):
                    attr = stmt2.targets[0].attr
                    name = _inferred_class_name(stmt2.value, param_types)
                    if name is None:
                        continue
                    # Conflicting branch assignments: give up on the attr.
                    if attr in inferred and inferred[attr] != name:
                        inferred[attr] = None
                    else:
                        inferred[attr] = name
            for attr, name in inferred.items():
                if name is not None and attr not in cls.attr_types:
                    cls.attr_types[attr] = name

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def resolve_dotted(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        """Exact lookup of a dotted name as a function or class."""
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        return None

    def _resolve_class_name(
        self, module: ModuleInfo, name: str
    ) -> ClassInfo | None:
        """Resolve a bare class name seen inside ``module``."""
        if name in module.classes:
            return module.classes[name]
        target = module.imports.get(name)
        if target is not None and target in self.classes:
            return self.classes[target]
        candidates = self.class_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_class(self, module: ModuleInfo, name: str) -> ClassInfo | None:
        """Public wrapper for class-name resolution within a module."""
        return self._resolve_class_name(module, name)

    def mro_method(
        self, cls: ClassInfo, method: str
    ) -> FunctionInfo | None:
        """Find ``method`` on ``cls`` or its (project-resolvable) bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self._resolve_class_name(module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def overrides(self, cls: ClassInfo, method: str) -> list[FunctionInfo]:
        """``method`` implementations on every (transitive) subclass."""
        found: list[FunctionInfo] = []
        seen: set[str] = set()
        queue = list(self.subclasses.get(cls.qualname, []))
        while queue:
            qualname = queue.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            sub = self.classes.get(qualname)
            if sub is None:
                continue
            if method in sub.methods:
                found.append(sub.methods[method])
            queue.extend(self.subclasses.get(qualname, []))
        return found


def build_symbol_table(
    modules: list[tuple[str, str, ast.Module]]
) -> SymbolTable:
    """Build and link a table from ``(path, source, tree)`` triples."""
    table = SymbolTable()
    for path, source, tree in modules:
        table.add_module(path, source, tree)
    table.link()
    return table
