"""Machine-checked invariants for the persistent-sketch reproduction.

Two halves:

* :mod:`repro.analysis.sketchlint` — a repo-specific AST linter whose
  rules (SL001..SL009) encode invariants the paper's analysis relies on
  but ordinary Python tooling cannot see (seeded RNG discipline for the
  Equation (1) unbiasedness, monotone-timestamp guards on ingest paths,
  no float equality in sketch math, ...).  Run it with
  ``python -m repro.analysis src`` or ``repro lint``.
* :mod:`repro.analysis.contracts` — a runtime contract layer (decorators
  and validators) the sketch classes opt into.  Contracts are identity
  no-ops unless ``REPRO_CONTRACTS=1``; the test suite always enforces
  them (see ``tests/conftest.py``).

See ``docs/static-analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from repro.analysis.sketchlint import (
    Finding,
    Rule,
    RULES,
    lint_paths,
    lint_source,
    main,
    run_lint,
)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "lint_paths",
    "lint_source",
    "main",
    "run_lint",
]
