"""Machine-checked invariants for the persistent-sketch reproduction.

Three layers:

* :mod:`repro.analysis.sketchlint` — the analyzer driver.  Module rules
  (SL001..SL011, :mod:`~repro.analysis.rules`) are per-file AST
  visitors; project rules (SL012..SL015,
  :mod:`~repro.analysis.interproc`) run over a whole-program symbol
  table, call graph and dataflow summaries
  (:mod:`~repro.analysis.symbols`, :mod:`~repro.analysis.callgraph`,
  :mod:`~repro.analysis.dataflow`) and see through helper wrappers:
  durability escapes, fork-shared mutable state, contract-coverage
  gaps, unpropagated RNG state.  Run it with
  ``python -m repro.analysis src`` or ``repro lint``; ``--format
  sarif`` and ``--baseline`` serve the CI gate.
* :mod:`repro.analysis.contracts` — a runtime contract layer (decorators
  and validators) the sketch classes opt into.  Contracts are identity
  no-ops unless ``REPRO_CONTRACTS=1``; the test suite always enforces
  them (see ``tests/conftest.py``).

See ``docs/static-analysis.md`` for the rule catalogue, the engine
architecture and the interprocedural-rule writing guide.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, Project, build_project
from repro.analysis.dataflow import DataflowSummary, summarize
from repro.analysis.sketchlint import (
    PROJECT_RULES,
    RULES,
    AnalysisStats,
    Finding,
    ProjectRule,
    Rule,
    analyze_paths,
    lint_paths,
    lint_source,
    main,
    run_lint,
)
from repro.analysis.symbols import SymbolTable, build_symbol_table

__all__ = [
    "AnalysisStats",
    "CallGraph",
    "DataflowSummary",
    "Finding",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "RULES",
    "Rule",
    "SymbolTable",
    "analyze_paths",
    "build_project",
    "build_symbol_table",
    "lint_paths",
    "lint_source",
    "main",
    "run_lint",
    "summarize",
]
