"""Intraprocedural def-use summaries for the whole-program rules.

For each function the symbol table indexes, :func:`summarize` computes a
:class:`DataflowSummary`: which names the function binds locally, which
free (module-level or closure) names it reads and writes, which
receivers it *mutates* (attribute/subscript assignment or a mutating
method call), which ``self`` attributes it reads and mutates, whether it
touches an RNG, and simple local type bindings (``x = ClassName(...)``)
that the call-graph builder uses to resolve method receivers.

The pass is deliberately flow-insensitive — a single set union over the
function body — because the interprocedural rules built on it (SL012,
SL013, SL015) need reachability-grade answers ("could this callee
mutate shared state?"), not path-sensitive proofs.  Nested function and
lambda bodies are *excluded* from their parent's summary: each nested
scope is its own symbol-table entry, and closures are linked through
:attr:`DataflowSummary.captured` instead.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "sort",
    "reverse",
    "write",
    "writelines",
    "appendleft",
    "popleft",
}

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class DataflowSummary:
    """Flow-insensitive def-use facts for one function scope."""

    #: names bound in this scope (params, assignments, nested defs, ...)
    bound: frozenset[str] = frozenset()
    #: free names read (module globals, closure captures, builtins removed)
    free_reads: frozenset[str] = frozenset()
    #: free names rebound (``global x; x = ...`` or augmented assignment)
    free_writes: frozenset[str] = frozenset()
    #: free names whose object is mutated (``x.append(...)``, ``x[k] = v``)
    free_mutations: frozenset[str] = frozenset()
    #: attributes read from ``self``
    self_reads: frozenset[str] = frozenset()
    #: attributes of ``self`` that are assigned or mutated
    self_mutations: frozenset[str] = frozenset()
    #: any ``*rng*``-named value read or called
    touches_rng: bool = False
    #: local name -> bare class name from ``x = ClassName(...)`` bindings
    local_types: dict[str, str] = field(default_factory=dict)
    #: names of functions/lambdas defined in this scope
    nested: frozenset[str] = frozenset()
    #: free names of nested scopes that this scope binds (closure links)
    captured: frozenset[str] = frozenset()


def _attr_root(node: ast.expr) -> tuple[str | None, str | None]:
    """``(root_name, first_attr)`` of an attribute chain, if rooted at a Name.

    ``self._shards[k].x`` -> ("self", "_shards"); ``conn.send`` ->
    ("conn", "send"); anything not rooted at a plain name -> (None, None).
    """
    attrs: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Name):
        return node.id, (attrs[-1] if attrs else None)
    return None, None


def _is_rng_name(name: str) -> bool:
    return "rng" in name.lower()


class _ScopeVisitor(ast.NodeVisitor):
    """Single-scope walker: does not descend into nested function bodies."""

    def __init__(self, root: ast.AST) -> None:
        self.root = root
        self.bound: set[str] = set()
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.mutations: set[str] = set()
        self.self_reads: set[str] = set()
        self.self_mutations: set[str] = set()
        self.globals_decl: set[str] = set()
        self.touches_rng = False
        self.local_types: dict[str, str] = {}
        self.nested: set[str] = set()
        self.nested_nodes: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda] = []

    # -- scope boundaries ---------------------------------------------- #

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.root:
            self.generic_visit(node)
        else:
            self.bound.add(node.name)
            self.nested.add(node.name)
            self.nested_nodes.append(node)
            for decorator in node.decorator_list:
                self.visit(decorator)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is self.root:
            self.generic_visit(node)
        else:
            self.bound.add(node.name)
            self.nested.add(node.name)
            self.nested_nodes.append(node)
            for decorator in node.decorator_list:
                self.visit(decorator)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if node is self.root:
            self.generic_visit(node)
        else:
            self.nested_nodes.append(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)
        for base in node.bases:
            self.visit(base)

    # -- bindings ------------------------------------------------------ #

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_decl.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.globals_decl.update(node.names)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id in self.globals_decl:
                self.writes.add(node.id)
            else:
                self.bound.add(node.id)
        else:
            self.reads.add(node.id)
        if _is_rng_name(node.id):
            self.touches_rng = True

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_rng_name(node.attr):
            self.touches_rng = True
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            self.self_reads.add(node.attr)
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._mutate_target(node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._mutate_target(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl or target.id not in self.bound:
                self.writes.add(target.id)
            self.bound.add(target.id)
        else:
            self._mutate_target(target)
        self.visit(node.value)
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self.visit(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_local_type(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_local_type([node.target], node.value)
        self.generic_visit(node)

    def _record_local_type(
        self, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name and name[0].isupper():
                self.local_types[targets[0].id] = name

    def _mutate_target(self, node: ast.expr) -> None:
        root, attr = _attr_root(node)
        if root is None:
            return
        if root == "self":
            if attr is not None:
                self.self_mutations.add(attr)
        else:
            self.mutations.add(root)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            root, attr = _attr_root(func.value)
            if root == "self" and attr is not None:
                self.self_mutations.add(attr)
            elif root is not None and root != "self":
                self.mutations.add(root)
        self.generic_visit(node)


def _scope_params(node: ast.AST) -> set[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return set()
    args = node.args
    names = {
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def free_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Free (unbound) names a function scope references, nested scopes
    included — the closure footprint a fork ships along with the code."""
    visitor = _ScopeVisitor(node)
    visitor.visit(node)
    bound = visitor.bound | _scope_params(node)
    free = (visitor.reads | visitor.writes | visitor.mutations) - bound
    for nested in visitor.nested_nodes:
        free |= free_names(nested) - bound
    return {name for name in free if name not in _BUILTIN_NAMES}


def summarize(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> DataflowSummary:
    """Compute the def-use summary of one function scope."""
    visitor = _ScopeVisitor(node)
    visitor.visit(node)
    bound = visitor.bound | _scope_params(node)
    captured: set[str] = set()
    for nested in visitor.nested_nodes:
        captured |= free_names(nested) & bound
    strip = _BUILTIN_NAMES
    return DataflowSummary(
        bound=frozenset(bound),
        free_reads=frozenset(visitor.reads - bound - strip),
        free_writes=frozenset(visitor.writes - strip),
        free_mutations=frozenset(visitor.mutations - bound - strip),
        self_reads=frozenset(visitor.self_reads),
        self_mutations=frozenset(visitor.self_mutations),
        touches_rng=visitor.touches_rng,
        local_types=dict(visitor.local_types),
        nested=frozenset(visitor.nested),
        captured=frozenset(captured),
    )
