"""The sketchlint rule set (SL001–SL011).

Each rule is a small visitor encoding one invariant of the paper's
analysis or of disciplined reproduction engineering.  Rules are scoped
with ``applies_to`` (POSIX path) so library-only rules stay quiet on
benchmarks and examples.  ``docs/static-analysis.md`` documents every
rule with its paper-level rationale.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from repro.analysis.sketchlint import Rule, register

#: Parameter names treated as a stream timestamp by SL008.
TIME_PARAMS = {"t", "time", "timestamp", "tick", "when"}

#: Ingest-style method names SL008 inspects.
INGEST_VERBS = {
    "feed",
    "update",
    "offer",
    "observe",
    "ingest",
    "append",
    "push",
    "record",
    "insert",
}


def _parts(path: str) -> tuple[str, ...]:
    return PurePosixPath(path).parts


def _in_library(path: str) -> bool:
    """Library code = anything under a ``src`` tree."""
    return "src" in _parts(path)


def _is_stub_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Docstring-only / ``pass`` / ``...`` bodies (abstract or protocol)."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _decorator_name(node: ast.expr) -> str:
    """Rightmost dotted name of a decorator expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register
class UnseededRandomRule(Rule):
    """SL001: module-global or unseeded RNG in library code.

    The unbiasedness of the compensated history-list read (Equation (1))
    and every seeded experiment depend on all randomness flowing through
    an explicitly seeded generator owned by the sketch.  Calls into the
    process-global ``random`` / ``numpy.random`` state, or ``Random()`` /
    ``default_rng()`` constructed without a seed, silently break
    reproducibility and cross-sketch independence assumptions.
    """

    code = "SL001"
    summary = "module-global or unseeded RNG use in library code"
    rationale = (
        "Equation (1) unbiasedness and experiment reproducibility require "
        "explicitly seeded, sketch-owned generators."
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # The stream generators are the sanctioned seed frontier.
        return not path.endswith("streams/generators.py")

    def visit_Call(self, node: ast.Call) -> None:
        """Flag global-state and unseeded RNG constructions."""
        func = node.func
        unseeded = not node.args and not node.keywords
        if isinstance(func, ast.Name):
            if func.id in ("Random", "default_rng") and unseeded:
                self.report(node, f"{func.id}() constructed without a seed")
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id == "random":
                if func.attr == "Random":
                    if unseeded:
                        self.report(
                            node, "random.Random() constructed without a seed"
                        )
                elif func.attr != "SystemRandom":
                    self.report(
                        node,
                        f"call to module-global random.{func.attr}(); use a "
                        "seeded random.Random instance",
                    )
            elif (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")
            ):
                if func.attr == "default_rng":
                    if unseeded:
                        self.report(
                            node, "default_rng() constructed without a seed"
                        )
                else:
                    self.report(
                        node,
                        f"call to module-global numpy.random.{func.attr}(); "
                        "use a seeded Generator from default_rng(seed)",
                    )
            elif func.attr == "default_rng" and unseeded:
                self.report(node, "default_rng() constructed without a seed")
        self.generic_visit(node)


def _floatish(node: ast.expr) -> bool:
    """Heuristic: expression very likely produces a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        return isinstance(node.op, ast.Div) or (
            _floatish(node.left) or _floatish(node.right)
        )
    return False


@register
class FloatEqualityRule(Rule):
    """SL002: ``==`` / ``!=`` against float-valued expressions.

    Counter reconstructions, PLA slopes and error bounds are floats;
    exact equality on them turns floating-point noise into control-flow
    divergence (e.g. a segment-boundary test that passes on one platform
    and fails on another).  Compare with a tolerance instead, or restate
    the predicate on the integer inputs.
    """

    code = "SL002"
    summary = "float equality comparison in sketch/PLA math"
    rationale = (
        "Exact float equality makes segment and estimate logic "
        "platform-dependent; use tolerances or integer predicates."
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag ``==`` / ``!=`` with a float-looking operand."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _floatish(left) or _floatish(right)
            ):
                self.report(
                    node,
                    "float == / != comparison; use an explicit tolerance",
                )
                break
        self.generic_visit(node)


@register
class MutableDefaultRule(Rule):
    """SL003: mutable default argument values.

    A mutable default is evaluated once and shared across calls — for
    sketch constructors that means shared counter arrays or history
    lists across supposedly independent instances, corrupting estimates
    silently.
    """

    code = "SL003"
    summary = "mutable default argument"
    rationale = (
        "Shared-by-default state across sketch instances silently "
        "correlates estimators that the analysis assumes independent."
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (
                    ast.List,
                    ast.Dict,
                    ast.Set,
                    ast.ListComp,
                    ast.DictComp,
                    ast.SetComp,
                ),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            )
            if mutable:
                self.report(
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and create inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check one function definition."""
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check one async function definition."""
        self._check(node)
        self.generic_visit(node)


@register
class BroadExceptRule(Rule):
    """SL004: bare or over-broad exception handlers.

    Swallowing ``Exception`` hides the very invariant violations
    (non-monotone timestamps, malformed archives) this layer exists to
    surface.  Handlers that re-raise unconditionally are allowed.
    """

    code = "SL004"
    summary = "bare or over-broad except clause"
    rationale = (
        "Catch-alls mask invariant violations; catch the narrowest "
        "exception type or re-raise."
    )

    _BROAD = {"Exception", "BaseException"}

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag bare/broad handlers that do not re-raise."""
        broad: str | None = None
        if node.type is None:
            broad = "bare except:"
        else:
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for type_node in types:
                if isinstance(type_node, ast.Name) and type_node.id in self._BROAD:
                    broad = f"except {type_node.id}:"
                    break
        if broad is not None:
            reraises = any(
                isinstance(inner, ast.Raise) and inner.exc is None
                for inner in ast.walk(node)
            )
            if not reraises:
                self.report(node, f"{broad} without re-raise")
        self.generic_visit(node)


@register
class AssertInLibraryRule(Rule):
    """SL005: ``assert`` used for validation in library code.

    ``python -O`` strips asserts, so any input or state validation done
    with them disappears in optimized deployments — exactly where a
    silent invariant violation is most expensive.  Raise ``ValueError``
    / ``RuntimeError`` (or a contract from
    :mod:`repro.analysis.contracts`) instead; asserts remain fine in
    tests and benchmarks.
    """

    code = "SL005"
    summary = "assert used for validation in library code"
    rationale = (
        "Asserts vanish under python -O, turning enforced invariants "
        "into silent corruption."
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return _in_library(path)

    def visit_Assert(self, node: ast.Assert) -> None:
        """Flag the assert statement."""
        self.report(
            node,
            "assert is stripped under python -O; raise an explicit error",
        )
        self.generic_visit(node)


@register
class MissingFutureAnnotationsRule(Rule):
    """SL006: module lacks ``from __future__ import annotations``.

    The repo supports Python 3.10 while using PEP 604 unions in
    annotations; the future import keeps all annotations lazy and
    uniform so the typed islands can grow without version-dependent
    surprises (and it is required for the contract decorators to stay
    cheap at import time).
    """

    code = "SL006"
    summary = "missing `from __future__ import annotations`"
    rationale = (
        "Lazy annotations keep 3.10 compatibility with modern syntax "
        "and make module import cost independent of typing detail."
    )

    def check_module(self, tree: ast.Module, source: str) -> None:
        if not tree.body:
            return
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.ImportFrom)
                and stmt.module == "__future__"
                and any(alias.name == "annotations" for alias in stmt.names)
            ):
                return
        self.report(
            tree.body[0],
            "module should start with `from __future__ import annotations`",
        )


@register
class UntypedPublicApiRule(Rule):
    """SL007: public API functions missing type annotations.

    Applies to the ``core/``, ``sketch/`` and ``persistence/`` packages —
    the layers other code composes against and the target of the strict
    mypy islands.  Every public function parameter (except
    ``self``/``cls``) and return type must be annotated (``__init__`` is
    exempt from the return annotation).
    """

    code = "SL007"
    summary = "public API function lacking type annotations"
    rationale = (
        "The strict-typing islands (pla/, persistence/, and the core "
        "query surface) only hold if public signatures stay annotated."
    )

    _SCOPES = {"core", "sketch", "persistence"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return bool(cls._SCOPES & set(_parts(path)))

    def check_module(self, tree: ast.Module, source: str) -> None:
        self._scan(tree.body)

    def _scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                if not stmt.name.startswith("_"):
                    self._scan(stmt.body)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check(stmt)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        name = node.name
        if name.startswith("_") and name != "__init__":
            return
        args = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        if args and args[0].arg in ("self", "cls"):
            args = args[1:]
        for arg in args:
            if arg.annotation is None:
                self.report(
                    node,
                    f"parameter '{arg.arg}' of public {name}() lacks a "
                    "type annotation",
                )
        for vararg in (node.args.vararg, node.args.kwarg):
            if vararg is not None and vararg.annotation is None:
                self.report(
                    node,
                    f"parameter '{vararg.arg}' of public {name}() lacks a "
                    "type annotation",
                )
        if node.returns is None and name != "__init__":
            self.report(
                node, f"public {name}() lacks a return type annotation"
            )


@register
class UnguardedTimestampRule(Rule):
    """SL008: ingest-style method consumes a timestamp without a guard.

    Every persistence structure (PLA runs, history lists, epochs)
    assumes strictly increasing timestamps; O'Rourke's feasibility
    update and the predecessor reads are simply wrong on reordered
    input.  A method named like an ingest verb that takes a time-like
    parameter must either raise behind a comparison (an inline
    monotonicity guard) or opt into
    ``@contracts.monotone_timestamps``.
    """

    code = "SL008"
    summary = "timestamp-consuming ingest method without monotonicity guard"
    rationale = (
        "PLA feasibility and predecessor reads assume strictly "
        "increasing time; unguarded ingest silently corrupts archives."
    )
    #: SL014 checks the same contract along whole call paths; this
    #: per-function approximation only runs under --select SL008.
    superseded_by = "SL014"

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node.name.startswith("_") or node.name not in INGEST_VERBS:
            return
        if _is_stub_body(node):
            return
        arg_names = {
            arg.arg
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        }
        if not (arg_names & TIME_PARAMS):
            return
        for decorator in node.decorator_list:
            if _decorator_name(decorator) in (
                "monotone_timestamps",
                "abstractmethod",
            ):
                return
        for inner in ast.walk(node):
            if isinstance(inner, ast.If) and any(
                isinstance(part, ast.Compare) for part in ast.walk(inner.test)
            ):
                if any(isinstance(part, ast.Raise) for part in ast.walk(inner)):
                    return
        self.report(
            node,
            f"{node.name}() consumes a timestamp but neither raises behind "
            "a comparison nor uses @contracts.monotone_timestamps",
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check one function definition."""
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check one async function definition."""
        self._check(node)
        self.generic_visit(node)


@register
class NonAtomicWriteRule(Rule):
    """SL009: non-atomic file write in a durability-critical package.

    ``Path.write_text`` / ``Path.write_bytes`` to a final path can be
    torn by a crash mid-write, leaving an archive, manifest or pointer
    half-written — precisely the corruption the checkpoint/WAL recovery
    design exists to rule out.  Inside ``store/``, ``io/`` and
    ``runtime/``, all durable writes must go through the
    :mod:`repro.io.atomic` helpers (tmp file + fsync + rename); the
    helpers themselves write through raw file handles, so this rule does
    not fire on them.
    """

    code = "SL009"
    summary = "non-atomic write_text/write_bytes in durability layer"
    rationale = (
        "A crash mid-write tears final-path writes; store/, io/ and "
        "runtime/ must write via repro.io.atomic (tmp + fsync + rename)."
    )

    _SCOPES = {"store", "io", "runtime"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return _in_library(path) and bool(cls._SCOPES & set(_parts(path)))

    def visit_Call(self, node: ast.Call) -> None:
        """Flag direct final-path write calls."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            self.report(
                node,
                f".{func.attr}() writes the final path non-atomically; "
                "use repro.io.atomic (tmp + fsync + rename)",
            )
        self.generic_visit(node)


@register
class ScalarHotLoopRule(Rule):
    """SL010: per-record scalar loop on an ingest hot path.

    The columnar batch pipeline gives every hot-path primitive a
    vectorized counterpart — ``buckets_many``/``signs_many`` for the
    hash families, ``update_many`` for the ephemeral sketches,
    ``ingest_batch``/``feed_many`` for the persistent layers — all
    bit-identical to their scalar forms.  Inside ``core/`` and
    ``sketch/``, a ``for`` loop that walks stream columns
    (``zip(times, items, counts)``-style) or calls ``.buckets()`` /
    ``.signs()`` per record is therefore either dead weight (throughput
    measured in Python interpreter overhead) or a scalar *reference*
    implementation — the latter opts out with a per-line suppression.
    """

    code = "SL010"
    summary = "per-record scalar loop on a hot path with a *_many counterpart"
    rationale = (
        "Hot-path primitives have bit-identical vectorized counterparts; "
        "per-record Python loops in core/ and sketch/ forfeit the "
        "columnar pipeline's throughput (suppress scalar references)."
    )

    _SCOPES = {"core", "sketch"}
    _COLUMN_NAMES = {"times", "items", "counts"}
    _SCALAR_HASH = {"buckets": "buckets_many", "signs": "signs_many"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return _in_library(path) and bool(cls._SCOPES & set(_parts(path)))

    def check_module(self, tree: ast.Module, source: str) -> None:
        self._loop_depth = 0
        self.visit(tree)

    @staticmethod
    def _unwrap_enumerate(node: ast.expr) -> ast.expr:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "enumerate"
            and node.args
        ):
            return node.args[0]
        return node

    def _mentions_stream_column(self, node: ast.expr) -> bool:
        for part in ast.walk(node):
            if isinstance(part, ast.Name) and part.id in self._COLUMN_NAMES:
                return True
            if (
                isinstance(part, ast.Attribute)
                and part.attr in self._COLUMN_NAMES
            ):
                return True
        return False

    def visit_For(self, node: ast.For) -> None:
        """Flag per-record walks over materialized stream columns."""
        iterated = self._unwrap_enumerate(node.iter)
        if (
            isinstance(iterated, ast.Call)
            and isinstance(iterated.func, ast.Name)
            and iterated.func.id == "zip"
            and any(
                self._mentions_stream_column(arg) for arg in iterated.args
            )
        ):
            self.report(
                node,
                "per-record zip loop over stream columns; use the "
                "columnar ingest_batch/update_many path (suppress for "
                "scalar reference implementations)",
            )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        """Track loop nesting for the per-record hash-call check."""
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        """Flag scalar hash evaluation inside a loop."""
        func = node.func
        if (
            self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in self._SCALAR_HASH
        ):
            many = self._SCALAR_HASH[func.attr]
            self.report(
                node,
                f".{func.attr}() evaluated per record inside a loop; "
                f"hoist the batch through the vectorized .{many}()",
            )
        self.generic_visit(node)


@register
class ForkSharedRNGRule(Rule):
    """SL011: RNG state shared across a fork without a per-worker plan.

    Fork-based parallelism duplicates the parent's RNG *state*: every
    child that keeps drawing from a fork-inherited generator produces
    the same "random" sequence as its siblings — and none of them
    advances the master's generator, so parallel output silently
    diverges from the serial reference the repo's bit-equality contract
    pins.  A function that touches an RNG *and* launches forked work
    must show an explicit determinism plan: pre-draw the randomness on
    the master and ship slices (``bulk_uniforms``), derive per-worker
    generators (``spawn`` / ``jumped`` / ``SeedSequence`` / explicit
    per-index ``seed(...)``), or capture and restore state
    (``getstate`` / ``setstate``).  Deliberately redundant broadcasts
    opt out with a per-line suppression.
    """

    code = "SL011"
    summary = "RNG shared across fork/pool dispatch without per-worker plan"
    rationale = (
        "Fork duplicates generator state: sibling workers draw identical "
        "sequences and the master's RNG never advances, breaking the "
        "parallel == serial bit-equality contract (pre-draw slices, "
        "spawn per-worker generators, or manage state explicitly)."
    )

    #: Constructors / launchers that move work into a forked child.
    _FORK_LAUNCHERS = {
        "Process",
        "WorkerPool",
        "parallel_map",
        "ProcessPoolExecutor",
        "Pool",
        "fork",
    }
    #: Methods that submit payloads to an already-forked pool; only
    #: counted when called on a pool-like receiver (``pool.feed`` yes,
    #: ``tracker.feed`` no).
    _POOL_SUBMITS = {"feed", "submit", "map", "apply_async"}
    #: Calls that constitute an explicit per-worker determinism plan.
    _MITIGATIONS = {
        "bulk_uniforms",
        "spawn",
        "jumped",
        "SeedSequence",
        "seed",
        "getstate",
        "setstate",
        "bit_generator",
    }

    @staticmethod
    def _call_name(func: ast.expr) -> str:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    @classmethod
    def _is_pool_receiver(cls, func: ast.expr) -> bool:
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and "pool" in func.value.id.lower()
        )

    @staticmethod
    def _mentions_rng(node: ast.AST) -> bool:
        for part in ast.walk(node):
            name = None
            if isinstance(part, ast.Name):
                name = part.id
            elif isinstance(part, ast.Attribute):
                name = part.attr
            if name is not None and "rng" in name.lower():
                return True
        return False

    def check_module(self, tree: ast.Module, source: str) -> None:
        # Nested defs are walked by their enclosing scan too (a closure
        # capturing an outer RNG is exactly the hazard); dedupe so one
        # dispatch site yields one finding.
        self._reported: set[int] = set()
        self.visit(tree)

    def _scan(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        fork_call: ast.Call | None = None
        mitigated = False
        for part in ast.walk(fn):
            if not isinstance(part, ast.Call):
                continue
            name = self._call_name(part.func)
            if name in self._MITIGATIONS:
                mitigated = True
            elif name in self._FORK_LAUNCHERS or (
                name in self._POOL_SUBMITS
                and self._is_pool_receiver(part.func)
            ):
                if fork_call is None:
                    fork_call = part
        if (
            fork_call is not None
            and not mitigated
            and id(fork_call) not in self._reported
            and self._mentions_rng(fn)
        ):
            self._reported.add(id(fork_call))
            self.report(
                fork_call,
                "RNG state visible in a function that dispatches forked "
                "work, with no per-worker determinism plan (pre-draw with "
                "bulk_uniforms, spawn/seed per-worker generators, or "
                "manage state explicitly)",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Scan one function scope for the capture-across-fork pattern."""
        self._scan(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._scan(node)
        self.generic_visit(node)
