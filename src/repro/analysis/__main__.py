"""``python -m repro.analysis`` — run sketchlint from the command line."""

from __future__ import annotations

import sys

from repro.analysis.sketchlint import main

if __name__ == "__main__":
    sys.exit(main())
