"""Interprocedural sketchlint rules (SL012–SL018).

These rules run on a :class:`~repro.analysis.callgraph.Project` — symbol
table, call graph and dataflow summaries — so they see through the
helper wrappers that defeat the per-module rules:

* **SL012** durability escape: a non-atomic write (``write_text`` /
  ``write_bytes`` / raw write-mode ``open``) reachable from any
  ``store/`` / ``io/`` / ``runtime/`` function, wherever the write
  itself lives.
* **SL013** fork-shared mutable state: a callable shipped to
  ``WorkerPool`` / ``parallel_map`` / ``Process`` that reads or mutates
  state which exists on both sides of the fork — module globals,
  closures, bound instance attributes.
* **SL014** contract-coverage gap: an ingest-verb time-parameter
  function reachable from public API with no monotonicity guard
  anywhere on the call path (supersedes SL008's per-function check).
* **SL015** unpropagated RNG state: forked work whose *callee chain*
  consumes a seeded generator while no determinism plan (pre-draw,
  spawn, state transplant) is visible anywhere around the dispatch.
* **SL016** swallowed durability error: an ``except OSError`` /
  ``except Exception`` handler on a durability-reachable path that
  neither re-raises, nor routes the failure into a health transition
  (degrade / quarantine / fail), nor stores the exception for a later
  raise — the I/O failure silently disappears and the runtime keeps
  acknowledging writes it may not be able to replay.
* **SL017** unpaired memory mapping: a ``SharedMemory`` / ``mmap``
  construction (or a project subclass of either) whose handle is not
  guaranteed a ``close()`` / ``unlink()`` / ``release()`` on every
  path — ``finally`` blocks and ``with`` statements satisfy it, a
  straight-line close that an exception can skip does not, and
  handles stored on ``self`` or handed to a resolvable helper are
  checked for cleanup where they end up.
* **SL018** buffer-tier bypass: a call that feeds a sketch's
  below-buffer apply layer (``_ingest`` / ``_ingest_batch`` /
  ``_apply_batch``) from outside the dispatch module that owns the
  update buffer — staged records would be reordered around it — and,
  dually, a public sketch query/freeze method whose resolved call tree
  reads per-counter history (``value_at`` / ``export_arrays``) with no
  buffer-flushing verb anywhere on the path, which would serve answers
  that lag the absorbed stream.

All seven under-approximate: an unresolvable call contributes no edge,
so every finding rests on an actual resolved path, which is quoted in
the message (``entry -> wrapper -> sink``).
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import DataflowSummary
from repro.analysis.rules import (
    INGEST_VERBS,
    TIME_PARAMS,
    ForkSharedRNGRule,
    _decorator_name,
    _is_stub_body,
    _parts,
)
from repro.analysis.sketchlint import ProjectRule, register_project
from repro.analysis.symbols import FunctionInfo

#: Packages whose call trees constitute the durability layer.
_DURABILITY_SCOPES = {"store", "io", "runtime"}

#: Modules that implement the sanctioned atomic-write protocol; their
#: raw file handles are the mechanism, not an escape.
_SANCTIONED_WRITERS = {"repro.io.atomic"}

_FORK_LAUNCHERS = ForkSharedRNGRule._FORK_LAUNCHERS
_POOL_SUBMITS = ForkSharedRNGRule._POOL_SUBMITS
_MITIGATIONS = ForkSharedRNGRule._MITIGATIONS


def _in_durability_scope(path: str) -> bool:
    parts = set(_parts(path))
    return "src" in parts and bool(_DURABILITY_SCOPES & parts)


def _arrow(path: list[str]) -> str:
    """Render a call path for a finding message."""
    return " -> ".join(path)


def _open_write_mode(call: ast.Call) -> str | None:
    """The write-ish mode string of an ``open()`` call, if any."""
    func = call.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    if name != "open":
        return None
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not (isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)):
        return None
    mode = mode_node.value
    if any(flag in mode for flag in ("w", "a", "x", "+")):
        return mode
    return None


def _calls_in_scope(fn: FunctionInfo) -> list[ast.Call]:
    """Call expressions lexically inside ``fn``'s own scope."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = [fn.node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and child is not fn.node:
                continue  # nested scopes are their own symbol-table entries
            if isinstance(child, ast.Call):
                calls.append(child)
            stack.append(child)
    return calls


@register_project
class DurabilityEscapeRule(ProjectRule):
    """SL012: non-atomic write reachable from the durability layer.

    SL009 flags ``write_text`` / ``write_bytes`` *syntactically inside*
    ``store/`` / ``io/`` / ``runtime/``; moving the write into a helper
    module defeats it.  This rule walks the call graph from every
    function in those packages and flags any reachable non-atomic write
    — raw write-mode ``open()`` anywhere, and ``write_text`` /
    ``write_bytes`` in files SL009 does not cover — quoting the call
    path that reaches it.  :mod:`repro.io.atomic` is the sanctioned
    implementation and is exempt.
    """

    code = "SL012"
    summary = "non-atomic write reachable from the durability layer"
    rationale = (
        "Crash-atomicity is a whole-call-tree property: a helper that "
        "writes a final path non-atomically tears checkpoints no matter "
        "which module it lives in.  All durable writes must funnel "
        "through repro.io.atomic (tmp + fsync + rename)."
    )

    def check_project(self, project: Project) -> None:
        entries = [
            fn.qualname
            for fn in project.symbols.functions.values()
            if _in_durability_scope(fn.path)
        ]
        if not entries:
            return
        parents = project.reachable(entries)
        reported: set[tuple[str, int]] = set()
        for qualname in parents:
            fn = project.symbols.functions.get(qualname)
            if fn is None or fn.module in _SANCTIONED_WRITERS:
                continue
            in_scope = _in_durability_scope(fn.path)
            for call in _calls_in_scope(fn):
                finding_kind: str | None = None
                mode = _open_write_mode(call)
                if mode is not None:
                    finding_kind = f'raw open(..., "{mode}")'
                else:
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("write_text", "write_bytes")
                        and not in_scope  # in-scope sites are SL009's
                    ):
                        finding_kind = f".{func.attr}()"
                if finding_kind is None:
                    continue
                key = (fn.path, call.lineno)
                if key in reported:
                    continue
                reported.add(key)
                route = _arrow(Project.path_to(parents, qualname))
                self.report(
                    fn.path,
                    call,
                    f"{finding_kind} in {fn.qualname} is reachable from "
                    f"the durability layer ({route}); write via "
                    "repro.io.atomic (tmp + fsync + rename)",
                )


def _dispatch_sites(
    project: Project, fn: FunctionInfo
) -> list[tuple[ast.Call, list[FunctionInfo]]]:
    """Fork-dispatch calls in ``fn`` with the callables they ship."""
    sites: list[tuple[ast.Call, list[FunctionInfo]]] = []
    for call in _calls_in_scope(fn):
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        is_launcher = name in _FORK_LAUNCHERS
        is_submit = (
            name in _POOL_SUBMITS
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and "pool" in func.value.id.lower()
        )
        if not (is_launcher or is_submit):
            continue
        shipped: list[FunctionInfo] = []
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            shipped.extend(project.resolve_callable(fn, arg))
        sites.append((call, shipped))
    return sites


@register_project
class ForkSharedStateRule(ProjectRule):
    """SL013: mutable state shared across a fork boundary.

    A callable shipped to a fork launcher executes in a child process;
    any state that already existed at fork time — module globals, the
    dispatcher's locals captured by closure, ``self`` of a bound method
    — exists as an independent copy on each side.  Reads of mutable
    globals silently diverge once either side writes; writes never
    propagate back.  The rule resolves each shipped callable and flags
    it when it (or anything it calls) rebinds or mutates free state, or
    when the callable itself reads a module-level mutable global or
    mutates bound instance attributes.  Deliberate copy-on-write
    ownership schemes opt out with a justified per-line suppression at
    the dispatch site.
    """

    code = "SL013"
    summary = "fork-shipped callable touches pre-fork mutable state"
    rationale = (
        "After fork, parent and child hold independent copies of every "
        "pre-existing object: mutating or reading shared mutable state "
        "from a worker silently diverges from the serial reference the "
        "bit-equality contract pins."
    )

    def check_project(self, project: Project) -> None:
        for fn in list(project.symbols.functions.values()):
            for call, shipped in _dispatch_sites(project, fn):
                for worker in shipped:
                    hazard = self._hazard(project, worker)
                    if hazard is None:
                        continue
                    self.report(
                        fn.path,
                        call,
                        f"{worker.qualname} is shipped across a fork and "
                        f"{hazard}; pass immutable snapshots or create the "
                        "state inside the worker",
                    )

    def _hazard(self, project: Project, worker: FunctionInfo) -> str | None:
        direct = project.summary(worker.qualname)
        if direct is None:
            return None
        module = project.symbols.modules.get(worker.module)
        mutable_globals = module.mutable_globals() if module is not None else set()
        shared_reads = direct.free_reads & mutable_globals
        if shared_reads:
            names = ", ".join(sorted(shared_reads))
            return f"reads module-level mutable global(s) {names}"
        # A shipped constructor builds its instance *inside* the child:
        # its self-mutations initialize a post-fork object, not shared
        # state (free/global hazards below still apply to it).
        if worker.name == "__init__":
            return self._transitive_hazard(project, worker)
        if worker.is_method and direct.self_mutations:
            names = ", ".join(sorted(direct.self_mutations))
            return (
                f"mutates bound instance attribute(s) {names} of a "
                "pre-fork object"
            )
        return self._transitive_hazard(project, worker)

    @staticmethod
    def _transitive_hazard(
        project: Project, worker: FunctionInfo
    ) -> str | None:
        """The worker or anything it calls rebinds/mutates free state."""
        parents = project.reachable([worker.qualname])
        for qualname in parents:
            summary = project.summary(qualname)
            if summary is None:
                continue
            mutated = summary.free_writes | summary.free_mutations
            if mutated:
                names = ", ".join(sorted(mutated))
                via = ""
                if qualname != worker.qualname:
                    via = f" (via {_arrow(Project.path_to(parents, qualname))})"
                return f"rebinds/mutates free state {names}{via}"
        return None


def _rng_named(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return "rng" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "rng" in expr.attr.lower() or _rng_named(expr.value)
    return False


def _assigns_rng(node: ast.AST) -> bool:
    """Any assignment whose target names an RNG (state transplant)."""
    for part in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(part, ast.Assign):
            targets = part.targets
        elif isinstance(part, (ast.AnnAssign, ast.AugAssign)):
            targets = [part.target]
        if any(_rng_named(target) for target in targets):
            return True
    return False


def _has_inline_guard(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.If) and any(
            isinstance(part, ast.Compare) for part in ast.walk(inner.test)
        ):
            if any(isinstance(part, ast.Raise) for part in ast.walk(inner)):
                return True
    return False


def _is_protected(fn: FunctionInfo) -> bool:
    """Monotonicity guard visible on this function itself."""
    node = fn.node
    if isinstance(node, ast.Lambda):
        return False
    for decorator in node.decorator_list:
        if _decorator_name(decorator) in ("monotone_timestamps", "abstractmethod"):
            return True
    return _has_inline_guard(node)


def _is_ingest_target(fn: FunctionInfo) -> bool:
    node = fn.node
    if isinstance(node, ast.Lambda) or fn.parent is not None:
        return False
    if fn.name not in INGEST_VERBS or _is_stub_body(node):
        return False
    args = node.args
    names = {
        arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    return bool(names & TIME_PARAMS)


def _is_public_entry(project: Project, fn: FunctionInfo) -> bool:
    """Part of the public API surface: importable without underscores."""
    if fn.parent is not None or fn.name.startswith("_"):
        return False
    if fn.cls is not None:
        cls = project.symbols.classes.get(fn.cls)
        if cls is None or cls.name.startswith("_"):
            return False
    return True


@register_project
class ContractCoverageRule(ProjectRule):
    """SL014: monotone-timestamp contract gap along a public call path.

    SL008 demanded a guard *in* every ingest-verb function, which both
    over-reports (a public façade that delegates to a guarded tracker
    is safe) and under-reports (a private worker method is unguarded
    but SL008 never sees the public wrapper that exposes it).  This
    rule checks the property the repo actually needs: every path from
    the public API to a timestamp-consuming ingest function passes a
    monotonicity guard.  A target passes if it carries a guard itself,
    if it delegates to a guarded ingest function, or if every public
    route to it goes through a guarded function.
    """

    code = "SL014"
    summary = "timestamp ingest path from public API lacks monotonicity guard"
    rationale = (
        "PLA feasibility and predecessor reads assume strictly "
        "increasing time; the guard must sit somewhere on every public "
        "call path, not necessarily in every function."
    )

    def check_project(self, project: Project) -> None:
        functions = project.symbols.functions
        protected = {
            qualname for qualname, fn in functions.items() if _is_protected(fn)
        }
        entries = [
            qualname
            for qualname, fn in functions.items()
            if _is_public_entry(project, fn) and qualname not in protected
        ]
        # Everything on an unguarded path from the public surface.
        exposed = project.reachable(entries, stop=frozenset(protected))
        for qualname, fn in functions.items():
            if not _is_ingest_target(fn) or qualname in protected:
                continue
            if qualname not in exposed:
                continue  # only reachable through guarded wrappers
            if self._delegates_to_guard(project, qualname, protected):
                continue
            route = _arrow(Project.path_to(exposed, qualname))
            self.report(
                fn.path,
                fn.node,
                f"{fn.name}() consumes a timestamp and is reachable from "
                f"the public API without a monotonicity guard ({route}); "
                "raise behind a comparison or use "
                "@contracts.monotone_timestamps on the path",
            )

    @staticmethod
    def _delegates_to_guard(
        project: Project, qualname: str, protected: set[str]
    ) -> bool:
        """The target hands its timestamps to a guarded ingest function."""
        reached = project.reachable([qualname])
        for callee in reached:
            if callee == qualname or callee not in protected:
                continue
            fn = project.symbols.functions.get(callee)
            if fn is not None and _is_ingest_target(fn):
                return True
        return False


@register_project
class UnpropagatedRNGRule(ProjectRule):
    """SL015: forked callee chain consumes RNG with no determinism plan.

    SL011 fires when the *dispatching* function lexically touches an
    RNG; hiding the draw one call deep (the worker calls a helper that
    draws) defeats it.  This rule resolves each fork-shipped callable,
    walks everything reachable from it, and flags the dispatch when any
    reached function consumes a generator while no mitigation call
    (``bulk_uniforms``, ``spawn``, ``jumped``, ``SeedSequence``,
    ``seed``, ``getstate``/``setstate``, ``bit_generator``) is visible
    in the dispatcher, the workers, or anything they reach.
    Dispatchers that lexically mention an RNG are SL011's to judge and
    are skipped here.
    """

    code = "SL015"
    summary = "fork-shipped call chain consumes RNG without a per-worker plan"
    rationale = (
        "Fork duplicates generator state: a worker that draws through "
        "any helper chain replays its siblings' sequence and never "
        "advances the master's generator, breaking parallel == serial "
        "bit-equality."
    )

    def check_project(self, project: Project) -> None:
        for fn in list(project.symbols.functions.values()):
            for call, shipped in _dispatch_sites(project, fn):
                if not shipped:
                    continue
                if ForkSharedRNGRule._mentions_rng(fn.node):
                    continue  # lexical case: SL011's verdict stands
                scope = project.reachable(
                    [fn.qualname, *(worker.qualname for worker in shipped)]
                )
                if self._mitigated(project, scope):
                    continue
                culprit = self._rng_consumer(project, shipped, scope)
                if culprit is None:
                    continue
                route = _arrow(Project.path_to(scope, culprit))
                self.report(
                    fn.path,
                    call,
                    f"forked work reaches RNG consumption in {culprit} "
                    f"({route}) with no per-worker determinism plan "
                    "(pre-draw with bulk_uniforms, spawn/seed per-worker "
                    "generators, or transplant state explicitly)",
                )

    @staticmethod
    def _mitigated(project: Project, scope: dict[str, str | None]) -> bool:
        for qualname in scope:
            for site in project.graph.sites.get(qualname, []):
                if site.name in _MITIGATIONS:
                    return True
            # A state transplant can be an assignment rather than a
            # call: ``history._rng = self._rng`` / ``rng.state = ...``
            # rewires generator identity explicitly and counts as a
            # determinism plan.
            fn = project.symbols.functions.get(qualname)
            if fn is not None and _assigns_rng(fn.node):
                return True
        return False

    @staticmethod
    def _rng_consumer(
        project: Project,
        shipped: list[FunctionInfo],
        scope: dict[str, str | None],
    ) -> str | None:
        worker_reached: set[str] = set()
        for worker in shipped:
            worker_reached.update(project.reachable([worker.qualname]))
        for qualname in scope:
            if qualname not in worker_reached:
                continue  # RNG use on the master side is SL011's concern
            summary: DataflowSummary | None = project.summary(qualname)
            if summary is not None and summary.touches_rng:
                return qualname
        return None


#: Exception names whose handlers can hide durability failures.
_SWALLOWABLE = {"OSError", "IOError", "Exception", "BaseException"}

#: Call-name substrings that count as routing a failure into the
#: supervision machinery rather than swallowing it: health transitions,
#: quarantine/dead-letter moves, verdict recording and typed rejection.
_FAILURE_ROUTES = (
    "quarantine",
    "degrade",
    "fail",
    "transition",
    "verdict",
    "reject",
    "heal",
)


def _caught_durability_type(handler: ast.ExceptHandler) -> str | None:
    """The swallowable exception name the handler catches, if any."""
    if handler.type is None:
        return "bare except"
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for type_node in types:
        if isinstance(type_node, ast.Name) and type_node.id in _SWALLOWABLE:
            return type_node.id
    return None


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _handler_swallows(
    handler: ast.ExceptHandler, fn_node: ast.AST
) -> bool:
    """Whether the handler hides the failure rather than handling it.

    A handler *handles* a durability error when it raises (anything —
    re-raise, typed ``DegradedError``, wrapped cause), when it calls
    into the supervision machinery (a call whose name mentions
    quarantine / degrade / fail / transition / verdict / reject /
    heal), or when it stores the bound exception for a later raise
    (the ``last = exc`` retry-loop idiom).  Anything else swallows.
    """
    for inner in ast.walk(handler):
        if isinstance(inner, ast.Raise):
            return False
        if isinstance(inner, ast.Call) and any(
            route in _call_name(inner).lower() for route in _FAILURE_ROUTES
        ):
            return False
    bound = handler.name
    if bound is not None:
        for inner in ast.walk(handler):
            targets: list[ast.expr] = []
            if isinstance(inner, ast.Assign):
                targets = inner.targets
            elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                targets = [inner.target]
            if not targets:
                continue
            uses_bound = any(
                isinstance(part, ast.Name) and part.id == bound
                for value in ([inner.value] if inner.value else [])
                for part in ast.walk(value)
            )
            if not uses_bound:
                continue
            # The exception escapes the handler into a named slot; if
            # any raise in the enclosing function mentions that slot,
            # the failure still surfaces (bounded-retry idiom).
            names = {
                target.id
                for target in targets
                if isinstance(target, ast.Name)
            }
            for part in ast.walk(fn_node):
                if isinstance(part, ast.Raise) and any(
                    isinstance(sub, ast.Name) and sub.id in names
                    for node in filter(None, (part.exc, part.cause))
                    for sub in ast.walk(node)
                ):
                    return False
    return True


@register_project
class SwallowedDurabilityErrorRule(ProjectRule):
    """SL016: durability-reachable handler swallows an I/O failure.

    SL004 flags broad handlers syntactically, everywhere, and says
    nothing about ``except OSError`` — which is *narrow* in general
    code but load-bearing on the durability paths: an ``OSError``
    swallowed between ``wal.append`` and the acknowledgement means the
    caller believes a record is durable that was never written.  This
    rule walks the call graph from every ``store/`` / ``io/`` /
    ``runtime/`` function and flags any reachable handler that catches
    ``OSError`` / ``Exception`` / bare and neither re-raises, nor
    routes the failure into the health machinery (degrade, quarantine,
    fail, reject, verdict, transition), nor stores it for a later
    raise.  :mod:`repro.io.atomic` is exempt (its best-effort cleanup
    handlers run *after* the durable rename).
    """

    code = "SL016"
    summary = "durability-reachable except swallows an I/O failure"
    rationale = (
        "A swallowed OSError on the WAL/checkpoint path silently "
        "acknowledges writes that were never made durable; failures "
        "must re-raise, degrade the runtime, or feed a bounded retry "
        "that eventually raises."
    )

    def check_project(self, project: Project) -> None:
        entries = [
            fn.qualname
            for fn in project.symbols.functions.values()
            if _in_durability_scope(fn.path)
        ]
        if not entries:
            return
        parents = project.reachable(entries)
        reported: set[tuple[str, int]] = set()
        for qualname in parents:
            fn = project.symbols.functions.get(qualname)
            if fn is None or fn.module in _SANCTIONED_WRITERS:
                continue
            for handler in self._handlers_in_scope(fn):
                caught = _caught_durability_type(handler)
                if caught is None or not _handler_swallows(handler, fn.node):
                    continue
                key = (fn.path, handler.lineno)
                if key in reported:
                    continue
                reported.add(key)
                route = _arrow(Project.path_to(parents, qualname))
                self.report(
                    fn.path,
                    handler,
                    f"{caught} swallowed in {fn.qualname} on a "
                    f"durability-reachable path ({route}); re-raise, "
                    "degrade the runtime, or store the failure for a "
                    "bounded-retry raise",
                )

    @staticmethod
    def _handlers_in_scope(fn: FunctionInfo) -> list[ast.ExceptHandler]:
        """Except handlers lexically inside ``fn``'s own scope."""
        handlers: list[ast.ExceptHandler] = []
        stack: list[ast.AST] = [fn.node]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ) and child is not fn.node:
                    continue
                if isinstance(child, ast.ExceptHandler):
                    handlers.append(child)
                stack.append(child)
        return handlers


#: Call names that construct an OS-backed memory mapping.  Project
#: classes deriving from one (e.g. ``repro.shm._Mapping``) are folded
#: in per run via their base names.
_MAPPING_FACTORIES = {"SharedMemory", "mmap"}

#: Methods that detach or destroy a mapping; any one of them counts as
#: cleanup for SL017 (``release`` is the ShmSegment close+unlink verb).
_MAPPING_CLEANUP = {"close", "unlink", "release"}


def _finally_and_handler_nodes(
    scope: ast.AST,
) -> tuple[set[int], set[int]]:
    """Identity sets of every node inside a finalbody / except handler."""
    in_finally: set[int] = set()
    in_handler: set[int] = set()
    for part in ast.walk(scope):
        if not isinstance(part, ast.Try):
            continue
        for stmt in part.finalbody:
            in_finally.update(id(sub) for sub in ast.walk(stmt))
        for handler in part.handlers:
            in_handler.update(id(sub) for sub in ast.walk(handler))
    return in_finally, in_handler


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(part, ast.Name) and part.id == name
        for part in ast.walk(node)
    )


def _hands_off_handle(value: ast.expr, name: str) -> bool:
    """Whether returning/yielding ``value`` transfers the handle itself.

    ``return segment`` (or a tuple/list containing the bare name) hands
    ownership to the caller; ``return segment.name`` returns derived
    data and the handle still needs local cleanup.
    """
    if isinstance(value, ast.Name) and value.id == name:
        return True
    if isinstance(value, (ast.Tuple, ast.List)):
        return any(
            isinstance(elt, ast.Name) and elt.id == name
            for elt in value.elts
        )
    return False


def _self_attr(expr: ast.expr) -> str | None:
    """``self.<attr>`` -> attr; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


@register_project
class UnpairedMappingRule(ProjectRule):
    """SL017: mapping created without a guaranteed close/unlink.

    A ``SharedMemory`` segment or ``mmap`` leaks a file descriptor —
    and, for an owner, a ``/dev/shm`` entry — on any path that skips
    its ``close()`` / ``unlink()``.  The rule finds every construction
    of a mapping (including project subclasses such as
    ``repro.shm._Mapping``) and demands cleanup on *all* paths:

    * a ``with`` statement over the handle, or cleanup inside a
      ``finally`` block, always satisfies it;
    * a straight-line ``close()`` alone does not — an exception
      between construction and close leaks the mapping — unless an
      except handler also cleans up the error path;
    * a handle stored on ``self`` is satisfied by cleanup of that
      attribute in any method of the same class (the handle-object
      idiom: ``__init__`` binds, ``close()`` releases);
    * a handle passed to another function is checked
      interprocedurally: the resolved callee's call tree must contain
      a cleanup verb (unresolvable callees contribute no claim).

    Deliberate leak-until-exit schemes opt out with a justified
    per-line suppression at the construction site.
    """

    code = "SL017"
    summary = "memory mapping lacks a guaranteed close()/unlink() path"
    rationale = (
        "A SharedMemory or mmap handle that misses cleanup on an "
        "exception path leaks fds per call and, owner-side, orphans "
        "/dev/shm entries that survive the process; lifecycle must be "
        "finally/with-guaranteed, not straight-line."
    )

    def check_project(self, project: Project) -> None:
        factories = set(_MAPPING_FACTORIES)
        for cls in project.symbols.classes.values():
            if _MAPPING_FACTORIES & set(cls.bases):
                factories.add(cls.name)
        for fn in list(project.symbols.functions.values()):
            creations = [
                call
                for call in _calls_in_scope(fn)
                if _call_name(call) in factories
            ]
            if not creations:
                continue
            parent_of: dict[int, ast.AST] = {}
            for parent in ast.walk(fn.node):
                for child in ast.iter_child_nodes(parent):
                    parent_of[id(child)] = parent
            for call in creations:
                problem = self._site_problem(project, fn, call, parent_of)
                if problem is not None:
                    self.report(
                        fn.path,
                        call,
                        f"{_call_name(call)}(...) in {fn.qualname} "
                        f"{problem}; guarantee close()/unlink() with "
                        "try/finally or a with block",
                    )

    def _site_problem(
        self,
        project: Project,
        fn: FunctionInfo,
        call: ast.Call,
        parent_of: dict[int, ast.AST],
    ) -> str | None:
        """Why this construction site leaks, or None when it is safe."""
        parent = parent_of.get(id(call))
        if isinstance(parent, ast.withitem) and parent.context_expr is call:
            return None  # context manager guarantees __exit__
        if isinstance(parent, ast.Call) and call is not parent.func:
            return self._delegation_problem(project, fn, parent)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return None  # ownership transfers to the caller
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return self._binding_problem(project, fn, target.id)
            attr = _self_attr(target)
            if attr is not None:
                return self._attribute_problem(project, fn, attr)
            return None  # container/subscript stores park ownership elsewhere
        if isinstance(parent, ast.Expr):
            return "is discarded immediately and never closed"
        return None  # other expression contexts: no claim

    @staticmethod
    def _delegation_problem(
        project: Project, fn: FunctionInfo, consumer: ast.Call
    ) -> str | None:
        """A freshly built mapping handed straight to another call."""
        targets = project.resolve_callable(fn, consumer.func)
        if not targets:
            return None  # unresolvable: no edge, no claim
        reachable = project.reachable(
            [target.qualname for target in targets]
        )
        for qualname in reachable:
            for site in project.graph.sites.get(qualname, []):
                if site.name in _MAPPING_CLEANUP:
                    return None
        route = _arrow([fn.qualname, targets[0].qualname])
        return (
            f"is handed to {targets[0].qualname} whose call tree never "
            f"closes or unlinks it ({route})"
        )

    def _binding_problem(
        self, project: Project, fn: FunctionInfo, name: str
    ) -> str | None:
        """A mapping bound to a local: demand all-paths cleanup."""
        scope = fn.node
        in_finally, in_handler = _finally_and_handler_nodes(scope)
        guaranteed = on_error = plain = False
        for other in _calls_in_scope(fn):
            func = other.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _MAPPING_CLEANUP
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                continue
            if id(other) in in_finally:
                guaranteed = True
            elif id(other) in in_handler:
                on_error = True
            else:
                plain = True
        if guaranteed or (on_error and plain):
            return None
        for part in ast.walk(scope):
            if isinstance(part, ast.withitem) and _mentions_name(
                part.context_expr, name
            ):
                return None  # with <handle> / with closing(<handle>)
            if isinstance(part, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(part, "value", None)
                if value is not None and _hands_off_handle(value, name):
                    return None  # the handle itself escapes to the caller
            if isinstance(part, ast.Assign) and _mentions_name(
                part.value, name
            ):
                for target in part.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        return self._attribute_problem(project, fn, attr)
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return None  # parked in longer-lived storage
        for other in _calls_in_scope(fn):
            consumed = any(
                _mentions_name(arg, name)
                for arg in (
                    *other.args,
                    *(kw.value for kw in other.keywords),
                )
            )
            if consumed and not (
                isinstance(other.func, ast.Attribute)
                and isinstance(other.func.value, ast.Name)
                and other.func.value.id == name
            ):
                return self._delegation_problem(project, fn, other)
        if plain:
            return (
                f"closes {name!r} only on the straight-line path — an "
                "exception before the close leaks the mapping"
            )
        return f"binds {name!r} but no path ever closes or unlinks it"

    @staticmethod
    def _attribute_problem(
        project: Project, fn: FunctionInfo, attr: str
    ) -> str | None:
        """A mapping stored on ``self``: some method must clean it up."""
        if fn.cls is None:
            return None  # "self" outside a class: no instance to inspect
        for other in project.symbols.functions.values():
            if other.cls != fn.cls:
                continue
            for call in _calls_in_scope(other):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MAPPING_CLEANUP
                    and _self_attr(func.value) == attr
                ):
                    return None
        return (
            f"is stored on self.{attr} but no method of {fn.cls} ever "
            "closes or unlinks that attribute"
        )


#: Below-buffer apply verbs: the serial-or-pool dispatch layer the
#: update buffer stages in front of.  Calling one directly slips a
#: record stream underneath whatever the buffer still holds.
_BUFFER_BYPASS_VERBS = {
    "_ingest",
    "_ingest_batch",
    "_ingest_batch_via_pool",
    "_apply_batch",
}

#: The module that owns the buffer tier: absorption, flush and the
#: below-buffer dispatch all live here, so its internal calls are the
#: sanctioned mechanism rather than a bypass.
_BUFFER_DISPATCH_MODULES = {"repro.core.base"}

#: Call names whose execution flushes the buffer tier before state is
#: read: the flush itself, the sync funnel every query passes through,
#: and the drain/finalize verbs that call into it.
_FLUSH_VERBS = {
    "flush_buffer",
    "flush_buffers",
    "_ensure_synced",
    "detach_workers",
    "drain_workers",
    "finalize",
}

#: Call names that read per-counter history state.
_TRACKER_READS = {"value_at", "export_arrays"}

#: Root class of the buffered sketch hierarchy.
_SKETCH_ROOTS = {"PersistentSketch"}


def _sketch_classes(project: Project) -> set[str]:
    """Qualnames of every class in the ``PersistentSketch`` hierarchy."""
    symbols = project.symbols
    roots = [
        cls.qualname
        for cls in symbols.classes.values()
        if cls.name in _SKETCH_ROOTS
    ]
    members = set(roots)
    stack = list(roots)
    while stack:
        qualname = stack.pop()
        for sub in symbols.subclasses.get(qualname, []):
            if sub not in members:
                members.add(sub)
                stack.append(sub)
    return members


@register_project
class BufferBypassRule(ProjectRule):
    """SL018: the two-stage update buffer is skipped or left unflushed.

    The buffer tier (:mod:`repro.core.buffer`) is correct only while
    two whole-program properties hold, and both are invisible to
    per-module rules:

    * every update enters through the absorbing entry points
      (``update`` / ``ingest_batch``), never through the below-buffer
      apply verbs — a direct ``_ingest_batch`` call lands its records
      *underneath* whatever the buffer still stages, reordering the
      stream the flush later replays;
    * every public query/freeze path that reads per-counter history
      passes a flushing verb first — otherwise buffered-but-unflushed
      updates are silently missing from the answer, breaking the
      exact-mode bit-equality contract.

    The first check flags any call to a below-buffer verb outside the
    owning dispatch module (``repro.core.base``).  The second walks the
    resolved call tree of every public method of every
    ``PersistentSketch`` subclass and flags trees that contain a
    history read (``value_at`` / ``export_arrays``) but no flush verb;
    an unresolvable delegation contributes neither, so every finding
    rests on an actually-visible unflushed read, quoted as a call path.
    """

    code = "SL018"
    summary = "update-buffer tier bypassed or read without a flush"
    rationale = (
        "Exact-mode buffering is bit-identical only when every update "
        "is absorbed through the buffer and every history read is "
        "preceded by a flush; a bypassed feed reorders the stream and "
        "an unflushed read serves answers that lag it."
    )

    def check_project(self, project: Project) -> None:
        self._check_bypass_feeds(project)
        self._check_unflushed_reads(project)

    def _check_bypass_feeds(self, project: Project) -> None:
        for fn in list(project.symbols.functions.values()):
            if fn.module in _BUFFER_DISPATCH_MODULES:
                continue
            for call in _calls_in_scope(fn):
                name = _call_name(call)
                if name not in _BUFFER_BYPASS_VERBS:
                    continue
                self.report(
                    fn.path,
                    call,
                    f"{fn.qualname} calls the below-buffer apply verb "
                    f"{name}() directly, bypassing the update-buffer "
                    "tier; feed through update()/ingest_batch() so "
                    "staged records cannot be reordered around it",
                )

    def _check_unflushed_reads(self, project: Project) -> None:
        sketch_classes = _sketch_classes(project)
        if not sketch_classes:
            return
        for qualname, fn in project.symbols.functions.items():
            if (
                fn.cls not in sketch_classes
                or fn.name.startswith("_")
                or fn.parent is not None
                or isinstance(fn.node, ast.Lambda)
                or _is_stub_body(fn.node)
            ):
                continue
            reached = project.reachable([qualname])
            flushed = any(
                site.name in _FLUSH_VERBS
                for node in reached
                for site in project.graph.sites.get(node, [])
            )
            if flushed:
                continue
            culprit = self._history_reader(project, reached)
            if culprit is None:
                continue
            route = _arrow(Project.path_to(reached, culprit))
            self.report(
                fn.path,
                fn.node,
                f"{fn.qualname}() reads per-counter history in {culprit} "
                f"({route}) with no buffer flush on the path; call "
                "_ensure_synced()/flush_buffer() before reading, or the "
                "answer lags buffered updates",
            )

    @staticmethod
    def _history_reader(
        project: Project, reached: dict[str, str | None]
    ) -> str | None:
        for qualname in reached:
            for site in project.graph.sites.get(qualname, []):
                if site.name in _TRACKER_READS:
                    return qualname
        return None
