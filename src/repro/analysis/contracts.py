"""Runtime contract layer for the sketch invariants.

The paper's correctness argument leans on invariants the code can only
enforce dynamically: strictly increasing timestamps into every
persistence structure, monotone counter components behind the sampled
history lists, and Δ-bounded PLA segment error.  This module provides
lightweight decorators and validators the sketch classes opt into.

Contracts are **off by default** and cost nothing when off:

* decorators applied while disabled return the function object
  unchanged (identity), so decorated hot paths are byte-for-byte the
  undecorated ones;
* validators check :data:`ENABLED` first and return immediately.

Enable them with ``REPRO_CONTRACTS=1`` in the environment (read at
import time) or programmatically via :func:`set_enabled` /
:func:`enforced`.  The test suite force-enables them in
``tests/conftest.py`` so every test runs fully checked.

Violations raise :class:`ContractViolation`, a :class:`ValueError`
subclass, so existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

import functools
import inspect
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, TypeVar
from weakref import WeakKeyDictionary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pla.segment import Segment

F = TypeVar("F", bound=Callable[..., Any])

#: Whether contracts are live.  Mutated only via :func:`set_enabled`.
ENABLED: bool = os.environ.get("REPRO_CONTRACTS", "").strip().lower() not in (
    "",
    "0",
    "false",
    "no",
    "off",
)


class ContractViolation(ValueError):
    """A dynamic invariant of the persistent-sketch analysis was broken."""


def enabled() -> bool:
    """Whether contracts are currently enforced."""
    return ENABLED


def set_enabled(flag: bool) -> None:
    """Turn enforcement on/off.

    Decorators consult the flag both when applied (identity if off) and
    per call, so flipping it affects already-decorated functions too —
    but functions decorated *while off* stay unwrapped permanently;
    import order matters for library classes.
    """
    global ENABLED
    ENABLED = bool(flag)


@contextmanager
def enforced(flag: bool = True) -> Iterator[None]:
    """Context manager scoping :func:`set_enabled` (used by tests)."""
    previous = ENABLED
    set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


#: Key for tracking plain (non-method) decorated functions.
_GLOBAL_KEY = object()


def monotone_timestamps(param: str = "t") -> Callable[[F], F]:
    """Enforce strictly increasing ``param`` across calls.

    Tracking is per instance for methods (first parameter named
    ``self``/``cls``) and per function otherwise.  A call that raises —
    from the contract or the wrapped function — does not advance the
    tracked timestamp.  ``None`` timestamps (auto-assignment sentinels)
    are skipped.

    Instances of ``__slots__`` classes must list ``__weakref__`` so the
    tracker can hold them weakly; unweakrefable instances fall back to
    an ``id()``-keyed table (fine for the test suite, documented as a
    leak for long-running enforcement).
    """

    def decorate(fn: F) -> F:
        if not ENABLED:
            return fn
        names = list(inspect.signature(fn).parameters)
        try:
            pos = names.index(param)
        except ValueError:
            raise TypeError(
                f"@monotone_timestamps: {fn.__qualname__} has no "
                f"parameter {param!r}"
            ) from None
        is_method = bool(names) and names[0] in ("self", "cls")
        weak_last: WeakKeyDictionary[Any, Any] = WeakKeyDictionary()
        strong_last: dict[int, Any] = {}

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not ENABLED:
                return fn(*args, **kwargs)
            if param in kwargs:
                t = kwargs[param]
            elif pos < len(args):
                t = args[pos]
            else:
                t = None
            if t is None:
                return fn(*args, **kwargs)
            key = args[0] if is_method and args else _GLOBAL_KEY
            try:
                previous = weak_last.get(key)
                weak = True
            except TypeError:
                previous = strong_last.get(id(key))
                weak = False
            if previous is not None and t <= previous:
                raise ContractViolation(
                    f"{fn.__qualname__}: timestamps must be strictly "
                    f"increasing, got {t!r} after {previous!r}"
                )
            result = fn(*args, **kwargs)
            if weak:
                weak_last[key] = t
            else:
                strong_last[id(key)] = t
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def check_sorted_timeline(
    lists: Sequence[Sequence[int]] | Sequence[list[int]],
    what: str = "timeline",
) -> None:
    """Every list must be strictly increasing (predecessor-searchable)."""
    if not ENABLED:
        return
    for which, lst in enumerate(lists):
        for i in range(len(lst) - 1):
            if lst[i] >= lst[i + 1]:
                raise ContractViolation(
                    f"{what}: list {which} is not strictly increasing at "
                    f"index {i} ({lst[i]} >= {lst[i + 1]})"
                )


def check_segment_error(
    segment: "Segment",
    times: Sequence[float],
    values: Sequence[float],
    delta: float,
    slack: float = 1e-6,
) -> None:
    """Every fed point of a run must sit within ``delta`` of the segment.

    This is Section 3's defining PLA guarantee; ``slack`` absorbs float
    rounding in the supporting-line bisector.
    """
    if not ENABLED:
        return
    bound = float(delta) + slack
    for t, v in zip(times, values):
        approx = segment.evaluate_clamped(t)
        if abs(approx - v) > bound:
            raise ContractViolation(
                f"PLA segment [{segment.t_start}, {segment.t_end}] deviates "
                f"by {abs(approx - v):.6g} > delta={delta:.6g} from the fed "
                f"point (t={t}, v={v})"
            )


def check_sketch(sketch: Any, what: str = "sketch") -> None:
    """Structural invariants of one persistent sketch, recursively.

    Duck-typed so the contract layer needs no imports from
    :mod:`repro.core` (which imports *this* module): Count-Min-style
    sketches expose ``_trackers`` (per-counter PLA/PWC histories),
    sampled AMS sketches expose ``_histories``, and the dyadic
    heavy-hitter hierarchy exposes ``_sketches`` plus a ``_mass``
    tracker.  Used by checkpoint recovery to re-validate a rebuilt store
    before it may serve queries.
    """
    if not ENABLED:
        return
    subsketches = getattr(sketch, "_sketches", None)
    if subsketches is not None:
        for level, sub in enumerate(subsketches):
            check_sketch(sub, what=f"{what}[level {level}]")
    mass = getattr(sketch, "_mass", None)
    if mass is not None:
        _check_tracker(mass, what=f"{what}.mass")
    trackers = getattr(sketch, "_trackers", None)
    if trackers is not None:
        for row, table in enumerate(trackers):
            for col, tracker in table.items():
                _check_tracker(tracker, what=f"{what}[{row}][{col}]")
    histories = getattr(sketch, "_histories", None)
    if histories is not None:
        for row, by_sign in enumerate(histories):
            for sign, copies in enumerate(by_sign):
                for copy, table in enumerate(copies):
                    for col, history in table.items():
                        check_history_list(
                            history,
                            what=(
                                f"{what}[{row}][b={sign}][copy {copy}]"
                                f"[col {col}]"
                            ),
                        )


def _check_tracker(tracker: Any, what: str) -> None:
    """Timeline invariants of a PLA/PWC counter tracker."""
    pla = getattr(tracker, "_pla", None)
    if pla is not None:
        starts = [segment.t_start for segment in pla.function]
        ends = [segment.t_end for segment in pla.function]
        check_sorted_timeline([starts], what=f"{what} (PLA segment starts)")
        for t_start, t_end in zip(starts, ends):
            if t_end < t_start:
                raise ContractViolation(
                    f"{what}: PLA segment ends before it starts "
                    f"({t_end} < {t_start})"
                )
    pwc = getattr(tracker, "_pwc", None)
    if pwc is not None:
        check_sorted_timeline(
            [pwc.function._times], what=f"{what} (PWC record times)"
        )


def check_store(store: Any, what: str = "store") -> None:
    """Re-validate every sketch of a :class:`~repro.store.SketchStore`.

    Called by :meth:`repro.runtime.IngestRuntime.recover` (inside an
    ``enforced(True)`` scope, so recovery is always checked even when
    contracts are off globally) after a checkpoint-plus-WAL rebuild.
    """
    if not ENABLED:
        return
    for name, state in sorted(store._streams.items()):
        for label, sketch in (
            ("point", state.point_sketch),
            ("hh", state.hh_sketch),
            ("join", state.join_sketch),
        ):
            if sketch is not None:
                check_sketch(sketch, what=f"{what}:{name}.{label}")


def check_history_list(history: Any, what: str = "history list") -> None:
    """Structural invariants of a sampled history list (Section 4.1).

    Timestamps strictly increase, sampled values never decrease (the
    component is monotone by construction), value/time lengths match,
    and no sampled value undercuts the component's starting value.
    """
    if not ENABLED:
        return
    times = history.sample_times()
    values = history._values
    if len(times) != len(values):
        raise ContractViolation(
            f"{what}: {len(times)} timestamps vs {len(values)} values"
        )
    check_sorted_timeline([times], what=what)
    previous = history.initial_value
    for t, value in zip(times, values):
        if value < previous:
            raise ContractViolation(
                f"{what}: sampled value decreased at t={t} "
                f"({value} < {previous}); component must be monotone"
            )
        previous = value
