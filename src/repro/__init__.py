"""repro — persistent data sketching.

A from-scratch reproduction of *Persistent Data Sketching* (Wei, Luo, Yi,
Du, Wen — SIGMOD 2015): streaming sketches that remain queryable at **any
past time window** ``(s, t]`` while staying sublinear in the stream length.

Quickstart
----------
>>> from repro import PersistentCountMin
>>> sketch = PersistentCountMin(width=256, depth=5, delta=16)
>>> for t, item in enumerate([3, 7, 3, 3, 9], start=1):
...     sketch.update(item, time=t)
>>> sketch.point(3, s=0, t=3)   # how many 3s in the first three ticks?
2.0

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
paper's evaluation, table by table and figure by figure.
"""

from __future__ import annotations

from repro.core import (
    HistoricalAMS,
    HistoricalCountMin,
    HistoricalHeavyHitters,
    JoinEstimate,
    PersistentAMS,
    PersistentCountMin,
    PersistentHeavyHitters,
    PersistentQuantiles,
    PersistentSketch,
    PersistentWavelets,
    PWCAMS,
    PWCCountMin,
    SlidingWindowView,
    make_ams_pair,
    window_join_size,
)
from repro.baselines import ExponentialHistogram
from repro.core.estimates import Estimate, ams_point, countmin_point
from repro.store import ShardedPersistentSketch, SketchStore, StreamSpec
from repro.sketch import AMSSketch, CountMinSketch, ExactFrequency
from repro.streams import (
    GroundTruth,
    Stream,
    Update,
    client_id_stream,
    object_id_stream,
    uniform_stream,
    zipf_stream,
)

__version__ = "1.0.0"

__all__ = [
    "PersistentSketch",
    "PersistentCountMin",
    "PWCCountMin",
    "PersistentAMS",
    "PWCAMS",
    "HistoricalCountMin",
    "HistoricalAMS",
    "PersistentHeavyHitters",
    "HistoricalHeavyHitters",
    "PersistentQuantiles",
    "PersistentWavelets",
    "SlidingWindowView",
    "SketchStore",
    "StreamSpec",
    "ShardedPersistentSketch",
    "JoinEstimate",
    "make_ams_pair",
    "window_join_size",
    "Estimate",
    "countmin_point",
    "ams_point",
    "ExponentialHistogram",
    "CountMinSketch",
    "AMSSketch",
    "ExactFrequency",
    "Stream",
    "Update",
    "GroundTruth",
    "zipf_stream",
    "uniform_stream",
    "client_id_stream",
    "object_id_stream",
    "__version__",
]
