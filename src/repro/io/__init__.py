"""Serialization of persistent sketches.

A persistent sketch is an *archive*: it outlives the stream that built
it.  This package round-trips the four window-query sketches (and the
dyadic heavy-hitter structure composed of them) through a versioned,
self-describing JSON document — optionally gzip-compressed — so a sketch
ingested on one machine can be queried, or further updated, on another.

    from repro.io import save, load
    save(sketch, "urls.sketch.gz")
    sketch = load("urls.sketch.gz")
"""

from __future__ import annotations

from repro.io.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
    replace_directory,
)
from repro.io.serialize import SerializationError, from_dict, load, save, to_dict

__all__ = [
    "save",
    "load",
    "to_dict",
    "from_dict",
    "SerializationError",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "replace_directory",
]
