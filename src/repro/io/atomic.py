"""Crash-safe filesystem primitives: tmp-file + fsync + rename.

POSIX ``rename(2)`` within one filesystem is atomic: a reader sees
either the old file or the new file, never a torn mix.  Every durable
artifact in the repo — sketch archives, store manifests, checkpoint
pointers — goes through these helpers so that a crash (power loss,
``kill -9``, a :class:`~repro.runtime.faults.SimulatedCrash`) at *any*
instruction boundary leaves the previous intact version in place.

The write protocol is the classic three-step dance:

1. write the full payload to ``<name>.tmp.<pid>`` in the target
   directory (same filesystem, so the final rename cannot degrade to a
   copy);
2. ``fsync`` the temp file, so the data precedes the rename in the
   journal;
3. ``rename`` onto the final path, then ``fsync`` the parent directory
   so the rename itself is durable.

sketchlint rule SL009 flags direct ``Path.write_text`` /
``Path.write_bytes`` calls to final paths anywhere under ``store/``,
``io/`` or ``runtime/`` — this module is the sanctioned implementation
(it writes through raw file handles, so the rule stays quiet here).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory's entry table (makes renames in it durable).

    Silently skips platforms/filesystems that refuse ``open(O_RDONLY)``
    on directories (e.g. Windows); durability is then best-effort, which
    matches what the rest of the repo can promise there.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _tmp_path(path: Path) -> Path:
    return path.with_name(f".{path.name}.tmp.{os.getpid()}")


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename)."""
    path = Path(path)
    tmp = _tmp_path(path)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    try:
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def replace_directory(tmp_dir: str | Path, final_dir: str | Path) -> Path:
    """Move a fully-written ``tmp_dir`` into place as ``final_dir``.

    Directories cannot be renamed over non-empty directories, so the
    swap goes: rename the old version aside, rename the new one in,
    delete the old.  A crash between the two renames leaves the old
    version recoverable at ``<name>.old.<pid>`` and is the only
    non-atomic window; callers that need a stronger guarantee (the
    ingestion runtime) layer a pointer file on top and never replace a
    live directory.
    """
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    old: Path | None = None
    if final_dir.exists():
        old = final_dir.with_name(f".{final_dir.name}.old.{os.getpid()}")
        if old.exists():
            shutil.rmtree(old)
        os.replace(final_dir, old)
    os.replace(tmp_dir, final_dir)
    fsync_directory(final_dir.parent)
    if old is not None:
        shutil.rmtree(old, ignore_errors=True)
    return final_dir
