"""Versioned (de)serialization of persistent sketches.

Document layout::

    {"format": "repro-sketch", "version": 1,
     "type": "<registered type name>", "state": {...}}

Supported types: ``PersistentCountMin``, ``PWCCountMin``,
``PersistentAMS``, ``PWCAMS``, ``PersistentHeavyHitters`` (whose state
embeds one document per level) and the epoch-adaptive
``HistoricalCountMin`` / ``HistoricalAMS`` (epoch managers, per-epoch
tracker runs / history lists and the auxiliary L2 tracker included).

Serializing a PLA-backed sketch first flushes open runs into segments
(:meth:`finalize`): the archive must be self-contained, and a flushed
run keeps exactly the same query answers.  Loaded sketches accept
further updates; the sampling RNG state of a ``PersistentAMS`` is
captured so its random behaviour continues identically.
"""

from __future__ import annotations

import gzip
import json
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.historical_ams import HistoricalAMS, _EpochedComponent
from repro.core.historical_countmin import HistoricalCountMin, _EpochedCounter
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin, PWCCountMin
from repro.core.pwc_ams import PWCAMS
from repro.hashing.families import IdentityHashFamily
from repro.io.atomic import atomic_write_bytes
from repro.persistence.epochs import Epoch, EpochManager
from repro.persistence.history_list import SampledHistoryList
from repro.persistence.tracker import PLATracker, PWCTracker, YoungPLATracker
from repro.pla.orourke import OnlinePLA
from repro.pla.piecewise import PiecewiseLinearFunction
from repro.pla.segment import Segment

FORMAT = "repro-sketch"
VERSION = 1


class SerializationError(ValueError):
    """Raised for malformed or unsupported sketch documents."""


# --------------------------------------------------------------------- #
# Component codecs
# --------------------------------------------------------------------- #


def _encode_pla_function(function: PiecewiseLinearFunction) -> dict:
    return {
        "initial_value": function.initial_value,
        "t_start": [seg.t_start for seg in function],
        "t_end": [seg.t_end for seg in function],
        "slope": [seg.slope for seg in function],
        "value_at_start": [seg.value_at_start for seg in function],
    }


def _decode_pla_function(state: dict) -> PiecewiseLinearFunction:
    function = PiecewiseLinearFunction(initial_value=state["initial_value"])
    for t0, t1, slope, v0 in zip(
        state["t_start"], state["t_end"], state["slope"],
        state["value_at_start"],
    ):
        function.append(
            Segment(t_start=t0, t_end=t1, slope=slope, value_at_start=v0)
        )
    return function


def _encode_pla_tracker(tracker: PLATracker) -> dict:
    # Young trackers carry a staged first touch next to the (possibly
    # still unmaterialized) PLA; encode it so decode restores the exact
    # structural state and a recovered store fingerprints identically
    # to the live one (tests/test_runtime_batch.py pins this).
    young: dict = {}
    if isinstance(tracker, YoungPLATracker):
        young = {
            "young": True,
            "t0": tracker._t0,
            "v0": tracker._v0,
            "initial_value": tracker._initial,
        }
    tracker.finalize()
    pla = tracker._pla
    return {
        "delta": pla.delta,
        "function": _encode_pla_function(pla.function),
        **young,
    }


def _decode_pla_tracker(state: dict) -> PLATracker:
    function = _decode_pla_function(state["function"])
    tracker: PLATracker
    if state.get("young"):
        young_tracker = YoungPLATracker(
            delta=state["delta"], initial_value=state["initial_value"]
        )
        young_tracker._t0 = state["t0"]
        young_tracker._v0 = state["v0"]
        # ``finalize()`` during encode materialized the live ``_pla``;
        # mirror that state exactly (a finalized PLA is fully described
        # by its delta and emitted function).
        young_tracker._pla = OnlinePLA(
            delta=state["delta"], initial_value=function.initial_value
        )
        tracker = young_tracker
    else:
        tracker = PLATracker(
            delta=state["delta"], initial_value=function.initial_value
        )
    pla = tracker._pla
    pla.function = function
    pla._on_segment = function.append
    return tracker


def _encode_pwc_tracker(tracker: PWCTracker) -> dict:
    pwc = tracker._pwc
    return {
        "delta": pwc.delta,
        "initial_value": pwc.function.initial_value,
        "times": list(pwc.function._times),
        "values": list(pwc.function._values),
        "last_recorded": pwc._last_recorded,
    }


def _decode_pwc_tracker(state: dict) -> PWCTracker:
    tracker = PWCTracker(
        delta=state["delta"], initial_value=state["initial_value"]
    )
    pwc = tracker._pwc
    for t, value in zip(state["times"], state["values"]):
        pwc.function.append(t, value)
    pwc._last_recorded = state["last_recorded"]
    return tracker


def _encode_history(history: SampledHistoryList) -> dict:
    return {
        "probability": history.probability,
        "initial_value": history.initial_value,
        "times": list(history._times),
        "values": list(history._values),
    }


def _decode_history(state: dict, rng) -> SampledHistoryList:
    history = SampledHistoryList(
        probability=state["probability"],
        rng=rng,
        initial_value=state["initial_value"],
    )
    history._times = list(state["times"])
    history._values = list(state["values"])
    return history


def _encode_rng_state(rng) -> list:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _decode_rng_state(encoded: list) -> tuple:
    version, internal, gauss = encoded
    return (version, tuple(internal), gauss)


# --------------------------------------------------------------------- #
# Sketch codecs
# --------------------------------------------------------------------- #


def _tracked_cm_state(sketch: PersistentCountMin, encode_tracker) -> dict:
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "delta": sketch.delta,
        "seed": sketch.seed,
        "identity_hashes": isinstance(sketch.hashes, IdentityHashFamily),
        "clock": sketch.now,
        "total": sketch.total,
        "counters": [list(row) for row in sketch._counters],
        "trackers": [
            {str(col): encode_tracker(tracker) for col, tracker in row.items()}
            for row in sketch._trackers
        ],
    }


def _restore_tracked_cm(sketch, state: dict, decode_tracker) -> None:
    sketch._clock = state["clock"]
    sketch.total = state["total"]
    sketch._counters = [list(row) for row in state["counters"]]
    sketch._trackers = [
        {int(col): decode_tracker(tr) for col, tr in row.items()}
        for row in state["trackers"]
    ]


def _encode_persistent_cm(sketch: PersistentCountMin) -> dict:
    return _tracked_cm_state(sketch, _encode_pla_tracker)


def _decode_persistent_cm(state: dict) -> PersistentCountMin:
    sketch = PersistentCountMin(
        width=state["width"],
        depth=state["depth"],
        delta=state["delta"],
        seed=state["seed"],
        hashes=(
            IdentityHashFamily(state["width"], state["depth"])
            if state["identity_hashes"]
            else None
        ),
    )
    _restore_tracked_cm(sketch, state, _decode_pla_tracker)
    return sketch


def _encode_pwc_cm(sketch: PWCCountMin) -> dict:
    return _tracked_cm_state(sketch, _encode_pwc_tracker)


def _decode_pwc_cm(state: dict) -> PWCCountMin:
    sketch = PWCCountMin(
        width=state["width"],
        depth=state["depth"],
        delta=state["delta"],
        seed=state["seed"],
        hashes=(
            IdentityHashFamily(state["width"], state["depth"])
            if state["identity_hashes"]
            else None
        ),
    )
    _restore_tracked_cm(sketch, state, _decode_pwc_tracker)
    return sketch


def _encode_persistent_ams(sketch: PersistentAMS) -> dict:
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "delta": sketch.delta,
        "seed": sketch.seed,
        "copies": sketch.copies,
        "clock": sketch.now,
        "total": sketch.total,
        "rng_state": _encode_rng_state(sketch._rng),
        "components": sketch._components,
        "histories": [
            [
                [
                    {str(col): _encode_history(h) for col, h in lists.items()}
                    for lists in by_sign
                ]
                for by_sign in row_hist
            ]
            for row_hist in sketch._histories
        ],
    }


def _decode_persistent_ams(state: dict) -> PersistentAMS:
    sketch = PersistentAMS(
        width=state["width"],
        depth=state["depth"],
        delta=state["delta"],
        seed=state["seed"],
        independent_copies=state["copies"],
    )
    sketch._clock = state["clock"]
    sketch.total = state["total"]
    sketch._rng.setstate(_decode_rng_state(state["rng_state"]))
    sketch._components = [
        [list(pair) for pair in row] for row in state["components"]
    ]
    sketch._histories = [
        [
            [
                {
                    int(col): _decode_history(h, sketch._rng)
                    for col, h in lists.items()
                }
                for lists in by_sign
            ]
            for by_sign in row_hist
        ]
        for row_hist in state["histories"]
    ]
    return sketch


def _encode_pwc_ams(sketch: PWCAMS) -> dict:
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "delta": sketch.delta,
        "seed": sketch.seed,
        "clock": sketch.now,
        "total": sketch.total,
        "counters": [list(row) for row in sketch._counters],
        "trackers": [
            {
                str(col): _encode_pwc_tracker(tracker)
                for col, tracker in row.items()
            }
            for row in sketch._trackers
        ],
    }


def _decode_pwc_ams(state: dict) -> PWCAMS:
    sketch = PWCAMS(
        width=state["width"],
        depth=state["depth"],
        delta=state["delta"],
        seed=state["seed"],
    )
    sketch._clock = state["clock"]
    sketch.total = state["total"]
    sketch._counters = [list(row) for row in state["counters"]]
    sketch._trackers = [
        {int(col): _decode_pwc_tracker(tr) for col, tr in row.items()}
        for row in state["trackers"]
    ]
    return sketch


def _encode_heavy_hitters(structure: PersistentHeavyHitters) -> dict:
    structure._mass.finalize()
    return {
        "universe": structure.universe,
        "clock": structure.now,
        "mass_total": structure._mass_total,
        "mass": _encode_pla_tracker(structure._mass),
        "levels": [to_dict(sketch) for sketch in structure._sketches],
    }


def _decode_heavy_hitters(state: dict) -> PersistentHeavyHitters:
    levels = [from_dict(doc) for doc in state["levels"]]
    level0 = levels[0]
    structure = PersistentHeavyHitters(
        universe=state["universe"],
        width=level0.width,
        depth=level0.depth,
        delta=level0.delta,
    )
    structure._sketches = levels
    structure._clock = state["clock"]
    structure._mass_total = state["mass_total"]
    structure._mass = _decode_pla_tracker(state["mass"])
    return structure


def _encode_epochs(manager: EpochManager) -> dict:
    return {
        "factor": manager.factor,
        "epochs": [
            [epoch.index, epoch.start_time, epoch.start_norm]
            for epoch in manager.epochs
        ],
    }


def _decode_epochs(state: dict) -> EpochManager:
    manager = EpochManager(factor=state["factor"])
    for index, start_time, start_norm in state["epochs"]:
        manager._epochs.append(
            Epoch(index=index, start_time=start_time, start_norm=start_norm)
        )
        manager._start_times.append(start_time)
    return manager


def _encode_historical_cm(sketch: HistoricalCountMin) -> dict:
    tracked = []
    for row in sketch._tracked:
        encoded_row = {}
        for col, counter in row.items():
            encoded_row[str(col)] = {
                "epoch_ids": list(counter.epoch_ids),
                "trackers": [
                    _encode_pla_tracker(tracker)
                    for tracker in counter.trackers
                ],
            }
        tracked.append(encoded_row)
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "eps": sketch.eps,
        "seed": getattr(sketch, "seed", 0),
        "identity_hashes": isinstance(sketch.hashes, IdentityHashFamily),
        "clock": sketch.now,
        "total": sketch.total,
        "delta": sketch._delta,
        "epochs": _encode_epochs(sketch._epochs),
        "counters": [list(row) for row in sketch._counters],
        "tracked": tracked,
    }


def _decode_historical_cm(state: dict) -> HistoricalCountMin:
    sketch = HistoricalCountMin(
        width=state["width"],
        depth=state["depth"],
        eps=state["eps"],
        seed=state["seed"],
        hashes=(
            IdentityHashFamily(state["width"], state["depth"])
            if state["identity_hashes"]
            else None
        ),
    )
    sketch._clock = state["clock"]
    sketch.total = state["total"]
    sketch._delta = state["delta"]
    sketch._epochs = _decode_epochs(state["epochs"])
    sketch._counters = [list(row) for row in state["counters"]]
    tracked = []
    for row in state["tracked"]:
        decoded_row = {}
        for col, entry in row.items():
            counter = _EpochedCounter()
            counter.epoch_ids = list(entry["epoch_ids"])
            counter.trackers = [
                _decode_pla_tracker(tr) for tr in entry["trackers"]
            ]
            decoded_row[int(col)] = counter
        tracked.append(decoded_row)
    sketch._tracked = tracked
    return sketch


def _encode_historical_ams(sketch: HistoricalAMS) -> dict:
    tracked = []
    for row_hist in sketch._tracked:
        by_sign = []
        for sign_hist in row_hist:
            copies = []
            for lists in sign_hist:
                copies.append(
                    {
                        str(col): {
                            "epoch_ids": list(entry.epoch_ids),
                            "histories": [
                                _encode_history(h) for h in entry.histories
                            ],
                        }
                        for col, entry in lists.items()
                    }
                )
            by_sign.append(copies)
        tracked.append(by_sign)
    aux = sketch._aux._sketch
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "eps": sketch.eps,
        "seed": sketch.seed,
        "copies": sketch.copies,
        "check_cost": sketch._check_cost,
        "clock": sketch.now,
        "total": sketch.total,
        "probability": sketch._probability,
        "updates_until_check": sketch._updates_until_check,
        "rng_state": _encode_rng_state(sketch._rng),
        "epochs": _encode_epochs(sketch._epochs),
        "aux": {
            "width": aux.width,
            "depth": aux.depth,
            "seed": aux.seed,
            "total": aux.total,
            "counters": aux.counters.tolist(),
        },
        "components": sketch._components,
        "tracked": tracked,
    }


def _decode_historical_ams(state: dict) -> HistoricalAMS:
    sketch = HistoricalAMS(
        width=state["width"],
        depth=state["depth"],
        eps=state["eps"],
        seed=state["seed"],
        independent_copies=state["copies"],
        check_cost=state["check_cost"],
    )
    sketch._clock = state["clock"]
    sketch.total = state["total"]
    sketch._probability = state["probability"]
    sketch._updates_until_check = state["updates_until_check"]
    sketch._rng.setstate(_decode_rng_state(state["rng_state"]))
    sketch._epochs = _decode_epochs(state["epochs"])
    import numpy as np

    from repro.sketch.ams import AMSSketch

    aux_state = state["aux"]
    aux = AMSSketch(
        width=aux_state["width"],
        depth=aux_state["depth"],
        seed=aux_state["seed"],
    )
    aux.counters = np.asarray(aux_state["counters"], dtype=np.int64)
    aux.total = aux_state["total"]
    sketch._aux._sketch = aux
    sketch._components = [
        [list(pair) for pair in row] for row in state["components"]
    ]
    tracked = []
    for row_hist in state["tracked"]:
        by_sign = []
        for sign_hist in row_hist:
            copies = []
            for lists in sign_hist:
                decoded = {}
                for col, entry in lists.items():
                    component = _EpochedComponent()
                    component.epoch_ids = list(entry["epoch_ids"])
                    component.histories = [
                        _decode_history(h, sketch._rng)
                        for h in entry["histories"]
                    ]
                    decoded[int(col)] = component
                copies.append(decoded)
            by_sign.append(copies)
        tracked.append(by_sign)
    sketch._tracked = tracked
    return sketch


_CODECS: dict[str, tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {
    "PersistentCountMin": (
        PersistentCountMin, _encode_persistent_cm, _decode_persistent_cm,
    ),
    "PWCCountMin": (PWCCountMin, _encode_pwc_cm, _decode_pwc_cm),
    "PersistentAMS": (
        PersistentAMS, _encode_persistent_ams, _decode_persistent_ams,
    ),
    "PWCAMS": (PWCAMS, _encode_pwc_ams, _decode_pwc_ams),
    "PersistentHeavyHitters": (
        PersistentHeavyHitters, _encode_heavy_hitters, _decode_heavy_hitters,
    ),
    "HistoricalCountMin": (
        HistoricalCountMin, _encode_historical_cm, _decode_historical_cm,
    ),
    "HistoricalAMS": (
        HistoricalAMS, _encode_historical_ams, _decode_historical_ams,
    ),
}


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #


def to_dict(sketch: Any) -> dict:
    """Encode a sketch as a self-describing document.

    Drains any worker pool first: encoders read (and finalize) master
    state, so the archive must include every merged update — and the
    encoders themselves mutate trackers, which forked workers could
    never observe.
    """
    detach = getattr(sketch, "detach_workers", None)
    if callable(detach):
        detach()
    for name, (cls, encode, _decode) in _CODECS.items():
        # Exact type match: PWCCountMin subclasses PersistentCountMin but
        # needs its own codec.
        if type(sketch) is cls:
            return {
                "format": FORMAT,
                "version": VERSION,
                "type": name,
                "state": encode(sketch),
            }
    raise SerializationError(
        f"no serializer registered for {type(sketch).__name__}"
    )


def from_dict(document: dict) -> Any:
    """Decode a sketch from a document produced by :func:`to_dict`."""
    if document.get("format") != FORMAT:
        raise SerializationError("not a repro-sketch document")
    if document.get("version") != VERSION:
        raise SerializationError(
            f"unsupported document version {document.get('version')!r}"
        )
    name = document.get("type")
    if name not in _CODECS:
        raise SerializationError(f"unknown sketch type {name!r}")
    _cls, _encode, decode = _CODECS[name]
    return decode(document["state"])


def save(sketch: Any, path: str | Path) -> Path:
    """Serialize ``sketch`` to ``path`` (gzip when it ends with ``.gz``).

    The write is atomic (tmp + fsync + rename via :mod:`repro.io.atomic`):
    a crash mid-save leaves the previous archive intact, never a torn one.
    """
    path = Path(path)
    payload = json.dumps(to_dict(sketch), separators=(",", ":"))
    if path.suffix == ".gz":
        data = gzip.compress(payload.encode())
    else:
        data = payload.encode()
    return atomic_write_bytes(path, data)


def load(path: str | Path) -> Any:
    """Deserialize a sketch previously written by :func:`save`.

    Truncated or corrupt archives (partial gzip stream, cut-off JSON,
    bad UTF-8) raise :class:`SerializationError` naming the offending
    path, so callers — notably checkpoint recovery — can distinguish "this
    snapshot is damaged, fall back" from a programming error.
    """
    path = Path(path)
    try:
        if path.suffix == ".gz":
            payload = gzip.decompress(path.read_bytes()).decode()
        else:
            payload = path.read_text(encoding="utf-8")
        document = json.loads(payload)
    except (gzip.BadGzipFile, EOFError, zlib.error) as exc:
        raise SerializationError(f"{path}: truncated or corrupt gzip archive: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise SerializationError(f"{path}: archive is not valid UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: archive is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError(f"{path}: archive is not a sketch document")
    return from_dict(document)
