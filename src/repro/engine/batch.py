"""Columnwise bulk ingestion for materialized streams.

Strategy: hash only the *unique* items (streams revisit elements
constantly), expand to per-update columns with numpy indexing, then
process each counter's updates as one contiguous, time-ordered group —
a stable sort by column turns the row's update sequence into per-counter
runs whose counter values are just base + cumulative counts.  Feeding a
tracker its whole run in one tight loop avoids the per-update dict
lookups, attribute chases and clock checks of the generic path.

Deterministic schemes (PLA / PWC trackers) produce **bit-identical**
results to sequential ingest: each counter sees exactly the same
(time, value) sequence.  The sampling-based persistent AMS draws its
Bernoulli samples from a numpy generator instead of the sketch's
``random.Random``, so batch-built sketches are statistically — not
bitwise — equivalent to sequentially built ones (and deterministic given
the sketch's sampling seed).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import contracts
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.core.pwc_ams import PWCAMS
from repro.persistence.history_list import SampledHistoryList
from repro.persistence.tracker import PWCTracker
from repro.streams.model import Stream


def batch_hash_columns(family, items: np.ndarray) -> np.ndarray:
    """Per-row bucket columns for every update, shape ``(n, depth)``.

    Hashes each distinct item once (through the family's memo cache) and
    expands with vectorized indexing.
    """
    unique, inverse = np.unique(items, return_inverse=True)
    table = np.empty((len(unique), family.depth), dtype=np.int64)
    for idx, item in enumerate(unique):
        table[idx] = family.buckets(int(item))
    return table[inverse]


def _batch_signs(family, items: np.ndarray) -> np.ndarray:
    unique, inverse = np.unique(items, return_inverse=True)
    table = np.empty((len(unique), family.depth), dtype=np.int64)
    for idx, item in enumerate(unique):
        table[idx] = family.signs(int(item))
    return table[inverse]


def _validate(sketch, stream: Stream) -> None:
    if len(stream) == 0:
        return
    if int(stream.times[0]) <= sketch.now:
        raise ValueError(
            f"stream starts at {int(stream.times[0])} but the sketch "
            f"clock is already at {sketch.now}"
        )
    # The sequential path enforces strictly increasing timestamps via the
    # per-update clock check; the batch paths skip those checks (and the
    # sampled-AMS path records via force_sample, bypassing the
    # @monotone_timestamps contract entirely), so a mis-ordered feed must
    # be rejected here, before any per-group copy loop runs.
    times = np.asarray(stream.times)
    if len(times) > 1:
        gaps = np.diff(times)
        if gaps.min() <= 0:
            bad = int(np.argmax(gaps <= 0))
            raise contracts.ContractViolation(
                f"batch stream timestamps must be strictly increasing: "
                f"times[{bad + 1}]={int(times[bad + 1])} <= "
                f"times[{bad}]={int(times[bad])}"
            )


def batch_ingest(sketch, stream: Stream) -> None:
    """Bulk-ingest ``stream`` into ``sketch`` (dispatches on type).

    Supported: :class:`PersistentCountMin` (and its PWC subclass),
    :class:`PWCAMS`, :class:`PersistentAMS`.  Other sketches fall back
    to the generic sequential path.
    """
    if isinstance(sketch, PersistentCountMin):
        _ingest_tracked_cm(sketch, stream)
    elif isinstance(sketch, PWCAMS):
        _ingest_pwc_ams(sketch, stream)
    elif isinstance(sketch, PersistentAMS):
        _ingest_sample_ams(sketch, stream)
    else:
        sketch.ingest(stream)


def _group_slices(sorted_keys: np.ndarray) -> list[tuple[int, int]]:
    """(start, end) index pairs of equal-key runs in a sorted array."""
    if len(sorted_keys) == 0:
        return []
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_keys)]))
    return list(zip(starts.tolist(), ends.tolist()))


def _feed_pwc_list(
    tracker: PWCTracker, times: list[int], values: list[float]
) -> None:
    """Feed one counter group into a PWC tracker, record-by-record.

    Walks the run emitting only where the drift rule fires — identical
    records to the per-point path, without the per-point method calls.
    """
    pwc = tracker._pwc
    function = pwc.function
    delta = pwc.delta
    last = pwc._last_recorded
    for idx, value in enumerate(values):
        if value - last > delta or last - value > delta:
            last = value
            function.append(times[idx], value)
    pwc._last_recorded = last


def _row_values(
    counters: list[int],
    sorted_cols: np.ndarray,
    sorted_counts: np.ndarray,
    slices: list[tuple[int, int]],
) -> np.ndarray:
    """Counter values after each update of a sorted row, all groups at once.

    Within each group the value sequence is ``base + cumsum(counts)``;
    computed with one global cumsum and per-group offset subtraction so
    no per-group numpy calls are needed.
    """
    csum = np.cumsum(sorted_counts)
    prev = np.concatenate(([0], csum[:-1]))
    starts = np.array([lo for lo, _hi in slices], dtype=np.int64)
    sizes = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
    bases = np.array(
        [counters[int(sorted_cols[lo])] for lo, _hi in slices],
        dtype=np.int64,
    )
    return csum + np.repeat(bases - prev[starts], sizes)


def _ingest_row_groups(
    sketch,
    row: int,
    columns: np.ndarray,
    times: np.ndarray,
    counts: np.ndarray,
    make_tracker,
) -> None:
    row_cols = columns[:, row]
    order = np.argsort(row_cols, kind="stable")
    sorted_cols = row_cols[order]
    slices = _group_slices(sorted_cols)
    counters = sketch._counters[row]
    trackers = sketch._trackers[row]
    values = _row_values(counters, sorted_cols, counts[order], slices)
    values_list = values.tolist()
    times_list = times[order].tolist()
    for lo, hi in slices:
        col = int(sorted_cols[lo])
        tracker = trackers.get(col)
        if tracker is None:
            tracker = make_tracker()
            trackers[col] = tracker
        if isinstance(tracker, PWCTracker):
            _feed_pwc_list(tracker, times_list[lo:hi], values_list[lo:hi])
        else:
            feed = tracker.feed
            for idx in range(lo, hi):
                feed(times_list[idx], values_list[idx])
        counters[col] = int(values_list[hi - 1])


def _ingest_tracked_cm(sketch: PersistentCountMin, stream: Stream) -> None:
    _validate(sketch, stream)
    n = len(stream)
    if n == 0:
        return
    items = np.asarray(stream.items)
    times = np.asarray(stream.times)
    counts = np.asarray(stream.counts)
    columns = batch_hash_columns(sketch.hashes, items)
    for row in range(sketch.depth):
        _ingest_row_groups(
            sketch,
            row,
            columns,
            times,
            counts,
            lambda: sketch._tracker_factory(sketch.delta, 0.0),
        )
    sketch.total += int(counts.sum())
    sketch._clock = int(times[-1])


def _ingest_pwc_ams(sketch: PWCAMS, stream: Stream) -> None:
    _validate(sketch, stream)
    n = len(stream)
    if n == 0:
        return
    items = np.asarray(stream.items)
    times = np.asarray(stream.times)
    counts = np.asarray(stream.counts)
    columns = batch_hash_columns(sketch.buckets, items)
    signs = _batch_signs(sketch.signs, items)
    for row in range(sketch.depth):
        _ingest_row_groups(
            sketch,
            row,
            columns,
            times,
            signs[:, row] * counts,
            lambda: PWCTracker(delta=sketch.delta, initial_value=0.0),
        )
    sketch.total += int(counts.sum())
    sketch._clock = int(times[-1])


def _ingest_sample_ams(sketch: PersistentAMS, stream: Stream) -> None:
    _validate(sketch, stream)
    n = len(stream)
    if n == 0:
        return
    items = np.asarray(stream.items)
    times = np.asarray(stream.times)
    counts = np.asarray(stream.counts)
    magnitudes = np.abs(counts)
    active = magnitudes > 0
    columns = batch_hash_columns(sketch.buckets, items)
    signs = _batch_signs(sketch.signs, items)
    # Deterministic given the sketch's own sampling RNG (which is
    # advanced so that successive batches differ, as sequential offers
    # would).
    rng = np.random.default_rng(sketch._rng.getrandbits(63))
    probability = sketch.probability

    for row in range(sketch.depth):
        effective = signs[:, row] * counts
        b_flags = (effective > 0).astype(np.int64)
        # Group by (column, component): component streams are
        # independent monotone counters.  Zero-count updates sort to the
        # front under key -1 and are skipped.
        keys = np.where(active, columns[:, row] * 2 + b_flags, -1)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_mags = magnitudes[order]
        sorted_times = times[order]
        components = sketch._components[row]

        slices = [
            (lo, hi)
            for lo, hi in _group_slices(sorted_keys)
            if sorted_keys[lo] >= 0
        ]
        if not slices:
            continue
        # Component values after every update, one global cumsum.
        csum = np.cumsum(sorted_mags)
        prev = np.concatenate(([0], csum[:-1]))
        starts = np.array([lo for lo, _hi in slices], dtype=np.int64)
        sizes = np.array([hi - lo for lo, hi in slices], dtype=np.int64)
        bases = np.array(
            [
                components[int(sorted_keys[lo]) // 2][
                    int(sorted_keys[lo]) % 2
                ]
                for lo, _hi in slices
            ],
            dtype=np.int64,
        )
        values = csum.copy()
        first = slices[0][0]
        values[first:] += np.repeat(bases - prev[starts], sizes)

        live = sorted_keys >= 0
        for copy in range(sketch.copies):
            # One Bernoulli draw per offer, then touch only samples.
            sampled = np.flatnonzero(live & (rng.random(n) < probability))
            for pos in sampled.tolist():
                key = int(sorted_keys[pos])
                col, b = key // 2, key % 2
                lists = sketch._histories[row][b][copy]
                history = lists.get(col)
                if history is None:
                    history = SampledHistoryList(
                        probability=probability, rng=sketch._rng
                    )
                    lists[col] = history
                history.force_sample(
                    int(sorted_times[pos]), int(values[pos])
                )
        for lo, hi in slices:
            key = int(sorted_keys[lo])
            components[key // 2][key % 2] = int(values[hi - 1])

    sketch.total += int(counts.sum())
    sketch._clock = int(times[-1])
