"""Columnwise bulk ingestion for materialized streams.

Since the ingestion path became columnar end to end (every
:class:`~repro.core.base.PersistentSketch` carries a first-class
:meth:`~repro.core.base.PersistentSketch.ingest_batch` plan),
:func:`batch_ingest` is a thin adapter that hands a
:class:`~repro.streams.model.Stream`'s columns to the sketch.  The batch
path is **bit-identical** to sequential ingest for every sketch type —
including the sampling-based persistent AMS, whose Bernoulli draws are
pre-drawn from the sketch's own ``random.Random`` stream in scalar order
(see :func:`repro.persistence.sampling.bulk_uniforms`).

The planner itself — stable sort by column, per-counter runs of
``base + cumsum(counts)``, tracker feeds per run — lives in
:mod:`repro.core.columnar` and the sketches' ``_ingest_batch`` methods.
"""

from __future__ import annotations

import numpy as np

from repro.streams.model import Stream


def batch_hash_columns(family, items: np.ndarray) -> np.ndarray:
    """Per-row bucket columns for every update, shape ``(n, depth)``.

    A transposed view over the family's vectorized
    ``buckets_many(items) -> (depth, n)`` evaluation.
    """
    return family.buckets_many(np.asarray(items)).T


def _batch_signs(family, items: np.ndarray) -> np.ndarray:
    """Per-row signs for every update, shape ``(n, depth)``."""
    return family.signs_many(np.asarray(items)).T


def batch_ingest(sketch, stream: Stream) -> None:
    """Bulk-ingest ``stream`` into ``sketch``.

    Equivalent to ``sketch.ingest(stream)``; kept as the engine-level
    entry point.  Validation (clock conflicts, strictly increasing
    timestamps) happens in :meth:`~repro.core.base.PersistentSketch.ingest_batch`
    before any state is touched.
    """
    sketch.ingest_batch(stream.times, stream.items, stream.counts)
