"""WAL-tail replay into a :class:`~repro.store.SketchStore`.

Recovery correctness demands *sequential* application: the sampled AMS
sketch draws from its serialized RNG state in offer order, so replaying
the WAL tail record-by-record reproduces the exact random choices an
uninterrupted run would have made (bit-identical recovery).  The
vectorized batch engine deliberately is not used here — its AMS path is
only distribution-equivalent, which would break the recovery twin test.

What this module does optimize is dispatch: WAL tails are bursty (long
runs of records for one stream), so records are grouped into contiguous
same-stream runs and each run resolves the stream's sketch set once,
instead of one dict lookup per record through the store facade.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Iterable

from repro.store.store import SketchStore


def replay_records(
    store: SketchStore, records: Iterable[dict[str, Any]]
) -> int:
    """Apply WAL wire records to ``store`` in order; returns the count.

    Records are dicts with ``stream``, ``item``, ``count`` and a
    *resolved* ``time`` (the runtime resolves auto-ticks before the WAL
    append, so replay never re-derives timestamps).  Timestamp
    monotonicity is still enforced by the sketches themselves — a WAL
    that violates it is corrupt and the error should surface.
    """
    applied = 0
    for name, run in groupby(records, key=lambda record: record["stream"]):
        state = store._state(name)
        point_sketch = state.point_sketch
        hh_sketch = state.hh_sketch
        join_sketch = state.join_sketch
        for record in run:
            item = int(record["item"])
            count = int(record["count"])
            time = int(record["time"])
            point_sketch.update(item, count, time)
            if hh_sketch is not None:
                hh_sketch.update(item, count, time)
            if join_sketch is not None:
                join_sketch.update(item, count, time)
            applied += 1
    return applied
