"""WAL-tail replay into a :class:`~repro.store.SketchStore`.

Recovery must reproduce the exact state an uninterrupted run would
have: the sampled AMS sketch draws from its serialized RNG state in
offer order, so replay order matters bit-for-bit.  Since the columnar
batch planners became bit-identical to scalar ingestion for every
sketch type — including the sampled AMS, whose batch path pre-draws its
Bernoulli acceptances from the same seeded generator in scalar order —
replay applies each contiguous same-stream run through
:meth:`~repro.store.store.SketchStore.update_batch` and stays exactly
as deterministic as the record-by-record walk it replaces, at columnar
speed.  WAL tails are bursty (long runs of records for one stream), so
the grouping also amortizes the per-record facade dispatch.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Iterable

import numpy as np

from repro.store.store import SketchStore


def replay_records(
    store: SketchStore, records: Iterable[dict[str, Any]]
) -> int:
    """Apply WAL wire records to ``store`` in order; returns the count.

    Records are dicts with ``stream``, ``item``, ``count`` and a
    *resolved* ``time`` (the runtime resolves auto-ticks before the WAL
    append, so replay never re-derives timestamps).  Timestamp
    monotonicity is still enforced by the sketches' batch validation — a
    WAL that violates it is corrupt and the error should surface.
    """
    applied = 0
    for name, run_iter in groupby(records, key=lambda record: record["stream"]):
        run = list(run_iter)
        times = np.array([record["time"] for record in run], dtype=np.int64)
        items = np.array([record["item"] for record in run], dtype=np.int64)
        counts = np.array([record["count"] for record in run], dtype=np.int64)
        store.update_batch(name, times, items, counts)
        applied += len(run)
    return applied
