"""Vectorized bulk engines: columnwise ingest and frozen query serving.

The per-update path of the persistent sketches is dominated by Python
interpreter overhead: ``d`` hash evaluations, ``d`` counter increments
and ``d`` tracker feeds per update.  For a *materialized* stream all of
that structure is known up front, so it can be computed columnwise with
numpy — all bucket columns for the whole stream at once, then per-counter
time-ordered feed groups — cutting ingest time by roughly an order of
magnitude while producing **bit-identical sketches** for the
deterministic schemes (asserted in ``tests/test_engine.py``).

    from repro.engine import batch_ingest
    sketch = PersistentCountMin(width=2048, depth=5, delta=25)
    batch_ingest(sketch, stream)      # == sketch.ingest(stream), faster

The read side is :mod:`repro.engine.frozen`: ``freeze(sketch)`` compiles
a finalized sketch into an immutable columnar snapshot that answers
``point`` / ``point_many`` / holistic queries bit-equal to the live path
(asserted in ``tests/test_frozen.py``) via vectorized predecessor search.
"""

from __future__ import annotations

from repro.engine.batch import batch_hash_columns, batch_ingest
from repro.engine.frozen import (
    FrozenAMS,
    FrozenCountMin,
    FrozenHeavyHitters,
    FrozenPWCAMS,
    FrozenShardedSketch,
    FrozenStoreView,
    attach_view,
    freeze,
    freeze_store,
    share_view,
)

__all__ = [
    "batch_ingest",
    "batch_hash_columns",
    "freeze",
    "freeze_store",
    "FrozenCountMin",
    "FrozenPWCAMS",
    "FrozenAMS",
    "FrozenHeavyHitters",
    "FrozenShardedSketch",
    "FrozenStoreView",
    "share_view",
    "attach_view",
]
