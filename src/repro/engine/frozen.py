"""Frozen columnar query engine: read-optimized sketch snapshots.

Live persistent sketches answer every historical query with ``O(w)`` or
``O(d)`` independent pure-Python ``bisect`` calls — one per counter
history touched.  The paper's query-time remarks (Sections 3.3/4.2)
motivate *batched* predecessor search; this module is the serving-side
realization of that idea, in the snapshot / read-optimized-view shape of
Rinberg et al.'s concurrent sketches and Hokusai's time-partitioned
sketch serving: ``freeze(sketch)`` compiles a finalized sketch into
immutable columnar numpy state, and the frozen object answers ``point``,
``point_many``, ``self_join_size`` and heavy-hitter queries with a
handful of vectorized ``np.searchsorted`` / gather / ``np.median``
operations instead of per-counter Python loops.

Layout
------
The segment/record arrays of *all* tracked counters of *all* rows of a
sketch are concatenated into parallel arrays (``starts``, ``ends``,
``slopes``, ``values``) with two CSR-style indirections: ``row_offsets``
maps a sketch row to its span of counter *slots*, and ``offsets`` maps a
slot to its span of segments.  Predecessor search across every (query,
row, endpoint) probe of a batch uses rank keys: position ``i`` belonging
to slot ``k`` is keyed as ``k * span + (starts[i] - base)``, which is
globally sorted, so a single ``np.searchsorted`` resolves the entire
batch — ``2 * d * n`` probes — at once.

Equality
--------
Frozen answers are **bit-equal** to the live query path (asserted in
``tests/test_frozen.py``): evaluation replays the exact float operations
of the live readers, and the live self-join paths accumulate in sorted
column order precisely so both paths sum in the same order.

Freezing finalizes the live sketch (flushing open PLA runs — a no-op
for queries, since the emitted segment evaluates identically to the
open-run bisector) and snapshots it *as of* ``sketch.now``; the live
sketch may keep ingesting afterwards without affecting the snapshot.
"""

from __future__ import annotations

import math
from statistics import median
from typing import Sequence

import numpy as np

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.core.pwc_ams import PWCAMS
from repro.engine.batch import _batch_signs, batch_hash_columns
from repro.store.sharded import ShardedPersistentSketch

#: Rank-key overflow guard: fall back to per-query bisects when
#: ``n_slots * span`` would not fit comfortably in int64.
_KEY_LIMIT = 2**62

Window = tuple[float, float]


def _resolve_window(s: float, t: float | None, now: int) -> Window:
    """The window semantics of :meth:`PersistentSketch._resolve_window`."""
    if t is None:
        t = now
    elif t > now:
        raise ValueError(
            f"window end {t} lies beyond the snapshot clock {now}; "
            f"frozen queries cannot extrapolate past freeze time"
        )
    if s < 0:
        s = 0
    if s > t:
        raise ValueError(f"empty window: s={s} > t={t}")
    return s, t


def _window_arrays(
    windows: Window | Sequence[Window] | np.ndarray | None,
    n: int,
    now: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(ss, ts)`` float arrays, one entry per query.

    Vectorized mirror of :func:`_resolve_window`: the same clamp on
    ``s < 0`` and the same raises on ``t > now`` / ``s > t``, applied to
    the whole batch at once.
    """
    if windows is None:
        windows = (0.0, float(now))
    if (
        isinstance(windows, tuple)
        and len(windows) == 2
        and not isinstance(windows[0], tuple)
    ):
        s, t = _resolve_window(windows[0], windows[1], now)
        return np.full(n, float(s)), np.full(n, float(t))
    pairs = np.asarray(windows, dtype=np.float64)
    if pairs.ndim != 2 or pairs.shape[1] != 2 or pairs.shape[0] != n:
        raise ValueError(
            f"expected {n} (s, t) windows, got shape {pairs.shape}; pass "
            f"one window per item or a single (s, t) pair"
        )
    ss = pairs[:, 0].copy()
    ts = pairs[:, 1]
    if (ts > now).any():
        bad = float(ts[ts > now][0])
        raise ValueError(
            f"window end {bad} lies beyond the snapshot clock {now}; "
            f"frozen queries cannot extrapolate past freeze time"
        )
    np.maximum(ss, 0.0, out=ss)
    if (ss > ts).any():
        idx = int(np.argmax(ss > ts))
        raise ValueError(f"empty window: s={ss[idx]} > t={ts[idx]}")
    return ss, ts


class _ColumnTable:
    """Concatenated histories of every tracked counter of a sketch.

    Two flavors share the layout: *segment* tables (PLA/PWC trackers)
    evaluate ``values[i] + slopes[i] * (clamp(t) - starts[i])`` at the
    predecessor position; *history* tables (sampled AMS) evaluate
    ``values[i] + 1/p - 1`` (Equation (1)'s compensated read).

    Slots are counters; ``row_offsets[r] : row_offsets[r + 1]`` is the
    slot span of sketch row ``r``, with ``cols`` sorted within each row.
    """

    __slots__ = (
        "row_offsets",
        "cols",
        "offsets",
        "starts",
        "starts_f",
        "ends_f",
        "slopes",
        "values",
        "initials",
        "compensation",
        "_keys",
        "_base",
        "_span",
        "_col_keys",
        "_col_span",
    )

    def __init__(
        self,
        row_offsets: np.ndarray,
        cols: np.ndarray,
        offsets: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray | None,
        slopes: np.ndarray | None,
        values: np.ndarray,
        initials: np.ndarray,
        compensation: float | None = None,
    ) -> None:
        self.row_offsets = row_offsets
        self.cols = cols
        self.offsets = offsets
        self.starts = starts
        self.starts_f = starts.astype(np.float64)
        self.ends_f = ends.astype(np.float64) if ends is not None else None
        self.slopes = slopes
        self.values = values
        self.initials = initials
        self.compensation = compensation
        # Globally sorted rank keys for one-shot predecessor search.
        self._base = int(starts.min()) if len(starts) else 0
        self._span = (
            (int(starts.max()) - self._base + 2) if len(starts) else 2
        )
        n_slots = len(cols)
        if n_slots and n_slots * self._span < _KEY_LIMIT:
            slot_of_pos = np.repeat(
                np.arange(n_slots, dtype=np.int64), np.diff(offsets)
            )
            self._keys = slot_of_pos * self._span + (starts - self._base)
        else:
            self._keys = None
        # Row-keyed column ids: globally sorted (rows ascend, cols are
        # sorted within each row), so one searchsorted locates every
        # (query, row) probe of a batch at once.
        self._col_span = int(cols.max()) + 1 if n_slots else 1
        row_of_slot = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(row_offsets)
        )
        self._col_keys = row_of_slot * self._col_span + cols

    @property
    def n_rows(self) -> int:
        return len(self.row_offsets) - 1

    def row_cols(self, row: int) -> np.ndarray:
        """Sorted column ids tracked in sketch row ``row``."""
        return self.cols[self.row_offsets[row] : self.row_offsets[row + 1]]

    def row_slots(self, row: int) -> np.ndarray:
        """Global slot indices of sketch row ``row``."""
        return np.arange(
            self.row_offsets[row],
            self.row_offsets[row + 1],
            dtype=np.int64,
        )

    def locate_row(
        self, row: int, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(slots, valid)`` for queried columns of one sketch row."""
        lo = int(self.row_offsets[row])
        hi = int(self.row_offsets[row + 1])
        segment = self.cols[lo:hi]
        pos = np.searchsorted(segment, cols)
        if hi > lo:
            clipped = np.minimum(pos, hi - lo - 1)
            valid = (pos < hi - lo) & (segment[clipped] == cols)
        else:
            clipped = pos
            valid = np.zeros(len(cols), dtype=bool)
        return clipped + lo, valid

    def locate_rows(
        self, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-major ``(slots, valid)`` for an ``(n, d)`` column matrix.

        Output length is ``d * n``: row 0's slots for every query, then
        row 1's, and so on.  The global slot index of a match *is* its
        position among the row-keyed column ids, so a single
        searchsorted resolves all ``d * n`` probes.
        """
        n, d = cols.shape
        total = len(self.cols)
        if total == 0:
            return (
                np.zeros(n * d, dtype=np.int64),
                np.zeros(n * d, dtype=bool),
            )
        qkeys = (
            cols + np.arange(d, dtype=np.int64) * self._col_span
        ).T.ravel()
        pos = np.searchsorted(self._col_keys, qkeys)
        slots = np.minimum(pos, total - 1)
        valid = (pos < total) & (self._col_keys[slots] == qkeys)
        return slots, valid

    def _predecessors(self, slots: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """Global predecessor positions (largest start <= t); -1 if none."""
        lo = self.offsets[slots]
        if self._keys is not None:
            # floor() == int64 truncation here: resolved times are >= 0.
            rel = np.minimum(
                ts.astype(np.int64) - self._base, self._span - 1
            )
            np.maximum(rel, -1, out=rel)
            pos = (
                np.searchsorted(
                    self._keys, slots * self._span + rel, side="right"
                )
                - 1
            )
        else:  # rank keys would overflow: per-query bisects
            hi = self.offsets[slots + 1]
            starts = self.starts
            pos = np.empty(len(slots), dtype=np.int64)
            for i in range(len(slots)):
                pos[i] = (
                    int(lo[i])
                    + np.searchsorted(
                        starts[int(lo[i]) : int(hi[i])], ts[i], side="right"
                    )
                    - 1
                )
        return np.where(pos < lo, -1, pos)

    def eval(
        self, slots: np.ndarray, valid: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        """Counter values at ``ts``; 0.0 for untracked columns."""
        if len(self.cols) == 0 or len(slots) == 0:
            return np.zeros(len(slots), dtype=np.float64)
        pos = self._predecessors(slots, ts)
        found = pos >= 0
        all_found = bool(found.all())
        idx = pos if all_found else np.where(found, pos, 0)
        if self.compensation is None:
            st = self.starts_f[idx]
            tc = np.minimum(np.maximum(ts, st), self.ends_f[idx])
            vals = self.values[idx] + self.slopes[idx] * (tc - st)
        else:
            vals = (self.values[idx] + self.compensation) - 1.0
        if not all_found:
            vals = np.where(found, vals, self.initials[slots])
        if bool(valid.all()):
            return vals
        return np.where(valid, vals, 0.0)

    def window_eval_rows(
        self,
        slots: np.ndarray,
        valid: np.ndarray,
        ss: np.ndarray,
        ts: np.ndarray,
        s_mask: np.ndarray,
    ) -> np.ndarray:
        """``value(t) - (value(s) if s > 0 else 0.0)``, shape ``(d, n)``.

        ``slots``/``valid`` are the row-major output of
        :meth:`locate_rows`; both window endpoints of every (query, row)
        probe go through a single predecessor search.  The per-probe
        float operations match the live reader exactly, so answers stay
        bit-equal.
        """
        n = len(ss)
        d = self.n_rows
        both = self.eval(
            np.concatenate((slots, slots)),
            np.concatenate((valid, valid)),
            np.concatenate((np.tile(ts, d), np.tile(ss, d))),
        )
        high = both[: d * n].reshape(d, n)
        low = np.where(s_mask, both[d * n :].reshape(d, n), 0.0)
        return high - low

    def eval_row_all(self, row: int, t: float) -> np.ndarray:
        """Values of every tracked counter of one row at scalar ``t``."""
        slots = self.row_slots(row)
        ts = np.full(len(slots), float(t))
        return self.eval(slots, np.ones(len(slots), dtype=bool), ts)


def _tracker_table(rows: list[dict]) -> _ColumnTable:
    """Columnar table of PLA/PWC trackers, all sketch rows concatenated."""
    row_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    ordered_cols: list[int] = []
    exports = []
    initials: list[float] = []
    for r, trackers in enumerate(rows):
        ordered = sorted(trackers)
        row_offsets[r + 1] = row_offsets[r] + len(ordered)
        ordered_cols.extend(ordered)
        for col in ordered:
            exports.append(trackers[col].export_arrays())
            initials.append(trackers[col].initial_value)
    offsets = np.zeros(len(exports) + 1, dtype=np.int64)
    for i, (starts, _e, _sl, _v) in enumerate(exports):
        offsets[i + 1] = offsets[i] + len(starts)
    if exports:
        starts = np.concatenate([e[0] for e in exports])
        ends = np.concatenate([e[1] for e in exports])
        slopes = np.concatenate([e[2] for e in exports])
        values = np.concatenate([e[3] for e in exports])
    else:
        starts = np.empty(0, dtype=np.int64)
        ends = np.empty(0, dtype=np.int64)
        slopes = np.empty(0, dtype=np.float64)
        values = np.empty(0, dtype=np.float64)
    return _ColumnTable(
        row_offsets,
        np.array(ordered_cols, dtype=np.int64),
        offsets,
        starts,
        ends,
        slopes,
        values,
        np.array(initials, dtype=np.float64),
    )


def _history_table(rows: list[dict], probability: float) -> _ColumnTable:
    """Columnar table of sampled histories, all sketch rows concatenated."""
    row_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    ordered_cols: list[int] = []
    arrays = []
    initials: list[float] = []
    for r, lists in enumerate(rows):
        ordered = sorted(lists)
        row_offsets[r + 1] = row_offsets[r] + len(ordered)
        ordered_cols.extend(ordered)
        for col in ordered:
            arrays.append(lists[col].as_arrays())
            initials.append(float(lists[col].initial_value))
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    for i, (times, _values) in enumerate(arrays):
        offsets[i + 1] = offsets[i] + len(times)
    if arrays:
        starts = np.concatenate([a[0] for a in arrays])
        values = np.concatenate([a[1] for a in arrays])
    else:
        starts = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    return _ColumnTable(
        row_offsets,
        np.array(ordered_cols, dtype=np.int64),
        offsets,
        starts,
        None,
        None,
        values,
        np.array(initials, dtype=np.float64),
        compensation=1.0 / probability,
    )


# --------------------------------------------------------------------- #
# Frozen sketches
# --------------------------------------------------------------------- #


def _expand_unique(
    d: int, u: int, inv: np.ndarray
) -> np.ndarray:
    """Gather indices mapping row-major unique-item probes to the batch.

    Skewed workloads repeat items heavily; hashing and slot location run
    once per distinct item and fan back out with this index.
    """
    return (
        np.arange(d, dtype=np.intp)[:, None] * u + inv[None, :]
    ).ravel()


class FrozenCountMin:
    """Frozen :class:`PersistentCountMin` / :class:`PWCCountMin` snapshot."""

    def __init__(self, sketch: PersistentCountMin) -> None:
        sketch.finalize()
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.name = f"frozen({sketch.name})"
        self.hashes = sketch.hashes
        self._table = _tracker_table(sketch._trackers)

    # -- point ---------------------------------------------------------- #

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized ``point`` over many (item, window) probes.

        ``windows`` is a single ``(s, t)`` pair applied to every item, a
        sequence (or ``(n, 2)`` array) of per-item pairs, or ``None``
        for ``(0, now]``.  Bit-equal to calling :meth:`point` per probe.
        """
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.hashes, unique)
        slots, valid = self._table.locate_rows(cols)
        gather = _expand_unique(self.depth, len(unique), inverse)
        estimates = self._table.window_eval_rows(
            slots[gather], valid[gather], ss, ts, ss > 0
        )
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    # -- self-join ------------------------------------------------------ #

    def _window_diffs(self, row: int, s: float, t: float) -> np.ndarray:
        high = self._table.eval_row_all(row, t)
        if s > 0:
            high = high - self._table.eval_row_all(row, s)
        return high

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Count-Min style self-join estimate (min over rows)."""
        s, t = _resolve_window(s, t, self.now)
        best = None
        for row in range(self.depth):
            total = 0.0
            for diff in self._window_diffs(row, s, t).tolist():
                total += diff * diff
            if best is None or total < best:
                best = total
        return best or 0.0


class FrozenPWCAMS:
    """Frozen :class:`PWCAMS` snapshot (signed trackers)."""

    def __init__(self, sketch: PWCAMS) -> None:
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.name = f"frozen({sketch.name})"
        self.buckets = sketch.buckets
        self.signs = sketch.signs
        self._table = _tracker_table(sketch._trackers)

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized signed ``point`` (median of sign * window counter)."""
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.buckets, unique)
        sgns = _batch_signs(self.signs, unique)[inverse]
        slots, valid = self._table.locate_rows(cols)
        gather = _expand_unique(self.depth, len(unique), inverse)
        estimates = sgns.T * self._table.window_eval_rows(
            slots[gather], valid[gather], ss, ts, ss > 0
        )
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Biased self-join estimate (median over rows), as live."""
        s, t = _resolve_window(s, t, self.now)
        row_estimates = []
        for row in range(self.depth):
            diffs = self._table.eval_row_all(row, t)
            if s > 0:
                diffs = diffs - self._table.eval_row_all(row, s)
            total = 0.0
            for diff in diffs.tolist():
                total += diff * diff
            row_estimates.append(total)
        return median(row_estimates)


class FrozenAMS:
    """Frozen :class:`PersistentAMS` snapshot (sampled history lists)."""

    def __init__(self, sketch: PersistentAMS) -> None:
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.copies = sketch.copies
        self.name = f"frozen(Sample)"
        self.buckets = sketch.buckets
        self.signs = sketch.signs
        # _tables[b][copy]: all sketch rows of one (sign, copy) component.
        self._tables = [
            [
                _history_table(
                    [
                        sketch._histories[row][b][copy]
                        for row in range(sketch.depth)
                    ],
                    sketch.probability,
                )
                for copy in range(sketch.copies)
            ]
            for b in range(2)
        ]

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized ``point`` (Theorem 4.1 estimator) over many probes."""
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.buckets, unique)
        sgns = _batch_signs(self.signs, unique)[inverse]
        d = self.depth
        gather = _expand_unique(d, len(unique), inverse)
        both_t = np.concatenate((np.tile(ts, d), np.tile(ss, d)))
        # Unbiased counter estimate C(t) = pos(t) - neg(t), both window
        # endpoints of every (query, row) probe in one batch per table.
        components = []
        for table in (self._tables[1][0], self._tables[0][0]):
            slots, valid = table.locate_rows(cols)
            slots = slots[gather]
            valid = valid[gather]
            components.append(
                table.eval(
                    np.concatenate((slots, slots)),
                    np.concatenate((valid, valid)),
                    both_t,
                )
            )
        vals = components[0] - components[1]
        # Live counter_estimate returns 0.0 outright for t <= 0.
        vals = np.where(both_t <= 0, 0.0, vals)
        high = vals[: d * n].reshape(d, n)
        low = np.where(ss > 0, vals[d * n :].reshape(d, n), 0.0)
        estimates = sgns.T * (high - low)
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    def _counters_row(
        self, row: int, copy: int, cols: np.ndarray, t: float
    ) -> np.ndarray:
        """Unbiased counter estimates ``C[row][col](t)`` (vectorized)."""
        if t <= 0:  # live counter_estimate returns 0.0 outright
            return np.zeros(len(cols), dtype=np.float64)
        out = None
        ts = np.full(len(cols), float(t))
        for sign, b in ((1.0, 1), (-1.0, 0)):
            table = self._tables[b][copy]
            slots, valid = table.locate_row(row, cols)
            vals = table.eval(slots, valid, ts)
            out = vals if out is None else out - vals
        return out if out is not None else np.zeros(len(cols))

    def _touched_columns(self, row: int) -> np.ndarray:
        pos = self._tables[1][0].row_cols(row)
        neg = self._tables[0][0].row_cols(row)
        return np.union1d(pos, neg)

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Estimate ``||f_{s,t}||_2^2`` (Theorem 4.2 with f = g)."""
        if self.copies < 2:
            raise ValueError(
                "self-join estimation needs independent_copies >= 2"
            )
        s, t = _resolve_window(s, t, self.now)
        row_estimates = []
        for row in range(self.depth):
            cols = self._touched_columns(row)
            products = None
            for copy in (0, 1):
                high = self._counters_row(row, copy, cols, t)
                window = (
                    high - self._counters_row(row, copy, cols, s)
                    if s > 0
                    else high
                )
                products = window if products is None else products * window
            total = 0.0
            if products is not None:
                for value in products.tolist():
                    total += value
            row_estimates.append(total)
        return median(row_estimates)


class FrozenHeavyHitters:
    """Frozen :class:`PersistentHeavyHitters` (dyadic stack + mass)."""

    def __init__(self, structure: PersistentHeavyHitters) -> None:
        structure.finalize()
        self.universe = structure.universe
        self.levels = structure.levels
        self.now = structure.now
        self.name = f"frozen({structure.name})"
        self._sketches = [
            FrozenCountMin(sketch) for sketch in structure._sketches
        ]
        self._mass = _tracker_table([{0: structure._mass}])

    def _mass_at(self, t: float) -> float:
        return float(self._mass.eval_row_all(0, t)[0])

    def window_mass(self, s: float = 0, t: float | None = None) -> float:
        """Estimate of ``||f_{s,t}||_1`` from the frozen mass tracker."""
        s, t = _resolve_window(s, t, self.now)
        high = self._mass_at(t)
        low = self._mass_at(s) if s > 0 else 0.0
        return max(high - low, 0.0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Point estimate from the finest (leaf) frozen level."""
        s, t = _resolve_window(s, t, self.now)
        return self._sketches[0].point(item, s, t)

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized point estimates from the finest frozen level."""
        return self._sketches[0].point_many(items, windows)

    def heavy_hitters(
        self,
        phi: float,
        s: float = 0,
        t: float | None = None,
        max_candidates: int | None = None,
    ) -> dict[int, float]:
        """Dyadic heavy-hitter descent with batched per-level probes.

        Same traversal as the live structure (Theorem 3.2), but each
        level's candidate children are estimated in one ``point_many``
        call instead of ``O(1/phi)`` sequential point queries.
        """
        if not 0 < phi < 1:
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        s, t = _resolve_window(s, t, self.now)
        threshold = phi * self.window_mass(s, t)
        cap = max_candidates or max(16, math.ceil(4.0 / phi))

        candidates = [0]
        for level in range(self.levels, 0, -1):
            sketch = self._sketches[level - 1]
            children = [
                child
                for parent in candidates
                for child in (2 * parent, 2 * parent + 1)
                if (child << (level - 1)) < self.universe
            ]
            if not children:
                return {}
            estimates = sketch.point_many(children, (s, t))
            scored = [
                (float(estimate), child)
                for estimate, child in zip(estimates, children)
                if estimate >= threshold
            ]
            if len(scored) > cap:
                scored.sort(reverse=True)
                scored = scored[:cap]
            candidates = [child for _, child in scored]
            if not candidates:
                return {}
        finals = self._sketches[0].point_many(candidates, (s, t))
        return {
            item: float(estimate)
            for item, estimate in zip(candidates, finals)
        }


class FrozenShardedSketch:
    """Frozen :class:`ShardedPersistentSketch`: per-shard frozen snapshots."""

    def __init__(self, store: ShardedPersistentSketch) -> None:
        self.shard_length = store.shard_length
        self.now = store.now
        self.name = "frozen(sharded)"
        self._dropped_through = store._dropped_through
        self._shards = {
            shard_id: freeze(shard)
            for shard_id, shard in sorted(store._shards.items())
        }

    def _shard_id(self, time: float) -> int:
        return (int(time) - 1) // self.shard_length

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized sharded ``point``: per-shard batches, summed.

        Per-shard contributions accumulate in ascending shard order —
        the same order as the live path's ``range(first, last + 1)``
        loop — so totals stay bit-equal.
        """
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        firsts = np.empty(n, dtype=np.int64)
        lasts = np.empty(n, dtype=np.int64)
        for i in range(n):
            firsts[i] = self._shard_id(ss[i] + 1)
            lasts[i] = self._shard_id(ts[i]) if ts[i] > 0 else firsts[i] - 1
            if firsts[i] <= self._dropped_through and ss[i] < ts[i]:
                raise ValueError(
                    "window reaches into expired shards; narrow s past "
                    "the retention boundary"
                )
        totals = np.zeros(n, dtype=np.float64)
        for shard_id, shard in self._shards.items():
            start = shard_id * self.shard_length
            end = start + self.shard_length
            local_s = np.maximum(ss, float(start))
            local_t = np.minimum(np.minimum(ts, float(end)), float(shard.now))
            active = (
                (firsts <= shard_id)
                & (lasts >= shard_id)
                & (local_s < local_t)
            )
            if not active.any():
                continue
            idx = np.flatnonzero(active)
            totals[idx] += shard.point_many(
                items[idx],
                np.column_stack((local_s[idx], local_t[idx])),
            )
        return totals

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    @property
    def shard_count(self) -> int:
        return len(self._shards)


# --------------------------------------------------------------------- #
# Compiler entry point
# --------------------------------------------------------------------- #


def freeze(
    sketch: PersistentCountMin
    | PWCAMS
    | PersistentAMS
    | PersistentHeavyHitters
    | ShardedPersistentSketch,
) -> (
    FrozenCountMin
    | FrozenPWCAMS
    | FrozenAMS
    | FrozenHeavyHitters
    | FrozenShardedSketch
):
    """Compile a live persistent sketch into a frozen columnar snapshot.

    Finalizes the sketch (flushing open PLA runs) and snapshots its
    histories as of ``sketch.now``.  The returned object answers
    ``point`` / ``point_many`` / ``self_join_size`` (and, for the dyadic
    structure, ``heavy_hitters`` / ``window_mass``) with answers
    bit-equal to the live query path at a fraction of the cost.
    """
    if isinstance(sketch, PersistentCountMin):
        return FrozenCountMin(sketch)
    if isinstance(sketch, PWCAMS):
        return FrozenPWCAMS(sketch)
    if isinstance(sketch, PersistentAMS):
        return FrozenAMS(sketch)
    if isinstance(sketch, PersistentHeavyHitters):
        return FrozenHeavyHitters(sketch)
    if isinstance(sketch, ShardedPersistentSketch):
        return FrozenShardedSketch(sketch)
    raise TypeError(
        f"freeze() does not support {type(sketch).__name__}; supported: "
        f"PersistentCountMin, PWCCountMin, PWCAMS, PersistentAMS, "
        f"PersistentHeavyHitters, ShardedPersistentSketch"
    )
