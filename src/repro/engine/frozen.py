"""Frozen columnar query engine: read-optimized sketch snapshots.

Live persistent sketches answer every historical query with ``O(w)`` or
``O(d)`` independent pure-Python ``bisect`` calls — one per counter
history touched.  The paper's query-time remarks (Sections 3.3/4.2)
motivate *batched* predecessor search; this module is the serving-side
realization of that idea, in the snapshot / read-optimized-view shape of
Rinberg et al.'s concurrent sketches and Hokusai's time-partitioned
sketch serving: ``freeze(sketch)`` compiles a finalized sketch into
immutable columnar numpy state, and the frozen object answers ``point``,
``point_many``, ``self_join_size`` and heavy-hitter queries with a
handful of vectorized ``np.searchsorted`` / gather / ``np.median``
operations instead of per-counter Python loops.

Layout
------
The segment/record arrays of *all* tracked counters of *all* rows of a
sketch are concatenated into parallel arrays (``starts``, ``ends``,
``slopes``, ``values``) with two CSR-style indirections: ``row_offsets``
maps a sketch row to its span of counter *slots*, and ``offsets`` maps a
slot to its span of segments.  Predecessor search across every (query,
row, endpoint) probe of a batch uses rank keys: position ``i`` belonging
to slot ``k`` is keyed as ``k * span + (starts[i] - base)``, which is
globally sorted, so a single ``np.searchsorted`` resolves the entire
batch — ``2 * d * n`` probes — at once.

Equality
--------
Frozen answers are **bit-equal** to the live query path (asserted in
``tests/test_frozen.py``): evaluation replays the exact float operations
of the live readers, and the live self-join paths accumulate in sorted
column order precisely so both paths sum in the same order.

Freezing finalizes the live sketch (flushing open PLA runs — a no-op
for queries, since the emitted segment evaluates identically to the
open-run bisector) and snapshots it *as of* ``sketch.now``; the live
sketch may keep ingesting afterwards without affecting the snapshot.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from statistics import median
from typing import Sequence

import numpy as np

from repro.core.heavy_hitters import PersistentHeavyHitters
from repro.core.persistent_ams import PersistentAMS
from repro.core.persistent_countmin import PersistentCountMin
from repro.core.pwc_ams import PWCAMS
from repro import shm
from repro.engine.batch import _batch_signs, batch_hash_columns
from repro.parallel.pool import fork_available, parallel_map
from repro.store.sharded import ShardedPersistentSketch

#: Rank-key overflow guard: fall back to per-query bisects when
#: ``n_slots * span`` would not fit comfortably in int64.
_KEY_LIMIT = 2**62

#: Minimum ``point_many`` batch size worth forking for: below this the
#: fork + result-pickle overhead dwarfs the per-query work.
_FANOUT_MIN = 4096

Window = tuple[float, float]


def _fanout_point_many(
    engine, items: np.ndarray, ss: np.ndarray, ts: np.ndarray
) -> np.ndarray:
    """Split a resolved probe batch into per-worker slabs.

    Every probe is evaluated independently by ``_point_many_serial``
    (unique-item dedup is a per-slab optimization that cannot change any
    probe's answer), so concatenating slab results is bit-equal to one
    serial call.
    """
    workers = getattr(engine, "workers", 1)
    n = len(items)
    if workers <= 1 or n < _FANOUT_MIN or not fork_available():
        return engine._point_many_serial(items, ss, ts)
    step = -(-n // workers)
    bounds = [(lo, min(lo + step, n)) for lo in range(0, n, step)]
    parts = parallel_map(
        lambda b: engine._point_many_serial(
            items[b[0] : b[1]], ss[b[0] : b[1]], ts[b[0] : b[1]]
        ),
        bounds,
        workers,
    )
    return np.concatenate(parts)


def _median_floats(vals: list[float]) -> float:
    """``np.median`` of a small 1-D float list, replicated exactly:
    sort, middle element (odd) or mean of the two middles (even)."""
    vals = sorted(vals)
    mid = len(vals) // 2
    if len(vals) % 2:
        return float(vals[mid])
    return float((vals[mid - 1] + vals[mid]) / 2.0)


def _resolve_window(s: float, t: float | None, now: int) -> Window:
    """The window semantics of :meth:`PersistentSketch._resolve_window`."""
    if t is None:
        t = now
    elif t > now:
        raise ValueError(
            f"window end {t} lies beyond the snapshot clock {now}; "
            f"frozen queries cannot extrapolate past freeze time"
        )
    if s < 0:
        s = 0
    if s > t:
        raise ValueError(f"empty window: s={s} > t={t}")
    return s, t


def _window_arrays(
    windows: Window | Sequence[Window] | np.ndarray | None,
    n: int,
    now: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(ss, ts)`` float arrays, one entry per query.

    Vectorized mirror of :func:`_resolve_window`: the same clamp on
    ``s < 0`` and the same raises on ``t > now`` / ``s > t``, applied to
    the whole batch at once.
    """
    if windows is None:
        windows = (0.0, float(now))
    if (
        isinstance(windows, tuple)
        and len(windows) == 2
        and not isinstance(windows[0], tuple)
    ):
        s, t = _resolve_window(windows[0], windows[1], now)
        return np.full(n, float(s)), np.full(n, float(t))
    pairs = np.asarray(windows, dtype=np.float64)
    if pairs.ndim != 2 or pairs.shape[1] != 2 or pairs.shape[0] != n:
        raise ValueError(
            f"expected {n} (s, t) windows, got shape {pairs.shape}; pass "
            f"one window per item or a single (s, t) pair"
        )
    ss = pairs[:, 0].copy()
    ts = pairs[:, 1]
    if (ts > now).any():
        bad = float(ts[ts > now][0])
        raise ValueError(
            f"window end {bad} lies beyond the snapshot clock {now}; "
            f"frozen queries cannot extrapolate past freeze time"
        )
    np.maximum(ss, 0.0, out=ss)
    if (ss > ts).any():
        idx = int(np.argmax(ss > ts))
        raise ValueError(f"empty window: s={ss[idx]} > t={ts[idx]}")
    return ss, ts


class _ColumnTable:
    """Concatenated histories of every tracked counter of a sketch.

    Two flavors share the layout: *segment* tables (PLA/PWC trackers)
    evaluate ``values[i] + slopes[i] * (clamp(t) - starts[i])`` at the
    predecessor position; *history* tables (sampled AMS) evaluate
    ``values[i] + 1/p - 1`` (Equation (1)'s compensated read).

    Slots are counters; ``row_offsets[r] : row_offsets[r + 1]`` is the
    slot span of sketch row ``r``, with ``cols`` sorted within each row.
    """

    __slots__ = (
        "row_offsets",
        "cols",
        "offsets",
        "starts",
        "starts_f",
        "ends_f",
        "slopes",
        "values",
        "initials",
        "compensation",
        "_keys",
        "_base",
        "_span",
        "_col_keys",
        "_col_span",
    )

    def __init__(
        self,
        row_offsets: np.ndarray,
        cols: np.ndarray,
        offsets: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray | None,
        slopes: np.ndarray | None,
        values: np.ndarray,
        initials: np.ndarray,
        compensation: float | None = None,
    ) -> None:
        self.row_offsets = row_offsets
        self.cols = cols
        self.offsets = offsets
        self.starts = starts
        self.starts_f = starts.astype(np.float64)
        self.ends_f = ends.astype(np.float64) if ends is not None else None
        self.slopes = slopes
        self.values = values
        self.initials = initials
        self.compensation = compensation
        # Globally sorted rank keys for one-shot predecessor search.
        self._base = int(starts.min()) if len(starts) else 0
        self._span = (
            (int(starts.max()) - self._base + 2) if len(starts) else 2
        )
        n_slots = len(cols)
        if n_slots and n_slots * self._span < _KEY_LIMIT:
            slot_of_pos = np.repeat(
                np.arange(n_slots, dtype=np.int64), np.diff(offsets)
            )
            self._keys = slot_of_pos * self._span + (starts - self._base)
        else:
            self._keys = None
        # Row-keyed column ids: globally sorted (rows ascend, cols are
        # sorted within each row), so one searchsorted locates every
        # (query, row) probe of a batch at once.
        self._col_span = int(cols.max()) + 1 if n_slots else 1
        row_of_slot = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(row_offsets)
        )
        self._col_keys = row_of_slot * self._col_span + cols

    @property
    def n_rows(self) -> int:
        return len(self.row_offsets) - 1

    def row_cols(self, row: int) -> np.ndarray:
        """Sorted column ids tracked in sketch row ``row``."""
        return self.cols[self.row_offsets[row] : self.row_offsets[row + 1]]

    def row_slots(self, row: int) -> np.ndarray:
        """Global slot indices of sketch row ``row``."""
        return np.arange(
            self.row_offsets[row],
            self.row_offsets[row + 1],
            dtype=np.int64,
        )

    def locate_row(
        self, row: int, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(slots, valid)`` for queried columns of one sketch row."""
        lo = int(self.row_offsets[row])
        hi = int(self.row_offsets[row + 1])
        segment = self.cols[lo:hi]
        pos = np.searchsorted(segment, cols)
        if hi > lo:
            clipped = np.minimum(pos, hi - lo - 1)
            valid = (pos < hi - lo) & (segment[clipped] == cols)
        else:
            clipped = pos
            valid = np.zeros(len(cols), dtype=bool)
        return clipped + lo, valid

    def locate_rows(
        self, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-major ``(slots, valid)`` for an ``(n, d)`` column matrix.

        Output length is ``d * n``: row 0's slots for every query, then
        row 1's, and so on.  The global slot index of a match *is* its
        position among the row-keyed column ids, so a single
        searchsorted resolves all ``d * n`` probes.
        """
        n, d = cols.shape
        total = len(self.cols)
        if total == 0:
            return (
                np.zeros(n * d, dtype=np.int64),
                np.zeros(n * d, dtype=bool),
            )
        qkeys = (
            cols + np.arange(d, dtype=np.int64) * self._col_span
        ).T.ravel()
        pos = np.searchsorted(self._col_keys, qkeys)
        slots = np.minimum(pos, total - 1)
        valid = (pos < total) & (self._col_keys[slots] == qkeys)
        return slots, valid

    def _predecessors(self, slots: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """Global predecessor positions (largest start <= t); -1 if none."""
        lo = self.offsets[slots]
        if self._keys is not None:
            # floor() == int64 truncation here: resolved times are >= 0.
            rel = np.minimum(
                ts.astype(np.int64) - self._base, self._span - 1
            )
            np.maximum(rel, -1, out=rel)
            pos = (
                np.searchsorted(
                    self._keys, slots * self._span + rel, side="right"
                )
                - 1
            )
        else:  # rank keys would overflow: per-query bisects
            hi = self.offsets[slots + 1]
            starts = self.starts
            pos = np.empty(len(slots), dtype=np.int64)
            for i in range(len(slots)):
                pos[i] = (
                    int(lo[i])
                    + np.searchsorted(
                        starts[int(lo[i]) : int(hi[i])], ts[i], side="right"
                    )
                    - 1
                )
        return np.where(pos < lo, -1, pos)

    def eval(
        self, slots: np.ndarray, valid: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        """Counter values at ``ts``; 0.0 for untracked columns."""
        if len(self.cols) == 0 or len(slots) == 0:
            return np.zeros(len(slots), dtype=np.float64)
        pos = self._predecessors(slots, ts)
        found = pos >= 0
        all_found = bool(found.all())
        idx = pos if all_found else np.where(found, pos, 0)
        if self.compensation is None:
            st = self.starts_f[idx]
            tc = np.minimum(np.maximum(ts, st), self.ends_f[idx])
            vals = self.values[idx] + self.slopes[idx] * (tc - st)
        else:
            vals = (self.values[idx] + self.compensation) - 1.0
        if not all_found:
            vals = np.where(found, vals, self.initials[slots])
        if bool(valid.all()):
            return vals
        return np.where(valid, vals, 0.0)

    def window_eval_rows(
        self,
        slots: np.ndarray,
        valid: np.ndarray,
        ss: np.ndarray,
        ts: np.ndarray,
        s_mask: np.ndarray,
    ) -> np.ndarray:
        """``value(t) - (value(s) if s > 0 else 0.0)``, shape ``(d, n)``.

        ``slots``/``valid`` are the row-major output of
        :meth:`locate_rows`; both window endpoints of every (query, row)
        probe go through a single predecessor search.  The per-probe
        float operations match the live reader exactly, so answers stay
        bit-equal.
        """
        n = len(ss)
        d = self.n_rows
        both = self.eval(
            np.concatenate((slots, slots)),
            np.concatenate((valid, valid)),
            np.concatenate((np.tile(ts, d), np.tile(ss, d))),
        )
        high = both[: d * n].reshape(d, n)
        low = np.where(s_mask, both[d * n :].reshape(d, n), 0.0)
        return high - low

    def eval_row_all(self, row: int, t: float) -> np.ndarray:
        """Values of every tracked counter of one row at scalar ``t``."""
        slots = self.row_slots(row)
        ts = np.full(len(slots), float(t))
        return self.eval(slots, np.ones(len(slots), dtype=bool), ts)


class _ScalarPointCache:
    """Plain-Python mirror of a segment table for one-probe ``point``.

    The vectorized path pays ~150µs of numpy dispatch (array wrapping,
    unique-dedup, fancy indexing) per call even for a single probe; a
    scalar probe needs two ``bisect`` calls and a handful of float ops
    per row.  Values replicate :meth:`_ColumnTable.eval` exactly — same
    truncation, clamp and multiply-add on the same floats — so the fast
    path stays bit-equal to ``point_many`` (pinned by tests).

    Built lazily on the first scalar ``point`` call; costs one pass over
    the table (tolist) and is dropped from nothing — frozen tables are
    immutable.
    """

    __slots__ = (
        "slot_of",
        "offsets",
        "starts",
        "starts_f",
        "ends_f",
        "slopes",
        "values",
        "initials",
    )

    def __init__(self, table: _ColumnTable) -> None:
        self.slot_of: list[dict[int, int]] = []
        for row in range(table.n_rows):
            lo = int(table.row_offsets[row])
            cols = table.row_cols(row).tolist()
            self.slot_of.append(
                {col: lo + i for i, col in enumerate(cols)}
            )
        self.offsets = table.offsets.tolist()
        self.starts = table.starts.tolist()
        self.starts_f = table.starts_f.tolist()
        self.ends_f = table.ends_f.tolist()
        self.slopes = table.slopes.tolist()
        self.values = table.values.tolist()
        self.initials = table.initials.tolist()

    def value_at(self, slot: int, t: float) -> float:
        """Counter value at ``t`` — scalar replay of ``eval``."""
        lo = self.offsets[slot]
        # int() truncates like eval's astype(int64); resolved t >= 0.
        pos = bisect_right(self.starts, int(t), lo, self.offsets[slot + 1]) - 1
        if pos < lo:
            return self.initials[slot]
        st = self.starts_f[pos]
        tc = min(max(float(t), st), self.ends_f[pos])
        return self.values[pos] + self.slopes[pos] * (tc - st)

    def window_diffs(
        self, cols: Sequence[int], s: float, t: float
    ) -> list[float]:
        """``value(t) - (value(s) if s > 0 else 0.0)`` per sketch row.

        One fused loop over the rows with :meth:`value_at` inlined —
        the per-row call pair costs more than the bisects on this path,
        which runs once per scalar ``point``.  Untracked columns
        contribute 0.0, exactly like ``eval``'s invalid slots.
        """
        offsets = self.offsets
        starts = self.starts
        starts_f = self.starts_f
        ends_f = self.ends_f
        slopes = self.slopes
        values = self.values
        initials = self.initials
        ti, tf = int(t), float(t)
        si, sf = int(s), float(s)
        take_low = s > 0
        diffs = []
        for row, col in enumerate(cols):
            slot = self.slot_of[row].get(col)
            if slot is None:
                diffs.append(0.0)
                continue
            lo = offsets[slot]
            hi = offsets[slot + 1]
            pos = bisect_right(starts, ti, lo, hi) - 1
            if pos < lo:
                high = initials[slot]
            else:
                st = starts_f[pos]
                tc = min(max(tf, st), ends_f[pos])
                high = values[pos] + slopes[pos] * (tc - st)
            if take_low:
                pos = bisect_right(starts, si, lo, hi) - 1
                if pos < lo:
                    high -= initials[slot]
                else:
                    st = starts_f[pos]
                    tc = min(max(sf, st), ends_f[pos])
                    high -= values[pos] + slopes[pos] * (tc - st)
            diffs.append(high)
        return diffs


def _export_tracker_row(trackers: dict) -> tuple[list[int], list, list[float]]:
    """One sketch row's sorted columns, exported arrays and initials."""
    ordered = sorted(trackers)
    exports = [trackers[col].export_arrays() for col in ordered]
    initials = [trackers[col].initial_value for col in ordered]
    return ordered, exports, initials


def _tracker_table(rows: list[dict], workers: int = 1) -> _ColumnTable:
    """Columnar table of PLA/PWC trackers, all sketch rows concatenated.

    ``workers > 1`` exports the per-row tracker arrays in forked
    children (rows are independent; export is read-only after
    finalize), concatenating on the master in row order.
    """
    per_row = parallel_map(_export_tracker_row, rows, workers)
    row_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    ordered_cols: list[int] = []
    exports = []
    initials: list[float] = []
    for r, (ordered, row_exports, row_initials) in enumerate(per_row):
        row_offsets[r + 1] = row_offsets[r] + len(ordered)
        ordered_cols.extend(ordered)
        exports.extend(row_exports)
        initials.extend(row_initials)
    offsets = np.zeros(len(exports) + 1, dtype=np.int64)
    for i, (starts, _e, _sl, _v) in enumerate(exports):
        offsets[i + 1] = offsets[i] + len(starts)
    if exports:
        starts = np.concatenate([e[0] for e in exports])
        ends = np.concatenate([e[1] for e in exports])
        slopes = np.concatenate([e[2] for e in exports])
        values = np.concatenate([e[3] for e in exports])
    else:
        starts = np.empty(0, dtype=np.int64)
        ends = np.empty(0, dtype=np.int64)
        slopes = np.empty(0, dtype=np.float64)
        values = np.empty(0, dtype=np.float64)
    return _ColumnTable(
        row_offsets,
        np.array(ordered_cols, dtype=np.int64),
        offsets,
        starts,
        ends,
        slopes,
        values,
        np.array(initials, dtype=np.float64),
    )


def _history_table(rows: list[dict], probability: float) -> _ColumnTable:
    """Columnar table of sampled histories, all sketch rows concatenated."""
    row_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    ordered_cols: list[int] = []
    arrays = []
    initials: list[float] = []
    for r, lists in enumerate(rows):
        ordered = sorted(lists)
        row_offsets[r + 1] = row_offsets[r] + len(ordered)
        ordered_cols.extend(ordered)
        for col in ordered:
            arrays.append(lists[col].as_arrays())
            initials.append(float(lists[col].initial_value))
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    for i, (times, _values) in enumerate(arrays):
        offsets[i + 1] = offsets[i] + len(times)
    if arrays:
        starts = np.concatenate([a[0] for a in arrays])
        values = np.concatenate([a[1] for a in arrays])
    else:
        starts = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    return _ColumnTable(
        row_offsets,
        np.array(ordered_cols, dtype=np.int64),
        offsets,
        starts,
        None,
        None,
        values,
        np.array(initials, dtype=np.float64),
        compensation=1.0 / probability,
    )


# --------------------------------------------------------------------- #
# Frozen sketches
# --------------------------------------------------------------------- #


def _expand_unique(
    d: int, u: int, inv: np.ndarray
) -> np.ndarray:
    """Gather indices mapping row-major unique-item probes to the batch.

    Skewed workloads repeat items heavily; hashing and slot location run
    once per distinct item and fan back out with this index.
    """
    return (
        np.arange(d, dtype=np.intp)[:, None] * u + inv[None, :]
    ).ravel()


class FrozenCountMin:
    """Frozen :class:`PersistentCountMin` / :class:`PWCCountMin` snapshot."""

    def __init__(
        self, sketch: PersistentCountMin, workers: int | None = None
    ) -> None:
        sketch.finalize()
        self.workers = (
            workers if workers is not None else getattr(sketch, "workers", 1)
        )
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.name = f"frozen({sketch.name})"
        self.hashes = sketch.hashes
        self._table = _tracker_table(sketch._trackers, workers=self.workers)
        self._scalar_cache: _ScalarPointCache | None = None

    # -- point ---------------------------------------------------------- #

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized ``point`` over many (item, window) probes.

        ``windows`` is a single ``(s, t)`` pair applied to every item, a
        sequence (or ``(n, 2)`` array) of per-item pairs, or ``None``
        for ``(0, now]``.  Bit-equal to calling :meth:`point` per probe.
        Large batches fan out over ``workers`` forked children.
        """
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        return _fanout_point_many(self, items, ss, ts)

    def _point_many_serial(
        self, items: np.ndarray, ss: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.hashes, unique)
        slots, valid = self._table.locate_rows(cols)
        gather = _expand_unique(self.depth, len(unique), inverse)
        estimates = self._table.window_eval_rows(
            slots[gather], valid[gather], ss, ts, ss > 0
        )
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]``: scalar fast path, bit-equal to
        ``point_many([item], (s, t))`` (no array wrapping or dedup)."""
        s, t = _resolve_window(s, t, self.now)
        cache = self._scalar_cache
        if cache is None:
            cache = self._scalar_cache = _ScalarPointCache(self._table)
        return _median_floats(
            cache.window_diffs(self.hashes.buckets(item), s, t)
        )

    # -- self-join ------------------------------------------------------ #

    def _window_diffs(self, row: int, s: float, t: float) -> np.ndarray:
        high = self._table.eval_row_all(row, t)
        if s > 0:
            high = high - self._table.eval_row_all(row, s)
        return high

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Count-Min style self-join estimate (min over rows)."""
        s, t = _resolve_window(s, t, self.now)
        best = None
        for row in range(self.depth):
            total = 0.0
            for diff in self._window_diffs(row, s, t).tolist():
                total += diff * diff
            if best is None or total < best:
                best = total
        return best or 0.0


class FrozenPWCAMS:
    """Frozen :class:`PWCAMS` snapshot (signed trackers)."""

    def __init__(self, sketch: PWCAMS, workers: int | None = None) -> None:
        self.workers = (
            workers if workers is not None else getattr(sketch, "workers", 1)
        )
        sketch.detach_workers()
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.name = f"frozen({sketch.name})"
        self.buckets = sketch.buckets
        self.signs = sketch.signs
        self._table = _tracker_table(sketch._trackers, workers=self.workers)
        self._scalar_cache: _ScalarPointCache | None = None

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized signed ``point`` (median of sign * window counter)."""
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        return _fanout_point_many(self, items, ss, ts)

    def _point_many_serial(
        self, items: np.ndarray, ss: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.buckets, unique)
        sgns = _batch_signs(self.signs, unique)[inverse]
        slots, valid = self._table.locate_rows(cols)
        gather = _expand_unique(self.depth, len(unique), inverse)
        estimates = sgns.T * self._table.window_eval_rows(
            slots[gather], valid[gather], ss, ts, ss > 0
        )
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]``: scalar fast path, bit-equal to
        ``point_many([item], (s, t))``."""
        s, t = _resolve_window(s, t, self.now)
        cache = self._scalar_cache
        if cache is None:
            cache = self._scalar_cache = _ScalarPointCache(self._table)
        diffs = cache.window_diffs(self.buckets.buckets(item), s, t)
        sgns = self.signs.signs(item)
        return _median_floats(
            [sgn * diff for sgn, diff in zip(sgns, diffs)]
        )

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Biased self-join estimate (median over rows), as live."""
        s, t = _resolve_window(s, t, self.now)
        row_estimates = []
        for row in range(self.depth):
            diffs = self._table.eval_row_all(row, t)
            if s > 0:
                diffs = diffs - self._table.eval_row_all(row, s)
            total = 0.0
            for diff in diffs.tolist():
                total += diff * diff
            row_estimates.append(total)
        return median(row_estimates)


class FrozenAMS:
    """Frozen :class:`PersistentAMS` snapshot (sampled history lists)."""

    def __init__(self, sketch: PersistentAMS, workers: int | None = None) -> None:
        self.workers = (
            workers if workers is not None else getattr(sketch, "workers", 1)
        )
        sketch.detach_workers()
        self.width = sketch.width
        self.depth = sketch.depth
        self.now = sketch.now
        self.copies = sketch.copies
        self.name = "frozen(Sample)"
        self.buckets = sketch.buckets
        self.signs = sketch.signs
        # _tables[b][copy]: all sketch rows of one (sign, copy) component.
        # The 2 * copies tables are independent read-only compilations,
        # built in forked children when workers allow.
        pairs = [
            (b, copy) for b in range(2) for copy in range(sketch.copies)
        ]
        tables = parallel_map(
            lambda bc: _history_table(
                [
                    sketch._histories[row][bc[0]][bc[1]]
                    for row in range(sketch.depth)
                ],
                sketch.probability,
            ),
            pairs,
            self.workers,
        )
        copies = sketch.copies
        self._tables = [
            [tables[b * copies + copy] for copy in range(copies)]
            for b in range(2)
        ]

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized ``point`` (Theorem 4.1 estimator) over many probes."""
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        return _fanout_point_many(self, items, ss, ts)

    def _point_many_serial(
        self, items: np.ndarray, ss: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        n = len(items)
        unique, inverse = np.unique(items, return_inverse=True)
        cols = batch_hash_columns(self.buckets, unique)
        sgns = _batch_signs(self.signs, unique)[inverse]
        d = self.depth
        gather = _expand_unique(d, len(unique), inverse)
        both_t = np.concatenate((np.tile(ts, d), np.tile(ss, d)))
        # Unbiased counter estimate C(t) = pos(t) - neg(t), both window
        # endpoints of every (query, row) probe in one batch per table.
        components = []
        for table in (self._tables[1][0], self._tables[0][0]):
            slots, valid = table.locate_rows(cols)
            slots = slots[gather]
            valid = valid[gather]
            components.append(
                table.eval(
                    np.concatenate((slots, slots)),
                    np.concatenate((valid, valid)),
                    both_t,
                )
            )
        vals = components[0] - components[1]
        # Live counter_estimate returns 0.0 outright for t <= 0.
        vals = np.where(both_t <= 0, 0.0, vals)
        high = vals[: d * n].reshape(d, n)
        low = np.where(ss > 0, vals[d * n :].reshape(d, n), 0.0)
        estimates = sgns.T * (high - low)
        return np.median(estimates, axis=0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    def _counters_row(
        self, row: int, copy: int, cols: np.ndarray, t: float
    ) -> np.ndarray:
        """Unbiased counter estimates ``C[row][col](t)`` (vectorized)."""
        if t <= 0:  # live counter_estimate returns 0.0 outright
            return np.zeros(len(cols), dtype=np.float64)
        out = None
        ts = np.full(len(cols), float(t))
        for sign, b in ((1.0, 1), (-1.0, 0)):
            table = self._tables[b][copy]
            slots, valid = table.locate_row(row, cols)
            vals = table.eval(slots, valid, ts)
            out = vals if out is None else out - vals
        return out if out is not None else np.zeros(len(cols))

    def _touched_columns(self, row: int) -> np.ndarray:
        pos = self._tables[1][0].row_cols(row)
        neg = self._tables[0][0].row_cols(row)
        return np.union1d(pos, neg)

    def self_join_size(self, s: float = 0, t: float | None = None) -> float:
        """Estimate ``||f_{s,t}||_2^2`` (Theorem 4.2 with f = g)."""
        if self.copies < 2:
            raise ValueError(
                "self-join estimation needs independent_copies >= 2"
            )
        s, t = _resolve_window(s, t, self.now)
        row_estimates = []
        for row in range(self.depth):
            cols = self._touched_columns(row)
            products = None
            for copy in (0, 1):
                high = self._counters_row(row, copy, cols, t)
                window = (
                    high - self._counters_row(row, copy, cols, s)
                    if s > 0
                    else high
                )
                products = window if products is None else products * window
            total = 0.0
            if products is not None:
                for value in products.tolist():
                    total += value
            row_estimates.append(total)
        return median(row_estimates)


class FrozenHeavyHitters:
    """Frozen :class:`PersistentHeavyHitters` (dyadic stack + mass)."""

    def __init__(
        self, structure: PersistentHeavyHitters, workers: int | None = None
    ) -> None:
        self.workers = (
            workers if workers is not None else getattr(structure, "workers", 1)
        )
        # Master-side finalize first: it drains any worker pool and
        # flushes open PLA runs in every level, so the (idempotent)
        # re-finalize inside each forked child's FrozenCountMin build is
        # a no-op and child-side mutations never matter.
        structure.finalize()
        self.universe = structure.universe
        self.levels = structure.levels
        self.now = structure.now
        self.name = f"frozen({structure.name})"
        self._sketches = parallel_map(  # sketchlint: disable=SL013 — _SHM_PROBE is a memoized capability constant; a child-side re-probe is idempotent and child-local
            FrozenCountMin, structure._sketches, self.workers
        )
        # point/point_many delegate to the leaf level; give it this
        # snapshot's fan-out width (levels themselves are serial).
        self._sketches[0].workers = self.workers
        self._mass = _tracker_table([{0: structure._mass}])

    def _mass_at(self, t: float) -> float:
        return float(self._mass.eval_row_all(0, t)[0])

    def window_mass(self, s: float = 0, t: float | None = None) -> float:
        """Estimate of ``||f_{s,t}||_1`` from the frozen mass tracker."""
        s, t = _resolve_window(s, t, self.now)
        high = self._mass_at(t)
        low = self._mass_at(s) if s > 0 else 0.0
        return max(high - low, 0.0)

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Point estimate from the finest (leaf) frozen level."""
        s, t = _resolve_window(s, t, self.now)
        return self._sketches[0].point(item, s, t)

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized point estimates from the finest frozen level."""
        return self._sketches[0].point_many(items, windows)

    def heavy_hitters(
        self,
        phi: float,
        s: float = 0,
        t: float | None = None,
        max_candidates: int | None = None,
    ) -> dict[int, float]:
        """Dyadic heavy-hitter descent with batched per-level probes.

        Same traversal as the live structure (Theorem 3.2), but each
        level's candidate children are estimated in one ``point_many``
        call instead of ``O(1/phi)`` sequential point queries.
        """
        if not 0 < phi < 1:
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        s, t = _resolve_window(s, t, self.now)
        threshold = phi * self.window_mass(s, t)
        cap = max_candidates or max(16, math.ceil(4.0 / phi))

        candidates = [0]
        for level in range(self.levels, 0, -1):
            sketch = self._sketches[level - 1]
            children = [
                child
                for parent in candidates
                for child in (2 * parent, 2 * parent + 1)
                if (child << (level - 1)) < self.universe
            ]
            if not children:
                return {}
            estimates = sketch.point_many(children, (s, t))
            scored = [
                (float(estimate), child)
                for estimate, child in zip(estimates, children)
                if estimate >= threshold
            ]
            if len(scored) > cap:
                scored.sort(reverse=True)
                scored = scored[:cap]
            candidates = [child for _, child in scored]
            if not candidates:
                return {}
        finals = self._sketches[0].point_many(candidates, (s, t))
        return {
            item: float(estimate)
            for item, estimate in zip(candidates, finals)
        }


class FrozenShardedSketch:
    """Frozen :class:`ShardedPersistentSketch`: per-shard frozen snapshots."""

    def __init__(
        self, store: ShardedPersistentSketch, workers: int | None = None
    ) -> None:
        self.workers = (
            workers if workers is not None else getattr(store, "workers", 1)
        )
        store.detach_workers()
        self.shard_length = store.shard_length
        self.now = store.now
        self.name = "frozen(sharded)"
        self._dropped_through = store._dropped_through
        ordered = sorted(store._shards.items())
        # Finalize on the master before forking: finalize() mutates the
        # live shard (flushing open PLA runs) and forked children's
        # mutations are discarded, so each child must inherit
        # already-final state.  The per-shard freeze itself is read-only
        # after that and parallelizes cleanly.
        for _, shard in ordered:
            finalize = getattr(shard, "finalize", None)
            if finalize is not None:
                finalize()
        frozen = parallel_map(  # sketchlint: disable=SL013 — _SHM_PROBE is a memoized capability constant; a child-side re-probe is idempotent and child-local
            lambda pair: freeze(pair[1]), ordered, self.workers
        )
        self._shards = {
            shard_id: snapshot
            for (shard_id, _), snapshot in zip(ordered, frozen)
        }

    def _shard_id(self, time: float) -> int:
        return (int(time) - 1) // self.shard_length

    def _window_shard_spans(
        self, ss: np.ndarray, ts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """First/last shard ids per window, matching the scalar
        ``_shard_id(s + 1)`` / ``_shard_id(t)`` arithmetic.

        ``astype`` truncation equals ``int()`` for the non-negative
        inputs here, and ``(t - 1) // L`` already yields ``first - 1``
        when ``t`` truncates to 0 (empty window), so one expression
        covers both scalar branches.
        """
        firsts = ((ss + 1).astype(np.int64) - 1) // self.shard_length
        lasts = (ts.astype(np.int64) - 1) // self.shard_length
        return firsts, lasts

    def point_many(
        self,
        items: Sequence[int] | np.ndarray,
        windows: Window | Sequence[Window] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized sharded ``point``: per-shard batches, summed.

        Per-shard contributions accumulate in ascending shard order —
        the same order as the live path's ``range(first, last + 1)``
        loop — so totals stay bit-equal.
        """
        items = np.asarray(items, dtype=np.int64)
        n = len(items)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ss, ts = _window_arrays(windows, n, self.now)
        # Validate retention on the master: a fanned-out slab would
        # surface this as a worker failure instead of the live path's
        # ValueError.
        firsts, _ = self._window_shard_spans(ss, ts)
        if ((firsts <= self._dropped_through) & (ss < ts)).any():
            raise ValueError(
                "window reaches into expired shards; narrow s past "
                "the retention boundary"
            )
        return _fanout_point_many(self, items, ss, ts)

    def _point_many_serial(
        self, items: np.ndarray, ss: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        n = len(items)
        firsts, lasts = self._window_shard_spans(ss, ts)
        totals = np.zeros(n, dtype=np.float64)
        for shard_id, shard in self._shards.items():
            start = shard_id * self.shard_length
            end = start + self.shard_length
            local_s = np.maximum(ss, float(start))
            local_t = np.minimum(np.minimum(ts, float(end)), float(shard.now))
            active = (
                (firsts <= shard_id)
                & (lasts >= shard_id)
                & (local_s < local_t)
            )
            if not active.any():
                continue
            idx = np.flatnonzero(active)
            totals[idx] += shard.point_many(
                items[idx],
                np.column_stack((local_s[idx], local_t[idx])),
            )
        return totals

    def point(self, item: int, s: float = 0, t: float | None = None) -> float:
        """Estimate ``f_item(s, t]`` from the frozen snapshot."""
        s, t = _resolve_window(s, t, self.now)
        return float(self.point_many([item], (s, t))[0])

    @property
    def shard_count(self) -> int:
        return len(self._shards)


# --------------------------------------------------------------------- #
# Compiler entry point
# --------------------------------------------------------------------- #


def freeze(
    sketch: PersistentCountMin
    | PWCAMS
    | PersistentAMS
    | PersistentHeavyHitters
    | ShardedPersistentSketch,
    workers: int | None = None,
) -> (
    FrozenCountMin
    | FrozenPWCAMS
    | FrozenAMS
    | FrozenHeavyHitters
    | FrozenShardedSketch
):
    """Compile a live persistent sketch into a frozen columnar snapshot.

    Finalizes the sketch (flushing open PLA runs, draining any worker
    pool) and snapshots its histories as of ``sketch.now``.  The
    returned object answers ``point`` / ``point_many`` /
    ``self_join_size`` (and, for the dyadic structure,
    ``heavy_hitters`` / ``window_mass``) with answers bit-equal to the
    live query path at a fraction of the cost.  ``workers`` sets the
    snapshot's fan-out width for table construction and large
    ``point_many`` batches (default: the sketch's own pool width).
    """
    detach = getattr(sketch, "detach_workers", None)
    if callable(detach):
        detach()
    if isinstance(sketch, PersistentCountMin):
        return FrozenCountMin(sketch, workers=workers)
    if isinstance(sketch, PWCAMS):
        return FrozenPWCAMS(sketch, workers=workers)
    if isinstance(sketch, PersistentAMS):
        return FrozenAMS(sketch, workers=workers)
    if isinstance(sketch, PersistentHeavyHitters):
        return FrozenHeavyHitters(sketch, workers=workers)
    if isinstance(sketch, ShardedPersistentSketch):
        return FrozenShardedSketch(sketch, workers=workers)
    raise TypeError(
        f"freeze() does not support {type(sketch).__name__}; supported: "
        f"PersistentCountMin, PWCCountMin, PWCAMS, PersistentAMS, "
        f"PersistentHeavyHitters, ShardedPersistentSketch"
    )


class FrozenStoreView:
    """Immutable multi-stream query view over a whole sketch store.

    Built by :func:`freeze_store`: every stream's point sketch — and its
    heavy-hitter hierarchy and join sketch where the stream spec enables
    them — is compiled into its frozen columnar form, keyed by stream
    name.  The view is the degraded-mode serving surface of
    :class:`repro.runtime.IngestRuntime`: a runtime that has stopped
    accepting writes keeps answering point / heavy-hitter / self-join
    queries from this snapshot at frozen-engine speed.

    The view is as-of snapshot time: the live store may keep ingesting
    afterwards without affecting answers here.  Cross-stream
    ``join_size`` and the quantile estimators stay live-only (they need
    the live hierarchy pairing); query them on the store itself.
    """

    def __init__(self, store, workers: int | None = None) -> None:
        self._point: dict = {}
        self._hh: dict = {}
        self._join: dict = {}
        self._clocks: dict = {}
        for name in store.streams():
            state = store._state(name)
            self._point[name] = freeze(state.point_sketch, workers=workers)
            if state.hh_sketch is not None:
                self._hh[name] = freeze(state.hh_sketch, workers=workers)
            if state.join_sketch is not None:
                self._join[name] = freeze(state.join_sketch, workers=workers)
            self._clocks[name] = int(state.point_sketch.now)

    def streams(self) -> list:
        """Names of all frozen streams."""
        return sorted(self._point)

    def clock(self, name: str) -> int:
        """Stream clock at snapshot time."""
        self._frozen(self._point, name)
        return self._clocks[name]

    def _frozen(self, table: dict, name: str):
        frozen = table.get(name)
        if frozen is None:
            if name not in self._point:
                raise KeyError(f"unknown stream {name!r}")
            raise ValueError(
                f"stream {name!r} was not created with the sketch this "
                "query needs (heavy_hitters/joinable)"
            )
        return frozen

    def point(
        self, name: str, item: int, s: float = 0, t: float | None = None
    ) -> float:
        """Window frequency estimate, bit-equal to the live path."""
        return self._frozen(self._point, name).point(item, s, t)

    def point_many(
        self,
        name: str,
        items: Sequence[int] | np.ndarray,
        windows: Sequence[tuple],
    ) -> np.ndarray:
        """Vectorized window frequency estimates for one stream."""
        return self._frozen(self._point, name).point_many(items, windows)

    def heavy_hitters(
        self, name: str, phi: float, s: float = 0, t: float | None = None
    ) -> dict:
        """Window heavy hitters (requires ``heavy_hitters=True`` spec)."""
        return self._frozen(self._hh, name).heavy_hitters(phi, s, t)

    def self_join_size(
        self, name: str, s: float = 0, t: float | None = None
    ) -> float:
        """Window second frequency moment (requires ``joinable=True``)."""
        return self._frozen(self._join, name).self_join_size(s, t)

    def window_mass(
        self, name: str, s: float = 0, t: float | None = None
    ) -> float:
        """Estimate of ``||f_{s,t}||_1`` (requires ``heavy_hitters=True``)."""
        return self._frozen(self._hh, name).window_mass(s, t)


def freeze_store(store, workers: int | None = None) -> FrozenStoreView:
    """Freeze every stream of ``store`` into a :class:`FrozenStoreView`.

    Drains any live worker pools first (freezing is a master-side read),
    then compiles each stream's sketches via :func:`freeze`.  ``workers``
    sets the fan-out width used for table construction and large
    ``point_many`` batches.
    """
    store.drain_workers(strict=False)
    return FrozenStoreView(store, workers=workers)


# --------------------------------------------------------------------- #
# Zero-copy sharing: construct-into / attach-from a mapped segment
# --------------------------------------------------------------------- #


def share_view(view: FrozenStoreView, **kwargs) -> "shm.ShmSegment":
    """Publish a frozen view into a shared-memory segment.

    Every columnar table's arrays — including the derived rank keys and
    float edges, which are ``__slots__`` and therefore pickled — land
    out-of-band in the segment, so :func:`attach_view` rebuilds the view
    with **zero recompute and zero copy**: N attached processes query
    one physical copy of the tables.  The caller owns the returned
    segment and must eventually ``release()`` it; readers already
    attached stay valid past the unlink.  Keyword arguments pass through
    to :func:`repro.shm.write_object` (e.g. ``prefix``).
    """
    return shm.write_object(view, **kwargs)


def attach_view(name: str) -> "tuple[FrozenStoreView, shm.ShmSegment]":
    """Attach to a shared frozen view by segment name.

    Returns ``(view, segment)``: the view's arrays are read-only views
    over the mapping, so the segment must stay open for the view's
    lifetime — close it (never unlink; the publisher owns that) when
    the view is dropped.  Raises :class:`repro.shm.ShmError` when the
    name is gone, i.e. the publisher has moved past this generation.
    """
    view, segment = shm.read_attached(name)
    if not isinstance(view, FrozenStoreView):
        segment.close()
        raise shm.ShmError(
            f"segment {name!r} holds {type(view).__name__}, not a "
            "FrozenStoreView"
        )
    return view, segment
