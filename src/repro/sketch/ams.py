"""The fast AMS sketch [2], a.k.a. the Count Sketch [9].

Same ``d x w`` counter array as the Count-Min sketch, but each element also
carries a 4-wise independent sign: an update does
``C[j][h_j(i)] += sign_j(i) * count``.  The signature query is join size:
``sum_k C_f[j][k] * C_g[j][k]`` is an unbiased estimator of ``<f, g>`` per
row, with the median over rows driving the failure probability down.

Guarantees with ``w = O(1/eps^2)``, ``d = O(log 1/delta)``:

* self-join size within ``eps * ||f||_2^2``;
* join size within ``eps * ||f||_2 ||g||_2``;
* point queries within ``eps' * ||f||_2`` for ``w = O(1/eps'^2)``.
"""

from __future__ import annotations

import math
from statistics import median

import numpy as np

from repro.hashing import BucketHashFamily, HashConfig, SignHashFamily


class AMSSketch:
    """Ephemeral fast AMS / Count sketch.

    Two sketches can estimate their join size only if they were built with
    identical ``width``, ``depth`` and ``seed`` (shared hash functions, as
    Section 4.1 of the paper requires).
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        buckets: BucketHashFamily | None = None,
        signs: SignHashFamily | None = None,
    ):
        self.width = width
        self.depth = depth
        self.seed = seed
        config = HashConfig(width=width, depth=depth, seed=seed)
        self.buckets = buckets or BucketHashFamily(config)
        self.signs = signs or SignHashFamily(config)
        if self.buckets.width != width or self.buckets.depth != depth:
            raise ValueError("bucket family shape does not match sketch shape")
        if self.signs.depth != depth:
            raise ValueError("sign family depth does not match sketch depth")
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    @classmethod
    def from_error(cls, eps: float, delta: float, seed: int = 0) -> "AMSSketch":
        """Build a sketch with join-size error ``eps * ||f||_2 ||g||_2``."""
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must lie in (0, 1)")
        width = math.ceil(4.0 / eps**2)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=depth, seed=seed)

    def update(self, item: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``item`` (negative in turnstile mode)."""
        counters = self.counters
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        for row in range(self.depth):
            counters[row, cols[row]] += sgns[row] * count
        self.total += count

    def update_many(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Vectorized :meth:`update`: apply a column of items at once."""
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return
        if counts is None:
            counts = np.ones(items.shape[0], dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        columns = self.buckets.buckets_many(items)
        sgns = self.signs.signs_many(items)
        for row in range(self.depth):
            np.add.at(self.counters[row], columns[row], sgns[row] * counts)
        self.total += int(counts.sum())

    def point(self, item: int) -> float:
        """Point estimate: median over rows of ``sign * counter``."""
        counters = self.counters
        cols = self.buckets.buckets(item)
        sgns = self.signs.signs(item)
        return median(
            float(sgns[row] * counters[row, cols[row]])
            for row in range(self.depth)
        )

    def self_join_size(self) -> float:
        """Estimate ``||f||_2^2``: median over rows of the row's sum of squares."""
        per_row = (self.counters.astype(np.float64) ** 2).sum(axis=1)
        return float(np.median(per_row))

    def join_size(self, other: "AMSSketch") -> float:
        """Estimate ``<f, g>`` with ``other`` (must share hash functions)."""
        self._check_compatible(other)
        per_row = (
            self.counters.astype(np.float64) * other.counters.astype(np.float64)
        ).sum(axis=1)
        return float(np.median(per_row))

    def l2_norm(self) -> float:
        """Estimate ``||f||_2`` (square root of the self-join estimate)."""
        return math.sqrt(max(self.self_join_size(), 0.0))

    def merge(self, other: "AMSSketch") -> None:
        """Add ``other``'s counters into this sketch (distributed ingest)."""
        self._check_compatible(other)
        self.counters += other.counters
        self.total += other.total

    def _check_compatible(self, other: "AMSSketch") -> None:
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise ValueError(
                "join-size estimation requires sketches with identical "
                "width, depth and seed"
            )

    def words(self) -> int:
        """Size of the counter array in machine words."""
        return self.width * self.depth
