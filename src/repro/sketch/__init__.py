"""Ephemeral (non-persistent) streaming sketches.

These are the classic data-stream summaries the paper makes persistent:

* :class:`~repro.sketch.countmin.CountMinSketch` — Cormode-Muthukrishnan
  Count-Min [11]: point queries with ``eps * ||f||_1`` error.
* :class:`~repro.sketch.ams.AMSSketch` — the "fast AMS" sketch of
  Alon-Matias-Szegedy as implemented by the Count Sketch [2, 9]: join /
  self-join size with ``eps * ||f||_2 ||g||_2`` error and point queries
  with ``eps * ||f||_2`` error.
* :class:`~repro.sketch.exact.ExactFrequency` — the exact dictionary
  counter used for ground truth.
* :class:`~repro.sketch.l2_tracker.L2Tracker` — a small AMS instance
  tracking ``||f_t||_2`` within a constant factor, the auxiliary structure
  of Section 5.2.
"""

from __future__ import annotations

from repro.sketch.ams import AMSSketch
from repro.sketch.countmin import CountMinSketch
from repro.sketch.exact import ExactFrequency
from repro.sketch.l2_tracker import L2Tracker

__all__ = ["CountMinSketch", "AMSSketch", "ExactFrequency", "L2Tracker"]
