"""Constant-factor tracking of the L2 norm over the whole stream.

Section 5.2 of the paper needs a running estimate of ``||f_t||_2`` that is
correct within a constant factor *simultaneously for all t*, in order to
decide epoch boundaries for the historical persistent AMS sketch.  A small
AMS sketch of width ``O(1)`` and depth ``O(log(m / delta))`` achieves this:
each individual estimate is a constant-factor approximation with
probability ``1 - delta/m``, and a union bound covers every time step.
"""

from __future__ import annotations

import math

from repro.sketch.ams import AMSSketch


class L2Tracker:
    """Running constant-factor estimator of ``||f_t||_2``.

    Parameters
    ----------
    expected_length:
        Upper bound ``m`` on the stream length (drives the depth via the
        union bound).  Being wrong only degrades the constant, not
        correctness of the persistent sketch built on top.
    delta:
        Overall failure probability target across all time steps.
    seed:
        Hash seed.
    """

    #: Width sufficient for a constant-factor (within ~2x) estimate per row.
    DEFAULT_WIDTH = 16

    def __init__(
        self,
        expected_length: int = 1_000_000,
        delta: float = 0.01,
        seed: int = 0,
        width: int | None = None,
    ):
        depth = max(3, math.ceil(math.log(max(expected_length, 2) / delta)))
        self._sketch = AMSSketch(
            width=width or self.DEFAULT_WIDTH, depth=depth, seed=seed
        )

    def update(self, item: int, count: int = 1) -> None:
        """Feed one stream update."""
        self._sketch.update(item, count)

    def estimate(self) -> float:
        """Current estimate of ``||f_t||_2`` (0.0 for the empty stream)."""
        return self._sketch.l2_norm()

    def words(self) -> int:
        """Size of the tracker in machine words."""
        return self._sketch.words()
