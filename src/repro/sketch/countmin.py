"""The Count-Min sketch of Cormode and Muthukrishnan [11].

A ``d x w`` array of counters with one pairwise-independent hash per row.
Processing element ``i`` increments ``C[j][h_j(i)]`` in every row.  A point
query returns ``min_j C[j][h_j(i)]`` in the cash-register model (every
collision only adds, so each row overestimates); in the turnstile model the
median is used instead.

Setting ``w = ceil(e / eps)`` and ``d = ceil(ln 1/delta)`` yields the
classic guarantee ``fhat_i <= f_i + eps * ||f||_1`` with probability at
least ``1 - delta``.
"""

from __future__ import annotations

import math
from statistics import median

import numpy as np

from repro.hashing import BucketHashFamily, HashConfig


class CountMinSketch:
    """Ephemeral Count-Min sketch.

    Parameters
    ----------
    width:
        Buckets per row (``w``); the relative error is ``O(1/w)``.
    depth:
        Rows (``d``); the failure probability is ``exp(-O(d))``.
    seed:
        Seed for the Carter-Wegman hash family.
    hashes:
        Optionally share a prebuilt :class:`BucketHashFamily` (as the
        persistent wrappers do so that ephemeral and persistent state
        stay aligned).
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        hashes: BucketHashFamily | None = None,
    ):
        self.width = width
        self.depth = depth
        self.seed = seed
        self.hashes = hashes or BucketHashFamily(
            HashConfig(width=width, depth=depth, seed=seed)
        )
        if self.hashes.width != width or self.hashes.depth != depth:
            raise ValueError("hash family shape does not match sketch shape")
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    @classmethod
    def from_error(cls, eps: float, delta: float, seed: int = 0) -> "CountMinSketch":
        """Build a sketch guaranteeing error ``eps * ||f||_1`` w.p. ``1 - delta``."""
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must lie in (0, 1)")
        width = math.ceil(math.e / eps)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=depth, seed=seed)

    def update(self, item: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``item`` (negative in turnstile mode)."""
        counters = self.counters
        for row, col in enumerate(self.hashes.buckets(item)):  # sketchlint: disable=SL010 — scalar reference
            counters[row, col] += count
        self.total += count

    def update_many(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Vectorized :meth:`update`: apply a column of items at once.

        Bit-identical to a loop of scalar updates (integer counters are
        order-independent).  ``counts`` defaults to all-ones.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return
        if counts is None:
            counts = np.ones(items.shape[0], dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        columns = self.hashes.buckets_many(items)
        for row in range(self.depth):
            np.add.at(self.counters[row], columns[row], counts)
        self.total += int(counts.sum())

    def point(self, item: int) -> int:
        """Cash-register point estimate: the row minimum (never underestimates)."""
        counters = self.counters
        cols = self.hashes.buckets(item)
        return int(min(counters[row, col] for row, col in enumerate(cols)))

    def point_median(self, item: int) -> float:
        """Turnstile point estimate: the row median (two-sided error)."""
        counters = self.counters
        cols = self.hashes.buckets(item)
        return median(
            float(counters[row, col]) for row, col in enumerate(cols)
        )

    def inner_product(self, other: "CountMinSketch") -> int:
        """Upper-bound estimate of the join size with ``other``.

        Both sketches must share width, depth and hash seed.
        """
        self._check_compatible(other)
        per_row = (self.counters * other.counters).sum(axis=1)
        return int(per_row.min())

    def merge(self, other: "CountMinSketch") -> None:
        """Add ``other``'s counters into this sketch (distributed ingest)."""
        self._check_compatible(other)
        self.counters += other.counters
        self.total += other.total

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise ValueError(
                "merge/inner_product require sketches with identical "
                "width, depth and hash seed"
            )

    def words(self) -> int:
        """Size of the counter array in machine words."""
        return self.width * self.depth
