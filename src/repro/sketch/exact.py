"""Exact frequency counting, used for ground truth and tests."""

from __future__ import annotations

from collections import Counter
from typing import Iterable


class ExactFrequency:
    """A dictionary-backed exact frequency vector.

    Not a sketch — linear space — but exposes the same query surface as the
    sketches so tests and the evaluation harness can compare like with like.
    """

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self.total = 0

    def update(self, item: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``item``."""
        self._counts[item] += count
        if self._counts[item] == 0:
            del self._counts[item]
        self.total += count

    def update_many(self, items: Iterable[int]) -> None:
        """Add one occurrence of each item in ``items``."""
        counts = self._counts
        n = 0
        for item in items:
            counts[item] += 1
            n += 1
        self.total += n

    def point(self, item: int) -> int:
        """Exact frequency of ``item``."""
        return self._counts[item]

    def self_join_size(self) -> int:
        """Exact ``||f||_2^2``."""
        return sum(c * c for c in self._counts.values())

    def join_size(self, other: "ExactFrequency") -> int:
        """Exact ``<f, g>``."""
        small, large = (
            (self._counts, other._counts)
            if len(self._counts) <= len(other._counts)
            else (other._counts, self._counts)
        )
        return sum(c * large[item] for item, c in small.items() if item in large)

    def l1_norm(self) -> int:
        """Exact ``||f||_1``."""
        return sum(abs(c) for c in self._counts.values())

    def heavy_hitters(self, phi: float) -> dict[int, int]:
        """Items with frequency at least ``phi * ||f||_1``."""
        threshold = phi * self.l1_norm()
        return {i: c for i, c in self._counts.items() if c >= threshold}

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` most frequent items as ``(item, frequency)`` pairs."""
        return self._counts.most_common(k)

    def items(self) -> Iterable[tuple[int, int]]:
        """All ``(item, frequency)`` pairs."""
        return self._counts.items()

    def __len__(self) -> int:
        return len(self._counts)
