"""Command-line interface.

Three groups of functionality::

    # Regenerate any table/figure of the paper (legacy shortcut: the
    # experiment name may be passed directly as the first argument).
    python -m repro.cli experiment fig3 --dataset Zipf_3
    python -m repro.cli fig9
    python -m repro.cli all

    # Build a persistent sketch archive from a log file.
    python -m repro.cli synth day46.log --length 100000
    python -m repro.cli build day46.log urls.sketch.gz --attribute object_id
    python -m repro.cli build clicks.csv clicks.sketch.gz --csv-column key

    # Query an archive about any past window.
    python -m repro.cli query urls.sketch.gz point --item 123 --s 0 --t 50000

    # Crash-safe ingestion (WAL + checkpoints) and post-crash recovery.
    python -m repro.cli ingest ./rt records.jsonl --create-stream urls:8:1024
    python -m repro.cli ingest ./rt more.jsonl --resume
    python -m repro.cli recover ./rt --export ./rt.store

    # Serve sketches over TCP: JSON-lines protocol, WAL-durable writes,
    # frozen/live cutover reads (see docs/serving.md).
    python -m repro.cli serve ./rt --create-stream urls:8:1024 --port 7071
    python -m repro.cli serve ./rt --resume --port 7071

    # Durability scrub: verify every WAL frame and checkpoint, classify
    # damage, optionally quarantine + repair (exit 0 clean, 1 damaged
    # but recoverable, 2 unrecoverable).
    python -m repro.cli fsck ./rt
    python -m repro.cli fsck ./rt --repair --json

    # Static analysis: the sketch-invariant linter (see
    # docs/static-analysis.md); `python -m repro.analysis` is equivalent.
    python -m repro.cli lint src --format json

``REPRO_BENCH_SCALE`` (float) scales experiment workload sizes.
``REPRO_CONTRACTS=1`` enables the runtime contract layer
(:mod:`repro.analysis.contracts`).
"""

from __future__ import annotations

import argparse
import sys

from repro.eval import experiments
from repro.eval.harness import DATASETS

#: Experiments keyed by CLI name; value = (runner, needs_dataset).
EXPERIMENTS = {
    "table1": (experiments.run_table1, False),
    "fig1": (experiments.run_fig1, False),
    "fig2": (experiments.run_fig2, False),
    "fig3": (experiments.run_fig3, True),
    "fig4": (experiments.run_fig4, True),
    "fig5": (experiments.run_fig5, True),
    "fig6": (experiments.run_fig6, True),
    "fig7": (experiments.run_fig7, True),
    "fig8": (experiments.run_fig8, True),
    "fig9": (experiments.run_fig9, True),
    "fig10": (experiments.run_fig10, True),
}

QUERY_KINDS = ("point", "self_join", "heavy_hitters", "mass")


def _run_experiments(name: str, dataset: str | None) -> int:
    names = sorted(EXPERIMENTS) if name == "all" else [name]
    for experiment in names:
        runner, needs_dataset = EXPERIMENTS[experiment]
        if needs_dataset:
            datasets = [dataset] if dataset else sorted(DATASETS)
            for ds in datasets:
                runner(ds)
        else:
            runner()
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.streams.logs import synthesize_worldcup_log, write_worldcup_log

    records = synthesize_worldcup_log(args.length, seed=args.seed)
    count = write_worldcup_log(records, args.log)
    print(f"wrote {count} records to {args.log}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.persistent_ams import PersistentAMS
    from repro.core.persistent_countmin import PersistentCountMin
    from repro.io import save
    from repro.streams.logs import (
        attribute_stream,
        read_csv_stream,
        read_worldcup_log,
    )

    if args.csv_column:
        stream = read_csv_stream(
            args.log, item_column=args.csv_column, time_column=args.csv_time
        )
    else:
        stream = attribute_stream(read_worldcup_log(args.log), args.attribute)
    if args.kind == "countmin":
        sketch = PersistentCountMin(
            width=args.width, depth=args.depth, delta=args.delta,
            seed=args.seed,
        )
    else:
        sketch = PersistentAMS(
            width=args.width, depth=args.depth, delta=args.delta,
            seed=args.seed,
        )
    sketch.ingest(stream)
    if args.kind == "countmin":
        sketch.finalize()
    save(sketch, args.archive)
    print(
        f"ingested {len(stream)} updates; persistence "
        f"{sketch.persistence_words()} words -> {args.archive}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.sketchlint import run_lint

    select = args.select.split(",") if args.select else None
    try:
        return run_lint(
            args.paths,
            fmt=args.format,
            select=select,
            warn_only=args.warn_only,
            list_rules=args.list_rules,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            stats=args.stats,
            time_budget=args.time_budget,
            cache_dir=args.cache,
        )
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not a lint error.
        sys.stderr.close()
        return 0


def _parse_stream_specs(raw_specs: list[str]):
    """``name:delta[:universe]`` CLI specs into :class:`StreamSpec`."""
    from repro.store import StreamSpec

    specs = []
    for raw in raw_specs:
        parts = raw.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"--create-stream expects name:delta[:universe], got {raw!r}"
            )
        universe = int(parts[2]) if len(parts) == 3 else None
        specs.append(
            StreamSpec(
                name=parts[0],
                delta=float(parts[1]),
                universe=universe,
                heavy_hitters=universe is not None,
                quantiles=universe is not None,
            )
        )
    return specs


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.runtime import IngestPolicy, IngestRuntime
    from repro.store import SketchStore
    from repro.streams.records import read_jsonl_records

    policy = IngestPolicy(
        on_malformed=args.on_malformed, on_late=args.on_late
    )
    if args.resume:
        runtime = IngestRuntime.recover(
            args.directory,
            policy=policy,
            checkpoint_every=args.checkpoint_every,
            workers=args.workers,
            buffer_window=args.buffer_window,
            buffer_mode=args.buffer_mode,
        )
        print(
            f"resumed at seq {runtime.applied_seq} "
            f"({runtime.stats.replayed} WAL records replayed)"
        )
    else:
        specs = _parse_stream_specs(args.create_stream)
        if not specs:
            raise SystemExit(
                "fresh runtimes need at least one --create-stream "
                "name:delta[:universe] (or pass --resume)"
            )
        store = SketchStore(
            width=args.width, depth=args.depth, seed=args.seed
        )
        for spec in specs:
            store.create(spec)
        runtime = IngestRuntime.create(
            args.directory,
            store,
            policy=policy,
            checkpoint_every=args.checkpoint_every,
            workers=args.workers,
            buffer_window=args.buffer_window,
            buffer_mode=args.buffer_mode,
        )
    if args.batch_size is not None:
        from repro.streams.records import read_jsonl_batches

        for chunk in read_jsonl_batches(args.records, args.batch_size):
            runtime.ingest_batch(chunk)
    else:
        for _lineno, raw in read_jsonl_records(args.records):
            runtime.ingest(raw)
    runtime.checkpoint()
    runtime.close()
    for key, value in runtime.stats.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runtime import IngestRuntime, RecoveryError

    try:
        runtime = IngestRuntime.recover(
            args.directory,
            acknowledge_data_loss=args.acknowledge_data_loss,
        )
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    report = runtime.fsck_report
    if report is not None and not report.clean:
        print(f"fsck: {report.summary()}", file=sys.stderr)
        for action in report.actions:
            print(f"fsck: {action}", file=sys.stderr)
    if args.export:
        runtime.store.save(args.export)
        print(f"exported recovered store to {args.export}")
    runtime.close()
    print(_json.dumps(runtime.describe(), indent=2))
    if report is not None and report.data_loss and not args.acknowledge_data_loss:
        print(
            "recovered DEGRADED READ-ONLY: acknowledged records were lost "
            "(re-run with --acknowledge-data-loss to accept)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.runtime import IngestPolicy, IngestRuntime
    from repro.server import ServingRuntime, SketchServer
    from repro.store import SketchStore

    policy = IngestPolicy(
        on_malformed=args.on_malformed, on_late=args.on_late
    )
    if args.resume:
        runtime = IngestRuntime.recover(
            args.directory,
            policy=policy,
            checkpoint_every=args.checkpoint_every,
            buffer_window=args.buffer_window,
            buffer_mode=args.buffer_mode,
        )
        print(
            f"resumed at seq {runtime.applied_seq} "
            f"({runtime.stats.replayed} WAL records replayed)",
            flush=True,
        )
    else:
        specs = _parse_stream_specs(args.create_stream)
        if not specs:
            raise SystemExit(
                "fresh runtimes need at least one --create-stream "
                "name:delta[:universe] (or pass --resume)"
            )
        store = SketchStore(
            width=args.width, depth=args.depth, seed=args.seed
        )
        for spec in specs:
            store.create(spec)
        runtime = IngestRuntime.create(
            args.directory,
            store,
            policy=policy,
            checkpoint_every=args.checkpoint_every,
            buffer_window=args.buffer_window,
            buffer_mode=args.buffer_mode,
        )
    serving = ServingRuntime(
        runtime,
        freeze_every=args.freeze_every,
        freeze_interval_s=args.freeze_interval,
        freeze_workers=args.freeze_workers,
        query_workers=args.query_workers,
    )
    server = SketchServer(
        serving,
        host=args.host,
        port=args.port,
        cutover_poll_s=args.poll_interval,
    )
    server.start()
    host, port = server.address
    # Readiness line: supervisors and the CI smoke job wait for this.
    print(f"repro-serve listening on {host}:{port}", flush=True)

    def _graceful(_signum: int, _frame: object) -> None:
        server.stop()

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)
    server.serve_until_stopped()
    if server.crashed:
        print("repro-serve crashed", file=sys.stderr)
        return 1
    print(
        f"repro-serve stopped at seq {runtime.applied_seq} "
        f"({serving.cutovers} cutovers)",
        flush=True,
    )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runtime import run_fsck

    report = run_fsck(args.directory, repair=args.repair)
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(f"{args.directory}: {report.summary()}")
        for seg in report.segments:
            if seg.verdict != "clean" or seg.detail:
                print(f"  segment {seg.name}: {seg.verdict} {seg.detail}")
        for ckpt in report.checkpoints:
            if ckpt.verdict != "clean":
                print(f"  checkpoint {ckpt.name}: {ckpt.verdict}")
        if report.pointer.verdict != "clean":
            print(
                f"  pointer: {report.pointer.verdict} {report.pointer.detail}"
            )
        for action in report.actions:
            print(f"  repair: {action}")
    if not report.recoverable:
        return 2
    return 0 if report.clean else 1


def _query_items(args: argparse.Namespace) -> list[int]:
    items: list[int] = []
    if args.item is not None:
        items.append(args.item)
    if args.items:
        items.extend(int(raw) for raw in args.items.split(","))
    if not items:
        raise SystemExit("point queries require --item or --items")
    return items


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.io import load

    sketch = load(args.archive)
    if args.frozen:
        # Compile once, serve all of this invocation's queries from the
        # immutable columnar snapshot (bit-equal to the live path).
        sketch = sketch.freeze(workers=args.workers)
    t = args.t if args.t is not None else sketch.now
    if args.kind == "point":
        items = _query_items(args)
        if args.frozen and len(items) > 1:
            values = sketch.point_many(items, (args.s, t))
        else:
            values = [sketch.point(item, args.s, t) for item in items]
        for item, value in zip(items, values):
            print(f"f_{item}({args.s}, {t}] ~= {value:.1f}")
    elif args.kind == "self_join":
        value = sketch.self_join_size(args.s, t)
        print(f"F2({args.s}, {t}] ~= {value:.1f}")
    elif args.kind == "heavy_hitters":
        found = sketch.heavy_hitters(args.phi, args.s, t)
        for item, estimate in sorted(
            found.items(), key=lambda kv: kv[1], reverse=True
        ):
            print(f"{item}\t{estimate:.1f}")
    elif args.kind == "mass":
        value = sketch.window_mass(args.s, t)
        print(f"||f({args.s}, {t}]||_1 ~= {value:.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persistent Data Sketching (SIGMOD 2015) reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    exp.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    exp.add_argument("--dataset", choices=sorted(DATASETS), default=None)

    synth = sub.add_parser(
        "synth", help="generate a synthetic WorldCup-format binary log"
    )
    synth.add_argument("log", help="output log path")
    synth.add_argument("--length", type=int, default=100_000)
    synth.add_argument("--seed", type=int, default=0)

    build = sub.add_parser(
        "build", help="ingest a log into a persistent sketch archive"
    )
    build.add_argument("log", help="input log (binary WorldCup or CSV)")
    build.add_argument("archive", help="output archive (.json or .json.gz)")
    build.add_argument(
        "--attribute",
        default="object_id",
        help="WorldCup attribute to stream (binary logs)",
    )
    build.add_argument(
        "--csv-column", default=None, help="treat the log as CSV; item column"
    )
    build.add_argument("--csv-time", default=None, help="CSV time column")
    build.add_argument(
        "--kind", choices=("countmin", "ams"), default="countmin"
    )
    build.add_argument("--width", type=int, default=2048)
    build.add_argument("--depth", type=int, default=5)
    build.add_argument("--delta", type=float, default=50)
    build.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="run sketchlint, the sketch-invariant static analyzer"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs (default: src)"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument(
        "--select", default=None, help="comma-separated rule codes"
    )
    lint.add_argument("--warn-only", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="ratchet file: fail only on findings beyond the baseline",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline from current findings and exit 0",
    )
    lint.add_argument(
        "--stats", action="store_true", help="print analysis statistics"
    )
    lint.add_argument(
        "--time-budget", type=float, default=120.0, metavar="SECONDS",
        help="hard wall-clock budget (0 disables; default 120)",
    )
    lint.add_argument(
        "--cache", default=None, metavar="DIR",
        help="directory for the parsed-AST cache",
    )

    ingest = sub.add_parser(
        "ingest",
        help="crash-safe ingestion of a JSON-lines record file "
        "(WAL + checkpoints; see docs/robustness.md)",
    )
    ingest.add_argument("directory", help="runtime directory")
    ingest.add_argument("records", help="JSON-lines record file")
    ingest.add_argument(
        "--resume",
        action="store_true",
        help="recover the runtime directory and continue ingesting",
    )
    ingest.add_argument(
        "--create-stream",
        action="append",
        default=[],
        metavar="NAME:DELTA[:UNIVERSE]",
        help="declare a stream for a fresh runtime (repeatable; a "
        "universe enables heavy hitters and quantiles)",
    )
    ingest.add_argument("--checkpoint-every", type=int, default=1000)
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="frame WAL records and apply updates in chunks of N "
        "(one fsync per chunk; bit-identical state, batch-level acks)",
    )
    ingest.add_argument(
        "--on-malformed",
        choices=("raise", "skip", "quarantine"),
        default="quarantine",
    )
    ingest.add_argument(
        "--on-late",
        choices=("raise", "skip", "quarantine"),
        default="quarantine",
    )
    ingest.add_argument("--width", type=int, default=2048)
    ingest.add_argument("--depth", type=int, default=5)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker-pool width for parallel batch plans (with "
        "--batch-size; output is bit-identical to serial)",
    )
    ingest.add_argument(
        "--buffer-window",
        type=int,
        default=None,
        metavar="N",
        help="enable the two-stage update buffer: stage N records "
        "in front of the trackers before each bulk flush (records "
        "are WAL-durable before staging; exact mode is bit-identical)",
    )
    ingest.add_argument(
        "--buffer-mode",
        choices=("exact", "coalesce"),
        default="exact",
        help="with --buffer-window: 'exact' replays the staged tail "
        "verbatim; 'coalesce' merges same-item touches per window "
        "(faster on high-cardinality streams, widens mid-window "
        "history error by the absorbed window mass — see docs/api.md)",
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild a crashed ingest runtime (checkpoint + WAL replay) "
        "and print its state",
    )
    recover.add_argument("directory", help="runtime directory")
    recover.add_argument(
        "--export", default=None, help="also save the recovered store here"
    )
    recover.add_argument(
        "--acknowledge-data-loss",
        action="store_true",
        help="accept any record loss the pre-recovery fsck quarantined "
        "and resume writable (otherwise the runtime recovers degraded "
        "read-only)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the sketch-serving daemon: JSON-lines protocol over "
        "TCP, frozen/live cutover reads, WAL-durable writes (see "
        "docs/serving.md)",
    )
    serve.add_argument("directory", help="runtime directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: bind an ephemeral port and print it)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="recover the runtime directory instead of creating fresh",
    )
    serve.add_argument(
        "--create-stream",
        action="append",
        default=[],
        metavar="NAME:DELTA[:UNIVERSE]",
        help="declare a stream for a fresh runtime (repeatable; a "
        "universe enables heavy hitters and quantiles)",
    )
    serve.add_argument("--checkpoint-every", type=int, default=1000)
    serve.add_argument(
        "--freeze-every",
        type=int,
        default=None,
        metavar="N",
        help="re-freeze once the newest checkpoint is >= N records past "
        "the served view (default: every new checkpoint)",
    )
    serve.add_argument(
        "--freeze-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also re-freeze when the served view is older than this",
    )
    serve.add_argument(
        "--freeze-workers",
        type=int,
        default=None,
        metavar="N",
        help="fan frozen-view compilation out over N forked workers",
    )
    serve.add_argument(
        "--query-workers",
        type=int,
        default=0,
        metavar="N",
        help="serve frozen reads from N forked processes attached to "
        "one shared-memory copy of the view (0: in-process serving; "
        "needs fork + POSIX shared memory)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="cutover ticker period",
    )
    serve.add_argument(
        "--on-malformed",
        choices=("raise", "skip", "quarantine"),
        default="quarantine",
    )
    serve.add_argument(
        "--on-late",
        choices=("raise", "skip", "quarantine"),
        default="quarantine",
    )
    serve.add_argument("--width", type=int, default=2048)
    serve.add_argument("--depth", type=int, default=5)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--buffer-window",
        type=int,
        default=None,
        metavar="N",
        help="enable the two-stage update buffer on the write path "
        "(checkpoint saves flush it, so cutover views stay complete)",
    )
    serve.add_argument(
        "--buffer-mode",
        choices=("exact", "coalesce"),
        default="exact",
        help="with --buffer-window: 'exact' is bit-identical, "
        "'coalesce' merges same-item touches per window (see "
        "docs/api.md for the widened mid-window bound)",
    )

    fsck = sub.add_parser(
        "fsck",
        help="durability scrub: re-verify every WAL frame, checkpoint "
        "and the CHECKPOINT pointer; classify damage and optionally "
        "repair (exit 0 clean, 1 damaged-but-recoverable, 2 "
        "unrecoverable)",
    )
    fsck.add_argument("directory", help="runtime directory")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt segments/checkpoints, truncate torn "
        "tails and rewrite the pointer at the best intact checkpoint",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report instead of a summary",
    )

    query = sub.add_parser("query", help="query a sketch archive")
    query.add_argument("archive")
    query.add_argument("kind", choices=QUERY_KINDS)
    query.add_argument("--item", type=int, default=None)
    query.add_argument(
        "--items",
        default=None,
        metavar="A,B,C",
        help="comma-separated items for batched point queries",
    )
    query.add_argument("--s", type=float, default=0)
    query.add_argument("--t", type=float, default=None)
    query.add_argument("--phi", type=float, default=0.01)
    query.add_argument(
        "--frozen",
        action="store_true",
        help="compile the archive into a frozen columnar snapshot "
        "(repro.engine.frozen) and serve the query from it",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --frozen: fan snapshot compilation and large "
        "point_many batches out over N forked workers",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy shortcut: `repro fig3 --dataset X` without the subcommand.
    if argv and argv[0] in set(EXPERIMENTS) | {"all"}:
        argv = ["experiment"] + argv
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.experiment, args.dataset)
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "query":
        return _cmd_query(args)
    raise SystemExit(2)  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
