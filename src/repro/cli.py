"""Command-line interface.

Three groups of functionality::

    # Regenerate any table/figure of the paper (legacy shortcut: the
    # experiment name may be passed directly as the first argument).
    python -m repro.cli experiment fig3 --dataset Zipf_3
    python -m repro.cli fig9
    python -m repro.cli all

    # Build a persistent sketch archive from a log file.
    python -m repro.cli synth day46.log --length 100000
    python -m repro.cli build day46.log urls.sketch.gz --attribute object_id
    python -m repro.cli build clicks.csv clicks.sketch.gz --csv-column key

    # Query an archive about any past window.
    python -m repro.cli query urls.sketch.gz point --item 123 --s 0 --t 50000

    # Static analysis: the sketch-invariant linter (see
    # docs/static-analysis.md); `python -m repro.analysis` is equivalent.
    python -m repro.cli lint src --format json

``REPRO_BENCH_SCALE`` (float) scales experiment workload sizes.
``REPRO_CONTRACTS=1`` enables the runtime contract layer
(:mod:`repro.analysis.contracts`).
"""

from __future__ import annotations

import argparse
import sys

from repro.eval import experiments
from repro.eval.harness import DATASETS

#: Experiments keyed by CLI name; value = (runner, needs_dataset).
EXPERIMENTS = {
    "table1": (experiments.run_table1, False),
    "fig1": (experiments.run_fig1, False),
    "fig2": (experiments.run_fig2, False),
    "fig3": (experiments.run_fig3, True),
    "fig4": (experiments.run_fig4, True),
    "fig5": (experiments.run_fig5, True),
    "fig6": (experiments.run_fig6, True),
    "fig7": (experiments.run_fig7, True),
    "fig8": (experiments.run_fig8, True),
    "fig9": (experiments.run_fig9, True),
    "fig10": (experiments.run_fig10, True),
}

QUERY_KINDS = ("point", "self_join", "heavy_hitters", "mass")


def _run_experiments(name: str, dataset: str | None) -> int:
    names = sorted(EXPERIMENTS) if name == "all" else [name]
    for experiment in names:
        runner, needs_dataset = EXPERIMENTS[experiment]
        if needs_dataset:
            datasets = [dataset] if dataset else sorted(DATASETS)
            for ds in datasets:
                runner(ds)
        else:
            runner()
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.streams.logs import synthesize_worldcup_log, write_worldcup_log

    records = synthesize_worldcup_log(args.length, seed=args.seed)
    count = write_worldcup_log(records, args.log)
    print(f"wrote {count} records to {args.log}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.persistent_ams import PersistentAMS
    from repro.core.persistent_countmin import PersistentCountMin
    from repro.io import save
    from repro.streams.logs import (
        attribute_stream,
        read_csv_stream,
        read_worldcup_log,
    )

    if args.csv_column:
        stream = read_csv_stream(
            args.log, item_column=args.csv_column, time_column=args.csv_time
        )
    else:
        stream = attribute_stream(read_worldcup_log(args.log), args.attribute)
    if args.kind == "countmin":
        sketch = PersistentCountMin(
            width=args.width, depth=args.depth, delta=args.delta,
            seed=args.seed,
        )
    else:
        sketch = PersistentAMS(
            width=args.width, depth=args.depth, delta=args.delta,
            seed=args.seed,
        )
    sketch.ingest(stream)
    if args.kind == "countmin":
        sketch.finalize()
    save(sketch, args.archive)
    print(
        f"ingested {len(stream)} updates; persistence "
        f"{sketch.persistence_words()} words -> {args.archive}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.sketchlint import run_lint

    select = args.select.split(",") if args.select else None
    try:
        return run_lint(
            args.paths,
            fmt=args.format,
            select=select,
            warn_only=args.warn_only,
            list_rules=args.list_rules,
        )
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not a lint error.
        sys.stderr.close()
        return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.io import load

    sketch = load(args.archive)
    t = args.t if args.t is not None else sketch.now
    if args.kind == "point":
        if args.item is None:
            raise SystemExit("point queries require --item")
        value = sketch.point(args.item, args.s, t)
        print(f"f_{args.item}({args.s}, {t}] ~= {value:.1f}")
    elif args.kind == "self_join":
        value = sketch.self_join_size(args.s, t)
        print(f"F2({args.s}, {t}] ~= {value:.1f}")
    elif args.kind == "heavy_hitters":
        found = sketch.heavy_hitters(args.phi, args.s, t)
        for item, estimate in sorted(
            found.items(), key=lambda kv: kv[1], reverse=True
        ):
            print(f"{item}\t{estimate:.1f}")
    elif args.kind == "mass":
        value = sketch.window_mass(args.s, t)
        print(f"||f({args.s}, {t}]||_1 ~= {value:.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persistent Data Sketching (SIGMOD 2015) reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    exp.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    exp.add_argument("--dataset", choices=sorted(DATASETS), default=None)

    synth = sub.add_parser(
        "synth", help="generate a synthetic WorldCup-format binary log"
    )
    synth.add_argument("log", help="output log path")
    synth.add_argument("--length", type=int, default=100_000)
    synth.add_argument("--seed", type=int, default=0)

    build = sub.add_parser(
        "build", help="ingest a log into a persistent sketch archive"
    )
    build.add_argument("log", help="input log (binary WorldCup or CSV)")
    build.add_argument("archive", help="output archive (.json or .json.gz)")
    build.add_argument(
        "--attribute",
        default="object_id",
        help="WorldCup attribute to stream (binary logs)",
    )
    build.add_argument(
        "--csv-column", default=None, help="treat the log as CSV; item column"
    )
    build.add_argument("--csv-time", default=None, help="CSV time column")
    build.add_argument(
        "--kind", choices=("countmin", "ams"), default="countmin"
    )
    build.add_argument("--width", type=int, default=2048)
    build.add_argument("--depth", type=int, default=5)
    build.add_argument("--delta", type=float, default=50)
    build.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="run sketchlint, the sketch-invariant static analyzer"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs (default: src)"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select", default=None, help="comma-separated rule codes"
    )
    lint.add_argument("--warn-only", action="store_true")
    lint.add_argument("--list-rules", action="store_true")

    query = sub.add_parser("query", help="query a sketch archive")
    query.add_argument("archive")
    query.add_argument("kind", choices=QUERY_KINDS)
    query.add_argument("--item", type=int, default=None)
    query.add_argument("--s", type=float, default=0)
    query.add_argument("--t", type=float, default=None)
    query.add_argument("--phi", type=float, default=0.01)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy shortcut: `repro fig3 --dataset X` without the subcommand.
    if argv and argv[0] in set(EXPERIMENTS) | {"all"}:
        argv = ["experiment"] + argv
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.experiment, args.dataset)
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "query":
        return _cmd_query(args)
    raise SystemExit(2)  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
